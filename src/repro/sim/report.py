"""The canonical result schema every simulation backend returns.

Before the backend layer existed the five tiers each had their own result
shape (``NetworkRunResult`` from the chip simulator, ``SegmentResult``
from the tandem-queue tier, ``EventSegmentResult`` from the event tier,
raw stats objects from the functional tiers).  :class:`RunReport` and
:class:`SegmentReport` subsume all of them:

* ``RunReport`` carries everything ``NetworkRunResult`` did (plan, op
  counts, energy, the latency/throughput/power derivations) plus the name
  of the backend that produced it.  ``repro.core.simulator`` aliases
  ``NetworkRunResult = RunReport`` so existing call sites keep working.
* ``SegmentReport`` carries everything ``SegmentRun`` did (segment,
  timings, filter-load and staging cycles) plus the per-layer flow view
  (:class:`LayerReport`, subsuming ``LayerFlow``), the event tier's
  ``events_processed``, and the cycle tier's numerics evidence.

All fields are simulation-derived and deterministic; :meth:`RunReport.as_dict`
produces a JSON-safe summary whose serialization is byte-stable across
identical runs (CI diffs it).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core.perfmodel import LayerTiming
from repro.core.streaming import SegmentResult
from repro.energy.constants import ChipConstants
from repro.energy.power import EnergyBreakdown, OpCounts
from repro.errors import MappingError
from repro.mapping.segmentation import Segment, SegmentPlan
from repro.nn.workloads import NetworkSpec


@dataclass
class LayerReport:
    """One layer's observed (or modeled) flow through its node group."""

    index: int
    name: str
    computing_nodes: int
    iterations: int
    interval_work: float     # per-iteration busy time from the Eq. (1) model
    start: float             # first vector available at the layer's DC
    finish: float            # last vector cleared the whole chain
    total_wait: float = 0.0  # cycles the station idled waiting for input

    @property
    def observed_interval(self) -> float:
        return (self.finish - self.start) / max(1, self.iterations)

    @property
    def mean_wait(self) -> float:
        return self.total_wait / max(1, self.iterations)

    def as_dict(self) -> Dict[str, float]:
        return {
            "index": self.index,
            "name": self.name,
            "computing_nodes": self.computing_nodes,
            "iterations": self.iterations,
            "interval_work": self.interval_work,
            "start": self.start,
            "finish": self.finish,
            "total_wait": self.total_wait,
        }


@dataclass
class SegmentReport:
    """One mapped segment's simulated execution (any backend).

    Subsumes the historical ``SegmentRun``: ``segment``, ``timings``,
    ``filter_load_cycles``, ``staging_cycles`` and the ``cycles`` property
    are unchanged; ``compute_cycles`` generalizes what used to be
    ``result.total_cycles`` so the total no longer requires the
    streaming-tier result object.
    """

    segment: Segment
    timings: List[LayerTiming]
    compute_cycles: float
    filter_load_cycles: float
    staging_cycles: float
    layers: List[LayerReport] = field(default_factory=list)
    #: Bottleneck station's busy time — the per-sample interval extra
    #: batch samples stream at.
    steady_interval: float = 0.0
    #: Streaming tier only: the tandem-queue result with per-layer flows
    #: (kept for the Fig. 9 breakdown path).
    result: Optional[SegmentResult] = None
    #: Event tier only: events the discrete-event kernel processed.
    events_processed: Optional[int] = None
    #: Cycle tier only: MACs actually executed by the functional groups.
    functional_macs: Optional[int] = None
    #: Cycle tier only: checksum of the executed ofmap accumulators.
    checksum: Optional[int] = None
    #: Cycle tier only: every executed layer matched the quantized
    #: reference bit-for-bit (the backend raises otherwise, so a
    #: returned report always says ``True``).
    numerics_verified: Optional[bool] = None

    @property
    def cycles(self) -> float:
        return self.compute_cycles + self.filter_load_cycles + self.staging_cycles

    def layer_report(self, layer_index: int) -> LayerReport:
        for layer in self.layers:
            if layer.index == layer_index:
                return layer
        raise MappingError(f"layer {layer_index} not in this segment report")

    def as_dict(self) -> Dict[str, object]:
        out: Dict[str, object] = {
            "layers": [layer.as_dict() for layer in self.layers],
            "layer_indices": [spec.index for spec in self.segment.layers],
            "total_nodes": self.segment.total_nodes,
            "compute_cycles": self.compute_cycles,
            "filter_load_cycles": self.filter_load_cycles,
            "staging_cycles": self.staging_cycles,
            "steady_interval": self.steady_interval,
            "cycles": self.cycles,
        }
        if self.events_processed is not None:
            out["events_processed"] = self.events_processed
        if self.functional_macs is not None:
            out["functional_macs"] = self.functional_macs
        if self.checksum is not None:
            out["checksum"] = self.checksum
        if self.numerics_verified is not None:
            out["numerics_verified"] = self.numerics_verified
        return out


@dataclass
class RunReport:
    """Everything one network run produced, whatever the backend.

    Field-compatible superset of the historical ``NetworkRunResult``
    (which is now an alias of this class): ``runs`` keeps its name so the
    experiment drivers and serving stack read segments the same way.
    """

    network: NetworkSpec
    strategy: str
    plan: SegmentPlan
    runs: List[SegmentReport]
    total_cycles: float
    ops: OpCounts
    energy: EnergyBreakdown
    constants: ChipConstants
    batch: int = 1
    #: Weight-stationary request batching factor the run was produced
    #: with (``SimConfig.batch_requests``): the run covers
    #: ``batch * batch_requests`` samples, with filter loads and segment
    #: staging paid once for the whole request batch.
    batch_requests: int = 1
    backend: str = "streaming"

    @property
    def segments(self) -> List[SegmentReport]:
        """Alias of ``runs`` under the canonical name."""
        return self.runs

    @property
    def latency_ms(self) -> float:
        """Whole-run latency (all ``batch * batch_requests`` samples)."""
        return self.total_cycles * self.constants.cycle_seconds * 1e3

    @property
    def latency_per_request_ms(self) -> float:
        """Amortized per-request latency of the request batch."""
        return self.latency_ms / self.batch_requests

    @property
    def throughput_samples_s(self) -> float:
        return self.batch * self.batch_requests * 1000.0 / self.latency_ms

    @property
    def throughput_requests_s(self) -> float:
        return self.batch_requests * 1000.0 / self.latency_ms

    @property
    def staging_cycles_per_request(self) -> float:
        """Amortized per-request share of the one-time filter-load and
        segment-staging cycles — the costs request batching exists to
        amortize (they are charged once per request batch)."""
        once = sum(
            run.filter_load_cycles + run.staging_cycles for run in self.runs
        )
        return once / self.batch_requests

    @property
    def average_power_w(self) -> float:
        seconds = self.total_cycles * self.constants.cycle_seconds
        return self.energy.total / seconds

    @property
    def throughput_per_watt(self) -> float:
        return self.throughput_samples_s / self.average_power_w

    def gops_per_watt(self, *, include_dram: bool = True) -> float:
        """Computational efficiency in GOPS/W (1 MAC = 2 ops).

        The paper's Neural-Cache comparison excludes DRAM power
        (Sec. 6.3); pass ``include_dram=False`` to match.
        """
        seconds = self.total_cycles * self.constants.cycle_seconds
        ops = (
            2.0 * self.batch * self.batch_requests
            * self.network.total_macs / seconds
        )
        energy = self.energy.total if include_dram else self.energy.total - self.energy.dram
        return ops / (energy / seconds) / 1e9

    def nodes_of(self, layer_index: int) -> int:
        return self.plan.nodes_of(layer_index)

    def segment_latency_ms(self, layer_index: int) -> float:
        for run in self.runs:
            if layer_index in run.segment.allocation.nodes:
                return run.cycles * self.constants.cycle_seconds * 1e3
        raise MappingError(f"layer {layer_index} not in any segment run")

    def as_dict(self) -> Dict[str, object]:
        """Deterministic JSON-safe summary (scripts and CI diff this)."""
        return {
            "backend": self.backend,
            "network": self.network.name,
            "strategy": self.strategy,
            "batch": self.batch,
            "batch_requests": self.batch_requests,
            "total_cycles": self.total_cycles,
            "latency_ms": self.latency_ms,
            "latency_per_request_ms": self.latency_per_request_ms,
            "staging_cycles_per_request": self.staging_cycles_per_request,
            "energy_j": self.energy.total,
            "segments": [run.as_dict() for run in self.runs],
        }
