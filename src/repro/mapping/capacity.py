"""How many filters fit in one node's CMem (Sec. 4.1).

With ``N``-bit precision each compute slice reserves ``N`` rows for the
incoming ifmap vector, leaving ``Q = 64/N - 1`` transposed vector slots
per slice and ``7 * Q`` per node.  A filter of size ``R x S x C`` needs
``R * S * ceil(C / 256)`` vector slots; when ``C < 256`` up to
``floor(256 / C)`` vectors share one slot group (ShiftRow.C + CSR masking,
Sec. 3.3), which also divides the MAC count because one masked MAC.C
covers every packed filter pixel at once.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

from repro.errors import CapacityError
from repro.nn.workloads import ConvLayerSpec


@dataclass(frozen=True)
class CapacityModel:
    """The per-node filter-capacity model of the execution framework."""

    compute_slices: int = 7
    rows: int = 64
    cols: int = 256
    lane_width: int = 32

    def vector_slots_per_slice(self, n_bits: int) -> int:
        """Q = rows/N - 1: one N-row group is reserved for the ifmap."""
        q = self.rows // n_bits - 1
        if q < 1:
            raise CapacityError(
                f"{n_bits}-bit vectors leave no filter slots in a "
                f"{self.rows}-row slice"
            )
        return q

    def total_vector_slots(self, n_bits: int) -> int:
        return self.compute_slices * self.vector_slots_per_slice(n_bits)

    def packing_factor(self, c: int) -> int:
        """How many sub-256-channel vectors share one slot (lane-aligned)."""
        if c >= self.cols:
            return 1
        # Vectors are aligned to 32-lane groups for CSR masking.
        lanes_needed = max(1, math.ceil(c / self.lane_width))
        return max(1, (self.cols // self.lane_width) // lanes_needed)

    def vectors_per_filter(self, spec: ConvLayerSpec) -> int:
        """Unpacked vector-slot demand of one filter."""
        return spec.r * spec.s * max(1, math.ceil(spec.c / self.cols))

    def filters_per_node(self, spec: ConvLayerSpec) -> int:
        """Whole filters one node holds (0 when a filter must be split)."""
        slots = self.total_vector_slots(spec.n_bits)
        packed_capacity = slots * self.packing_factor(spec.c)
        return packed_capacity // self.vectors_per_filter(spec)

    def macs_per_filter_per_pixel(self, spec: ConvLayerSpec) -> int:
        """MAC.C issues per held filter per ifmap vector.

        Packing lets one masked MAC.C cover ``p`` filter pixels, so the MAC
        count divides by the packing factor (capped by R*S).
        """
        p = self.packing_factor(spec.c)
        sub_vectors = max(1, math.ceil(spec.c / self.cols))
        return max(1, math.ceil(spec.r * spec.s / p)) * sub_vectors

    def min_nodes_split(self, spec: ConvLayerSpec) -> int:
        """Capacity minimum when filters may be split across nodes.

        Sub-vector fragments of one filter produce partial sums that the
        pipelines merge; capacity is then bounded only by total vector
        slots.  Used when whole-filter placement exceeds the array (the
        conv4_x layers of ResNet18, Table 6).
        """
        total_vectors = spec.m * self.vectors_per_filter(spec)
        packed = math.ceil(total_vectors / self.packing_factor(spec.c))
        return math.ceil(packed / self.total_vector_slots(spec.n_bits))

    def min_nodes(self, spec: ConvLayerSpec, max_nodes: Optional[int] = None) -> int:
        """Fewest computing cores that can hold the whole layer's filters.

        With ``max_nodes`` given, falls back to split-filter placement when
        whole-filter placement would exceed it.
        """
        fpn = self.filters_per_node(spec)
        if fpn >= 1:
            whole = math.ceil(spec.m / fpn)
            if max_nodes is None or whole <= max_nodes:
                return whole
        split = self.min_nodes_split(spec)
        if max_nodes is not None and split > max_nodes:
            raise CapacityError(
                f"{spec.name} needs {split} cores even with split filters "
                f"(cap {max_nodes})"
            )
        return split

    def max_useful_nodes(self, spec: ConvLayerSpec) -> int:
        """Beyond one filter (or one fragment) per node, extra nodes idle."""
        fpn = self.filters_per_node(spec)
        if fpn >= 1:
            return spec.m
        total_vectors = spec.m * self.vectors_per_filter(spec)
        fragments = math.ceil(
            total_vectors / self.vector_slots_per_slice(spec.n_bits)
        )
        return fragments

    def filters_held(self, spec: ConvLayerSpec, num_nodes: int) -> float:
        """Average filters per node when the layer runs on ``num_nodes``."""
        if num_nodes < 1:
            raise CapacityError("a node group needs at least one computing core")
        minimum = self.min_nodes_split(spec)
        if num_nodes < minimum:
            raise CapacityError(
                f"{spec.name}: {num_nodes} nodes cannot hold {spec.m} filters "
                f"(min {minimum})"
            )
        return spec.m / num_nodes
