"""Node allocation inside one segment — the Eq. (1) optimizer.

Given the layers of a segment and a budget of computing cores, choose how
many computing cores each layer's node group gets so that the slowest
layer (the pipeline bottleneck) is as fast as possible:

    min  max_i T_i(nodes_i)     s.t.  sum_i (nodes_i + 1) <= M

``T_i`` comes from a caller-supplied timing function (the performance
model of :mod:`repro.core.perfmodel`), which already embodies
``T_i = max(T_CMem, T_aux + T_rs)``.  The solver starts every layer at its
capacity minimum and greedily gives spare cores to the current bottleneck
— optimal here because every ``T_i`` is non-increasing in ``nodes_i`` and
the objective is the max.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Sequence

from repro.errors import MappingError
from repro.mapping.capacity import CapacityModel
from repro.nn.workloads import ConvLayerSpec

# (layer, computing cores) -> expected per-layer time in cycles.
TimingFn = Callable[[ConvLayerSpec, int], float]


def proportional_shares(
    minimums: Sequence[int],
    weights: Sequence[float],
    total: int,
) -> List[int]:
    """Split ``total`` cores: minimums first, spare by weight.

    Every party receives its minimum; the spare is distributed
    proportionally to ``weights`` (floor), and the round-off remainder
    goes to the heaviest party.  This is the array-level analogue of the
    per-segment solver above; both :class:`repro.core.multi_dnn` (static
    partitioning) and the elastic partition manager of
    :mod:`repro.serving` resize through it, so a static run and an
    elastic run that observes proportional demand derive identical
    shares.
    """
    if not minimums or len(minimums) != len(weights):
        raise MappingError(
            f"need matching non-empty minimums/weights, got "
            f"{len(minimums)}/{len(weights)}"
        )
    if any(w < 0 for w in weights):
        raise MappingError(f"weights must be >= 0: {list(weights)}")
    if sum(minimums) > total:
        raise MappingError(
            f"parties need at least {sum(minimums)} cores together but only "
            f"{total} are available"
        )
    spare = total - sum(minimums)
    weight_sum = sum(weights)
    if weight_sum <= 0:
        # No demand signal: leave everyone at the minimum, remainder to
        # the first party for a deterministic full cover.
        shares = list(minimums)
        shares[0] += spare
        return shares
    shares = [
        minimum + int(spare * weight / weight_sum)
        for minimum, weight in zip(minimums, weights)
    ]
    shares[max(range(len(shares)), key=lambda i: weights[i])] += total - sum(shares)
    return shares


@dataclass
class AllocationResult:
    """Computing-core counts per layer (data-collection cores excluded)."""

    nodes: Dict[int, int] = field(default_factory=dict)  # layer index -> cores
    times: Dict[int, float] = field(default_factory=dict)
    bottleneck_time: float = 0.0

    def total_nodes(self, dc_per_layer: int = 1) -> int:
        return sum(self.nodes.values()) + dc_per_layer * len(self.nodes)


def allocate_segment(
    layers: Sequence[ConvLayerSpec],
    budget: int,
    timing: TimingFn,
    capacity: CapacityModel = CapacityModel(),
    *,
    dc_per_layer: int = 1,
) -> AllocationResult:
    """Distribute ``budget`` cores (computing + DC) over a segment."""
    if not layers:
        raise MappingError("cannot allocate an empty segment")
    result = AllocationResult()
    per_layer_cap = budget - dc_per_layer * len(layers)
    minimum = {
        spec.index: capacity.min_nodes(spec, max_nodes=per_layer_cap)
        for spec in layers
    }
    maximum = {
        spec.index: min(capacity.max_useful_nodes(spec), per_layer_cap)
        for spec in layers
    }
    used = sum(minimum.values()) + dc_per_layer * len(layers)
    if used > budget:
        raise MappingError(
            f"segment needs at least {used} cores but the budget is {budget}"
        )
    result.nodes = dict(minimum)
    for spec in layers:
        result.times[spec.index] = timing(spec, result.nodes[spec.index])

    spare = budget - used
    specs = {spec.index: spec for spec in layers}
    while spare > 0:
        # Give one core to the layer that currently limits the pipeline and
        # can still benefit from another core.
        candidates = [
            idx for idx in result.nodes
            if result.nodes[idx] < maximum[idx]
        ]
        if not candidates:
            break
        bottleneck = max(candidates, key=lambda idx: result.times[idx])
        new_count = result.nodes[bottleneck] + 1
        new_time = timing(specs[bottleneck], new_count)
        if new_time >= result.times[bottleneck]:
            # The binding bottleneck no longer improves with more cores;
            # spending further budget cannot lower the segment maximum.
            overall = max(result.times, key=lambda idx: result.times[idx])
            if bottleneck == overall:
                break
        result.nodes[bottleneck] = new_count
        result.times[bottleneck] = new_time
        spare -= 1
    result.bottleneck_time = max(result.times.values())
    return result
