"""Zig-zag placement of node groups onto the compute array (Fig. 7(c)).

Node groups are laid out along a boustrophedon (snake) walk of the 15x14
compute region so that consecutive cores of a group — the cores that
exchange an ifmap vector every iteration — are physically adjacent, and
each group's tail sits near the next group's data-collection core.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Tuple

from repro.errors import PlacementError
from repro.mapping.segmentation import Segment
from repro.noc.router import hop_count

Coord = Tuple[int, int]


@dataclass
class NodePlacement:
    """Coordinates of every node of one segment on the mesh."""

    dc: Dict[int, Coord] = field(default_factory=dict)  # layer index -> DC tile
    computing: Dict[int, List[Coord]] = field(default_factory=dict)

    def chain_hops(self, layer_index: int) -> List[int]:
        """Hop distances along one layer's streaming chain (DC first)."""
        chain = [self.dc[layer_index]] + self.computing[layer_index]
        return [hop_count(a, b) for a, b in zip(chain, chain[1:])]

    def average_chain_hops(self) -> float:
        hops = [h for idx in self.dc for h in self.chain_hops(idx)]
        return sum(hops) / len(hops) if hops else 0.0

    def cross_layer_hops(self, producer: int, consumer: int) -> float:
        """Mean distance from a producer's computing cores to the consumer DC."""
        target = self.dc[consumer]
        cores = self.computing[producer]
        return sum(hop_count(c, target) for c in cores) / len(cores)

    def render(self, *, width: int = 16, height: int = 16) -> str:
        """ASCII map of the placement on the mesh (Fig. 7(c) style).

        ``D`` marks a data-collection core; letters a, b, c, ... mark the
        computing cores of successive layers; ``.`` is an unused tile.
        """
        grid = [["." for _ in range(width)] for _ in range(height)]
        for order, index in enumerate(sorted(self.dc)):
            symbol = chr(ord("a") + order % 26)
            x, y = self.dc[index]
            grid[y][x] = "D"
            for (cx, cy) in self.computing[index]:
                grid[cy][cx] = symbol
        return "\n".join(" ".join(row) for row in grid)


def _snake(width: int, height: int, x0: int = 0, y0: int = 0) -> Iterator[Coord]:
    """Boustrophedon walk over a width x height region."""
    for row in range(height):
        cols = range(width) if row % 2 == 0 else range(width - 1, -1, -1)
        for col in cols:
            yield (x0 + col, y0 + row)


def _raster(width: int, height: int, x0: int = 0, y0: int = 0) -> Iterator[Coord]:
    """Plain reading-order walk (rows always left to right)."""
    for row in range(height):
        for col in range(width):
            yield (x0 + col, y0 + row)


def _place_along(walk: Iterator[Coord], segment: Segment) -> NodePlacement:
    placement = NodePlacement()
    for spec in segment.layers:
        placement.dc[spec.index] = next(walk)
        placement.computing[spec.index] = [
            next(walk) for _ in range(segment.allocation.nodes[spec.index])
        ]
    return placement


def zigzag_placement(
    segment: Segment,
    *,
    width: int = 15,
    height: int = 14,
    origin: Coord = (0, 1),
    start_offset: int = 0,
) -> NodePlacement:
    """Place one segment's node groups along the snake walk.

    ``origin`` defaults to (0, 1): row 0 of the 16x16 mesh is an LLC row
    (Fig. 3(a)), so the compute region starts one row down.
    ``start_offset`` skips that many tiles of the walk — used to give each
    model of a multi-DNN deployment its own contiguous snake interval.
    """
    total = segment.total_nodes
    if start_offset + total > width * height:
        raise PlacementError(
            f"segment needs tiles [{start_offset}, {start_offset + total}) "
            f"but the region has {width * height}"
        )
    walk = _snake(width, height, origin[0], origin[1])
    for _ in range(start_offset):
        next(walk)
    return _place_along(walk, segment)


def raster_placement(
    segment: Segment,
    *,
    width: int = 15,
    height: int = 14,
    origin: Coord = (0, 1),
) -> NodePlacement:
    """Reading-order placement — the obvious alternative to zig-zag.

    Chains break at every row wrap (the next core is ``width - 1`` hops
    away), which is exactly the overhead Fig. 7(c)'s zig-zag avoids.
    """
    total = segment.total_nodes
    if total > width * height:
        raise PlacementError(
            f"segment needs {total} tiles but the region has {width * height}"
        )
    walk = _raster(width, height, origin[0], origin[1])
    return _place_along(walk, segment)


def random_placement(
    segment: Segment,
    *,
    width: int = 15,
    height: int = 14,
    origin: Coord = (0, 1),
    seed: int = 0,
) -> NodePlacement:
    """Uniformly random tile assignment — the placement lower bound."""
    import random

    total = segment.total_nodes
    tiles = [
        (origin[0] + x, origin[1] + y)
        for y in range(height)
        for x in range(width)
    ]
    if total > len(tiles):
        raise PlacementError(
            f"segment needs {total} tiles but the region has {len(tiles)}"
        )
    rng = random.Random(seed)
    rng.shuffle(tiles)
    return _place_along(iter(tiles), segment)
