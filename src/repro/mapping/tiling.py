"""Output-channel tiling for layers that exceed the whole array.

The weight-stationary execution framework requires a layer's filters to be
resident across its node group.  Very large FC layers (VGG's fc6 holds
102 M weights against the chip's ~2.6 M resident slots) cannot fit even
with split filters, so they execute in *passes*: the output channels are
tiled, each tile mapped as its own (maximally sized) layer, and passes run
back to back, reloading weights between them.  This trades latency for
capacity — and surfaces an honest architectural point: MAICC is
filter-load-bound on VGG-class fully-connected layers.
"""

from __future__ import annotations

import math
from dataclasses import replace
from typing import List, Optional

from repro.errors import CapacityError, MappingError
from repro.mapping.capacity import CapacityModel
from repro.nn.workloads import ConvLayerSpec, NetworkSpec


def passes_required(
    spec: ConvLayerSpec,
    capacity: CapacityModel,
    array_size: int,
) -> int:
    """How many sequential passes a layer needs on ``array_size`` cores."""
    cap = array_size - 1  # one core is the DC
    try:
        capacity.min_nodes(spec, max_nodes=cap)
        return 1
    except CapacityError:
        pass
    split = capacity.min_nodes_split(spec)
    passes = math.ceil(split / cap)
    # Verify one tile actually fits (guards degenerate geometries).
    tile_m = math.ceil(spec.m / passes)
    tile = replace(spec, m=tile_m)
    if capacity.min_nodes_split(tile) > cap:
        raise MappingError(
            f"{spec.name}: even 1/{passes} of the filters exceeds the array"
        )
    return passes


def tile_network(
    network: NetworkSpec,
    capacity: Optional[CapacityModel] = None,
    array_size: int = 208,
) -> NetworkSpec:
    """Rewrite a network so every layer fits the array.

    Oversized layers become ``passes`` consecutive layers named
    ``<name>@p<k>``, each holding a contiguous slice of the output
    channels.  Indices are renumbered sequentially; the result is
    otherwise equivalent (the concatenation of the passes' ofmaps is the
    original ofmap).
    """
    capacity = capacity or CapacityModel()
    tiled: List[ConvLayerSpec] = []
    changed = False
    for spec in network:
        passes = passes_required(spec, capacity, array_size)
        if passes == 1:
            tiled.append(spec)
            continue
        changed = True
        base, extra = divmod(spec.m, passes)
        for k in range(passes):
            tile_m = base + (1 if k < extra else 0)
            tiled.append(
                replace(spec, name=f"{spec.name}@p{k}", m=tile_m)
            )
    if not changed:
        return network
    renumbered = tuple(
        replace(spec, index=i + 1) for i, spec in enumerate(tiled)
    )
    return NetworkSpec(name=network.name, layers=renumbered)
