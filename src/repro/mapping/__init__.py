"""Layer segmentation, node allocation, and zig-zag placement (Sec. 4.3)."""

from repro.mapping.capacity import CapacityModel
from repro.mapping.allocation import AllocationResult, allocate_segment
from repro.mapping.segmentation import (
    GreedyStrategy,
    HeuristicStrategy,
    MappingStrategy,
    Segment,
    SegmentPlan,
    SingleLayerStrategy,
)
from repro.mapping.placement import NodePlacement, zigzag_placement
from repro.mapping.tiling import passes_required, tile_network

__all__ = [
    "passes_required",
    "tile_network",
    "CapacityModel",
    "AllocationResult",
    "allocate_segment",
    "GreedyStrategy",
    "HeuristicStrategy",
    "MappingStrategy",
    "Segment",
    "SegmentPlan",
    "SingleLayerStrategy",
    "NodePlacement",
    "zigzag_placement",
]
