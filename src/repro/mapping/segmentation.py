"""The three layer-segmentation strategies of Table 6.

* **single-layer** — no segmentation: each layer is its own segment and
  gets as many cores as it can use (up to the array size); segments run
  one after another.
* **greedy** — pack as many layers as possible into each segment, giving
  every layer only its capacity-minimum node group.
* **heuristic** (Sec. 4.3) — group adjacent layers with the same ifmap
  size into one segment (splitting when a group exceeds the array), then
  balance the workload inside each segment with the Eq. (1) allocator.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.errors import MappingError
from repro.mapping.allocation import AllocationResult, TimingFn, allocate_segment
from repro.mapping.capacity import CapacityModel
from repro.nn.workloads import ConvLayerSpec, NetworkSpec


@dataclass
class Segment:
    """One group of layers mapped onto the array simultaneously."""

    layers: List[ConvLayerSpec]
    allocation: AllocationResult

    @property
    def layer_indices(self) -> List[int]:
        return [spec.index for spec in self.layers]

    def nodes_of(self, index: int) -> int:
        """Total node-group size (computing cores + 1 DC) for one layer."""
        return self.allocation.nodes[index] + 1

    @property
    def total_nodes(self) -> int:
        return self.allocation.total_nodes()


@dataclass
class SegmentPlan:
    """A full mapping of a network: ordered segments."""

    strategy: str
    network: NetworkSpec
    segments: List[Segment] = field(default_factory=list)

    def segment_of(self, layer_index: int) -> Segment:
        for segment in self.segments:
            if layer_index in segment.allocation.nodes:
                return segment
        raise MappingError(f"layer {layer_index} appears in no segment")

    def nodes_of(self, layer_index: int) -> int:
        return self.segment_of(layer_index).nodes_of(layer_index)


class MappingStrategy:
    """Base class; subclasses implement :meth:`plan`."""

    name = "base"

    def __init__(
        self,
        array_size: int = 208,
        capacity: Optional[CapacityModel] = None,
    ) -> None:
        # The paper's chip has 210 compute tiles; two are reserved for
        # array-level control/IO, leaving 208 mappable cores (Table 6 caps
        # the largest layers at 208 nodes).
        self.array_size = array_size
        self.capacity = capacity or CapacityModel()

    def plan(self, network: NetworkSpec, timing: TimingFn) -> SegmentPlan:
        raise NotImplementedError

    # -- shared helpers --------------------------------------------------------

    def _min_group(self, spec: ConvLayerSpec) -> int:
        """Node-group size (with DC) at the capacity minimum."""
        return self.capacity.min_nodes(spec, max_nodes=self.array_size - 1) + 1

    def _fits(self, layers: Sequence[ConvLayerSpec]) -> bool:
        return sum(self._min_group(spec) for spec in layers) <= self.array_size


class SingleLayerStrategy(MappingStrategy):
    """Each layer alone on the array with its maximum useful node count."""

    name = "single-layer"

    def plan(self, network: NetworkSpec, timing: TimingFn) -> SegmentPlan:
        plan = SegmentPlan(strategy=self.name, network=network)
        for spec in network:
            if not self._fits([spec]):
                raise MappingError(f"{spec.name} does not fit the array alone")
            allocation = allocate_segment(
                [spec], self.array_size, timing, self.capacity
            )
            plan.segments.append(Segment(layers=[spec], allocation=allocation))
        return plan


class GreedyStrategy(MappingStrategy):
    """Fill each segment with as many minimum-size node groups as fit."""

    name = "greedy"

    def plan(self, network: NetworkSpec, timing: TimingFn) -> SegmentPlan:
        plan = SegmentPlan(strategy=self.name, network=network)
        pending: List[ConvLayerSpec] = []
        used = 0
        for spec in network:
            group = self._min_group(spec)
            if group > self.array_size:
                raise MappingError(f"{spec.name} does not fit the array alone")
            if used + group > self.array_size and pending:
                plan.segments.append(self._close(pending, timing))
                pending, used = [], 0
            pending.append(spec)
            used += group
        if pending:
            plan.segments.append(self._close(pending, timing))
        return plan

    def _close(self, layers: List[ConvLayerSpec], timing: TimingFn) -> Segment:
        allocation = AllocationResult()
        for spec in layers:
            count = self.capacity.min_nodes(spec, max_nodes=self.array_size - 1)
            allocation.nodes[spec.index] = count
            allocation.times[spec.index] = timing(spec, count)
        allocation.bottleneck_time = max(allocation.times.values())
        return Segment(layers=list(layers), allocation=allocation)


class HeuristicStrategy(MappingStrategy):
    """Group by ifmap size, then balance with the Eq. (1) allocator."""

    name = "heuristic"

    def plan(self, network: NetworkSpec, timing: TimingFn) -> SegmentPlan:
        plan = SegmentPlan(strategy=self.name, network=network)
        groups = self._group_by_ifmap(list(network))
        for group in groups:
            for chunk in self._split_to_fit(group):
                allocation = allocate_segment(
                    chunk, self.array_size, timing, self.capacity
                )
                plan.segments.append(Segment(layers=chunk, allocation=allocation))
        return plan

    @staticmethod
    def _group_by_ifmap(layers: List[ConvLayerSpec]) -> List[List[ConvLayerSpec]]:
        groups: List[List[ConvLayerSpec]] = []
        for spec in layers:
            key = (spec.h, spec.w)
            if groups and (groups[-1][0].h, groups[-1][0].w) == key:
                groups[-1].append(spec)
            else:
                groups.append([spec])
        return groups

    def _split_to_fit(self, group: List[ConvLayerSpec]) -> List[List[ConvLayerSpec]]:
        chunks: List[List[ConvLayerSpec]] = []
        current: List[ConvLayerSpec] = []
        used = 0
        for spec in group:
            size = self._min_group(spec)
            if size > self.array_size:
                raise MappingError(f"{spec.name} does not fit the array alone")
            if used + size > self.array_size and current:
                chunks.append(current)
                current, used = [], 0
            current.append(spec)
            used += size
        if current:
            chunks.append(current)
        return chunks


STRATEGIES: Dict[str, type] = {
    cls.name: cls
    for cls in (SingleLayerStrategy, GreedyStrategy, HeuristicStrategy)
}
