"""Structured sim-time trace recorder with Chrome trace-event export.

Spans (``ph: "X"``) and instant events (``ph: "i"``) are recorded against
named **tracks** — one per core, router link, DRAM bank, or layer — and
exported as Chrome trace-event JSON, loadable in Perfetto
(https://ui.perfetto.dev) or ``chrome://tracing``.

Track names are ``/``-separated paths; the first segment becomes the
Perfetto *process* (``core``, ``noc``, ``dram``, ``layer``, ...) and the
full name the *thread*, so a many-core run renders as one process per
subsystem with one swim lane per core/link/bank.

All timestamps are **simulation time** (cycles, or a documented logical
clock for untimed functional runs) — never wall clock — so traces are
deterministic and diffable.  Chrome's ``ts`` field is nominally in
microseconds; we emit cycles and document the unit, which viewers render
fine.  Timestamps within one track must be monotone; the recorder clamps
a late-emitted event forward to the track cursor (the end of the last
event) so re-entrant components — e.g. a pipeline re-run on the same
core — stack sequentially instead of producing an invalid trace.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Tuple, Union

from repro.errors import TelemetryError

Number = Union[int, float]

#: ``ph`` values the validator accepts (the subset this recorder emits
#: plus counter samples and metadata).
KNOWN_PHASES = frozenset({"X", "i", "I", "C", "M", "B", "E"})

#: Keys every exported trace event must carry.
REQUIRED_KEYS = ("ph", "ts", "pid", "tid", "name")


@dataclass
class TraceEvent:
    """One recorded event, pre-export (track still symbolic)."""

    track: str
    name: str
    ph: str
    ts: Number
    dur: Optional[Number] = None
    args: Optional[Dict[str, object]] = None


@dataclass
class _Track:
    pid: int
    tid: int
    cursor: Number = 0  # end of the last event on this track


class TraceRecorder:
    """Collects deterministic sim-time spans/instants and exports JSON."""

    def __init__(self) -> None:
        self._events: List[TraceEvent] = []
        self._tracks: Dict[str, _Track] = {}
        self._processes: Dict[str, int] = {}  # first path segment -> pid
        self._next_tid: Dict[int, int] = {}

    def __len__(self) -> int:
        return len(self._events)

    @property
    def events(self) -> Tuple[TraceEvent, ...]:
        return tuple(self._events)

    # -- tracks -----------------------------------------------------------------

    def _track(self, name: str) -> _Track:
        track = self._tracks.get(name)
        if track is None:
            if not name:
                raise TelemetryError("track name must be non-empty")
            process = name.split("/", 1)[0]
            pid = self._processes.get(process)
            if pid is None:
                pid = self._processes[process] = len(self._processes) + 1
                self._next_tid[pid] = 1
            tid = self._next_tid[pid]
            self._next_tid[pid] = tid + 1
            track = self._tracks[name] = _Track(pid=pid, tid=tid)
        return track

    def cursor(self, track: str) -> Number:
        """End timestamp of the last event on ``track`` (0 if untouched).

        Components that keep a local zero-based clock (a re-run pipeline,
        a fresh CMem) offset their spans by this cursor so that repeated
        runs lay out sequentially on the shared track.
        """
        return self._track(track).cursor

    # -- recording ----------------------------------------------------------------

    def complete(
        self,
        track: str,
        name: str,
        ts: Number,
        dur: Number,
        args: Optional[Dict[str, object]] = None,
    ) -> TraceEvent:
        """Record a complete span (``ph: "X"``) of ``dur`` sim-time units."""
        if dur < 0:
            raise TelemetryError(f"span duration must be >= 0, got {dur}")
        t = self._track(track)
        ts = max(ts, t.cursor)  # clamp: tracks must stay monotone
        t.cursor = ts + dur
        event = TraceEvent(track=track, name=name, ph="X", ts=ts, dur=dur, args=args)
        self._events.append(event)
        return event

    def instant(
        self,
        track: str,
        name: str,
        ts: Number,
        args: Optional[Dict[str, object]] = None,
    ) -> TraceEvent:
        """Record an instant event (``ph: "i"``) at sim time ``ts``."""
        t = self._track(track)
        ts = max(ts, t.cursor)
        t.cursor = ts
        event = TraceEvent(track=track, name=name, ph="i", ts=ts, args=args)
        self._events.append(event)
        return event

    def counter_sample(
        self, track: str, name: str, ts: Number, values: Mapping[str, Number]
    ) -> TraceEvent:
        """Record a counter sample (``ph: "C"``; renders as an area chart)."""
        t = self._track(track)
        ts = max(ts, t.cursor)
        t.cursor = ts
        event = TraceEvent(
            track=track, name=name, ph="C", ts=ts, args=dict(values)
        )
        self._events.append(event)
        return event

    # -- export -------------------------------------------------------------------

    def to_chrome(self) -> Dict[str, object]:
        """Export as a Chrome trace-event JSON object.

        Metadata events name each process after its subsystem and each
        thread after its full track path; ``tid`` ordering follows track
        creation order, which is deterministic for deterministic runs.
        """
        events: List[Dict[str, object]] = []
        for process, pid in sorted(self._processes.items(), key=lambda kv: kv[1]):
            events.append(
                {
                    "ph": "M", "ts": 0, "pid": pid, "tid": 0,
                    "name": "process_name", "args": {"name": process},
                }
            )
        for name, track in self._tracks.items():
            events.append(
                {
                    "ph": "M", "ts": 0, "pid": track.pid, "tid": track.tid,
                    "name": "thread_name", "args": {"name": name},
                }
            )
        for ev in self._events:
            track = self._tracks[ev.track]
            out: Dict[str, object] = {
                "ph": ev.ph, "ts": ev.ts, "pid": track.pid, "tid": track.tid,
                "name": ev.name,
            }
            if ev.ph == "X":
                out["dur"] = ev.dur
            if ev.ph == "i":
                out["s"] = "t"  # thread-scoped instant
            if ev.args is not None:
                out["args"] = ev.args
            events.append(out)
        return {
            "traceEvents": events,
            "displayTimeUnit": "ms",
            "otherData": {"ts_unit": "simulation cycles"},
        }

    def to_json(self, *, indent: Optional[int] = None) -> str:
        return json.dumps(self.to_chrome(), indent=indent, sort_keys=True)


def validate_chrome_trace(trace: object) -> int:
    """Validate a Chrome trace-event JSON object; returns the event count.

    Checks the contract the CI smoke job (and any Perfetto load) relies
    on: a ``traceEvents`` list whose entries carry ``ph``/``ts``/``pid``/
    ``tid``/``name``, known phase codes, non-negative ``ts``/``dur``, and
    per-``(pid, tid)`` monotone non-decreasing ``ts`` for non-metadata
    events.  Raises :class:`~repro.errors.TelemetryError` on violation.
    """
    if not isinstance(trace, dict):
        raise TelemetryError(f"trace must be a JSON object, got {type(trace).__name__}")
    events = trace.get("traceEvents")
    if not isinstance(events, list):
        raise TelemetryError("trace must contain a 'traceEvents' list")
    last_ts: Dict[Tuple[object, object], Number] = {}
    for i, ev in enumerate(events):
        if not isinstance(ev, dict):
            raise TelemetryError(f"traceEvents[{i}] is not an object")
        for key in REQUIRED_KEYS:
            if key not in ev:
                raise TelemetryError(f"traceEvents[{i}] missing required key {key!r}")
        ph = ev["ph"]
        if ph not in KNOWN_PHASES:
            raise TelemetryError(f"traceEvents[{i}] has unknown phase {ph!r}")
        ts = ev["ts"]
        if not isinstance(ts, (int, float)) or isinstance(ts, bool) or ts < 0:
            raise TelemetryError(f"traceEvents[{i}] has invalid ts {ts!r}")
        if ph == "X":
            dur = ev.get("dur")
            if not isinstance(dur, (int, float)) or isinstance(dur, bool) or dur < 0:
                raise TelemetryError(f"traceEvents[{i}] span has invalid dur {dur!r}")
        if ph == "M":
            continue
        key_t = (ev["pid"], ev["tid"])
        prev = last_ts.get(key_t)
        if prev is not None and ts < prev:
            raise TelemetryError(
                f"traceEvents[{i}]: ts {ts} < {prev} on track pid={ev['pid']} "
                f"tid={ev['tid']} (timestamps must be monotone per track)"
            )
        last_ts[key_t] = ts
    return len(events)
