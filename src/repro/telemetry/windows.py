"""Windowed time-series metrics over fixed sim-time windows.

A :class:`WindowedSeries` partitions simulation time into fixed-width
windows (``[k*w, (k+1)*w)``) and accumulates observations per window, so
an end-of-run aggregate ("p99 was 4 ms") becomes a *time series* ("p99
was 0.8 ms until t=60 ms, then the burst arrived").  It is the substrate
of the SLO burn-rate detector in :mod:`repro.obs` and the time-series
panels of ``scripts/report.py``.

One series records one quantity in one of three shapes, all held in the
same per-window cell:

* **observations** (:meth:`observe`) — count / total / min / max per
  window, plus bucket counts when the series was created with histogram
  ``bounds`` (so per-window percentiles use the same bucket-interpolated
  estimator as :class:`~repro.telemetry.registry.Histogram`);
* **gauge samples** (:meth:`set`) — the last sampled value per window
  (queue depth, shares), with the sample time kept so merges are
  order-independent;
* **busy ranges** (:meth:`add_range`) — a ``[t0, t1)`` interval split
  across the windows it overlaps (server busy time -> per-window
  utilization).

Everything is simulation-time driven and the export is sorted, so two
identical runs produce byte-identical snapshots.  :meth:`merge` folds a
split run's parts into the whole-run series (cells add pointwise; gauge
cells keep the later sample) — the property the future process-parallel
runner relies on, pinned by ``tests/telemetry/test_windows.py``.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.errors import TelemetryError

Number = Union[int, float]


@dataclass
class WindowCell:
    """Accumulated state of one fixed sim-time window."""

    count: int = 0
    total: float = 0.0
    min: Optional[Number] = None
    max: Optional[Number] = None
    #: Last gauge sample in the window and the sim time it was taken at
    #: (merge keeps the later one, so split runs fold deterministically).
    last: Optional[Number] = None
    last_t: float = -1.0
    #: Busy sim-time accumulated by :meth:`WindowedSeries.add_range`.
    busy: float = 0.0
    #: Histogram bucket tallies (only when the series carries bounds).
    bucket_counts: Optional[List[int]] = None

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def as_dict(self) -> Dict[str, object]:
        out: Dict[str, object] = {
            "count": self.count,
            "total": self.total,
            "min": self.min,
            "max": self.max,
            "last": self.last,
            "last_t": self.last_t,
            "busy": self.busy,
        }
        if self.bucket_counts is not None:
            out["bucket_counts"] = list(self.bucket_counts)
        return out


@dataclass
class WindowedSeries:
    """One metric accumulated into fixed sim-time windows.

    ``window`` is the width in the series' native time unit (the serving
    stack uses milliseconds).  ``bounds`` turns each cell into a bucketed
    histogram so :meth:`percentile` works per window.
    """

    window: float
    bounds: Optional[Tuple[float, ...]] = None
    cells: Dict[int, WindowCell] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.window <= 0:
            raise TelemetryError(
                f"window width must be positive, got {self.window}"
            )
        if self.bounds is not None:
            self.bounds = tuple(self.bounds)
            if list(self.bounds) != sorted(self.bounds):
                raise TelemetryError(
                    f"series bounds must be sorted: {self.bounds}"
                )

    # -- indexing ---------------------------------------------------------------

    def index_of(self, t: float) -> int:
        """The window index containing sim time ``t``."""
        if t < 0:
            raise TelemetryError(f"series time must be >= 0, got {t}")
        return int(t // self.window)

    def window_start(self, index: int) -> float:
        return index * self.window

    def cell(self, index: int) -> WindowCell:
        cell = self.cells.get(index)
        if cell is None:
            cell = self.cells[index] = WindowCell(
                bucket_counts=(
                    [0] * (len(self.bounds) + 1)
                    if self.bounds is not None
                    else None
                )
            )
        return cell

    # -- recording --------------------------------------------------------------

    def observe(self, t: float, v: Number = 1) -> None:
        """Record one observation of value ``v`` at sim time ``t``."""
        cell = self.cell(self.index_of(t))
        cell.count += 1
        cell.total += v
        cell.min = v if cell.min is None else min(cell.min, v)
        cell.max = v if cell.max is None else max(cell.max, v)
        if cell.bucket_counts is not None:
            assert self.bounds is not None
            cell.bucket_counts[bisect_right(self.bounds, v)] += 1

    def set(self, t: float, v: Number) -> None:
        """Record a gauge sample at sim time ``t`` (last-in-window wins)."""
        cell = self.cell(self.index_of(t))
        if t >= cell.last_t:
            cell.last = v
            cell.last_t = t
        cell.count += 1
        cell.min = v if cell.min is None else min(cell.min, v)
        cell.max = v if cell.max is None else max(cell.max, v)

    def add_range(self, t0: float, t1: float) -> None:
        """Distribute the interval ``[t0, t1)`` across the windows it spans.

        Each overlapped window's ``busy`` grows by the overlap length —
        feeding per-window utilization (`busy / window`).
        """
        if t1 < t0:
            raise TelemetryError(f"range end {t1} precedes start {t0}")
        if t1 == t0:
            return
        first = self.index_of(t0)
        last = self.index_of(t1)
        if t1 == self.window_start(last):
            last -= 1  # half-open: an end on a boundary stays left of it
        for k in range(first, last + 1):
            lo = max(t0, self.window_start(k))
            hi = min(t1, self.window_start(k + 1))
            self.cell(k).busy += hi - lo

    # -- reading ----------------------------------------------------------------

    def indices(self) -> List[int]:
        return sorted(self.cells)

    def rate(self, index: int) -> float:
        """Observations per time unit in the window (throughput)."""
        cell = self.cells.get(index)
        return cell.count / self.window if cell is not None else 0.0

    def utilization(self, index: int) -> float:
        """Busy fraction of the window (from :meth:`add_range` intervals)."""
        cell = self.cells.get(index)
        return cell.busy / self.window if cell is not None else 0.0

    def percentile(self, index: int, q: float) -> float:
        """Bucket-interpolated percentile of one window's observations.

        Same estimator as :meth:`Histogram.percentile
        <repro.telemetry.registry.Histogram.percentile>`; requires the
        series to carry ``bounds``.  Returns 0.0 for an empty window.
        """
        if self.bounds is None:
            raise TelemetryError("percentile needs a series with bounds")
        if not 0.0 <= q <= 100.0:
            raise TelemetryError(f"percentile must be in [0, 100], got {q}")
        cell = self.cells.get(index)
        if cell is None or cell.count == 0:
            return 0.0
        assert cell.min is not None and cell.max is not None
        assert cell.bucket_counts is not None
        rank = q / 100.0 * cell.count
        cumulative = 0
        for i, n in enumerate(cell.bucket_counts):
            if n == 0:
                continue
            below = cumulative
            cumulative += n
            if cumulative >= rank:
                lo = self.bounds[i - 1] if i > 0 else float(cell.min)
                hi = (
                    self.bounds[i]
                    if i < len(self.bounds)
                    else float(cell.max)
                )
                lo = max(lo, float(cell.min))
                hi = min(hi, float(cell.max))
                if hi <= lo:
                    return float(lo)
                fraction = (rank - below) / n
                # Mirrors Histogram.percentile: span ends are exact,
                # interior rounding stays inside the span.
                if fraction >= 1.0:
                    return float(hi)
                return float(min(lo + (hi - lo) * fraction, hi))
        return float(cell.max)

    # -- export / aggregation ----------------------------------------------------

    def as_dict(self) -> Dict[str, object]:
        """Deterministic JSON-ready export (cells sorted by window index)."""
        return {
            "window": self.window,
            "bounds": list(self.bounds) if self.bounds is not None else None,
            "cells": {
                str(k): self.cells[k].as_dict() for k in sorted(self.cells)
            },
        }

    def merge(self, other: "WindowedSeries") -> "WindowedSeries":
        """Fold ``other`` into this series in place; returns self.

        Counts/totals/busy add, min/max fold, bucket tallies add, and the
        gauge sample with the later ``last_t`` wins — so merging a run
        split at any point reproduces the whole-run series: every
        discrete field bit-exactly, the running float sums up to
        summation-order ulps (pinned by the split/merge property test).
        """
        if other.window != self.window:
            raise TelemetryError(
                f"cannot merge series: window {other.window} != {self.window}"
            )
        if other.bounds != self.bounds:
            raise TelemetryError(
                "cannot merge series: histogram bounds differ"
            )
        for k, theirs in other.cells.items():
            mine = self.cell(k)
            mine.count += theirs.count
            mine.total += theirs.total
            mine.busy += theirs.busy
            for attr, pick in (("min", min), ("max", max)):
                value = getattr(theirs, attr)
                if value is None:
                    continue
                current = getattr(mine, attr)
                setattr(
                    mine, attr, value if current is None else pick(current, value)
                )
            if theirs.last_t >= mine.last_t:
                mine.last = theirs.last
                mine.last_t = theirs.last_t
            if theirs.bucket_counts is not None:
                assert mine.bucket_counts is not None
                for i, n in enumerate(theirs.bucket_counts):
                    mine.bucket_counts[i] += n
        return self


def series_bounds_ms() -> Tuple[float, ...]:
    """The serving latency bucket bounds, re-exported for window series.

    Imported lazily to avoid a telemetry -> serving import cycle.
    """
    from repro.serving.slo import SLO_LATENCY_BUCKETS_MS

    return SLO_LATENCY_BUCKETS_MS


__all__ = ["WindowCell", "WindowedSeries", "series_bounds_ms"]
