"""Publication hooks: legacy ad-hoc stats objects -> the metrics registry.

Each publisher copies an existing statistics dataclass into registry
counters **without transforming the numbers** — the differential tests in
``tests/telemetry/test_instrumentation.py`` pin that the registry values
are bit-identical to the legacy fields.  Publishers are duck-typed on the
stats objects so this module imports no simulator code (no import
cycles); the simulators import *us*.

All publishers are no-ops on a disabled sink, so call sites need no
guard of their own at end-of-run granularity.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.telemetry import TelemetrySink

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids import cycles
    from repro.dram.controller import DRAMStats
    from repro.noc.mesh import MeshNoC
    from repro.riscv.pipeline import PipelineStats


def publish_pipeline_stats(
    sink: TelemetrySink, prefix: str, stats: "PipelineStats"
) -> None:
    """Publish one core's :class:`PipelineStats` under ``prefix``."""
    if not sink.enabled:
        return
    assert sink.registry is not None
    reg = sink.registry
    for name in (
        "cycles",
        "instructions",
        "raw_stall_cycles",
        "waw_stall_cycles",
        "structural_stall_cycles",
        "wb_stall_cycles",
        "branch_flush_cycles",
        "cmem_instructions",
        "cmem_busy_cycles",
    ):
        reg.counter(f"{prefix}/{name}").add(getattr(stats, name))
    for category, cycles in stats.category_cycles.items():
        reg.counter(f"{prefix}/category/{category}").add(cycles)
    reg.gauge(f"{prefix}/ipc").set(stats.ipc)


def publish_cmem_stats(sink: TelemetrySink, prefix: str, stats) -> None:
    """Publish one CMem's :class:`~repro.cmem.cmem.CMemStats`."""
    if not sink.enabled:
        return
    assert sink.registry is not None
    reg = sink.registry
    for name in (
        "macs",
        "moves",
        "set_rows",
        "shift_rows",
        "remote_rows",
        "vertical_writes",
        "busy_cycles",
    ):
        reg.counter(f"{prefix}/{name}").add(getattr(stats, name))


def publish_noc(sink: TelemetrySink, prefix: str, noc: "MeshNoC") -> None:
    """Publish mesh traffic counters plus per-link occupancy."""
    if not sink.enabled:
        return
    assert sink.registry is not None
    reg = sink.registry
    stats = noc.stats
    reg.counter(f"{prefix}/packets").add(stats.packets)
    reg.counter(f"{prefix}/flit_hops").add(stats.flit_hops)
    reg.counter(f"{prefix}/total_latency").add(stats.total_latency)
    reg.gauge(f"{prefix}/avg_latency").set(stats.avg_latency)
    reg.gauge(f"{prefix}/max_queue_depth").max(noc.max_queue_depth)
    for (a, b), link in sorted(noc.link_stats.items()):
        leg = f"{prefix}/link/{a[0]},{a[1]}->{b[0]},{b[1]}"
        reg.counter(f"{leg}/packets").add(link.packets)
        reg.counter(f"{leg}/busy_cycles").add(link.busy_cycles)
        reg.gauge(f"{leg}/max_wait").max(link.max_wait)
    busiest = noc.busiest_link()
    if busiest is not None:
        (a, b), link = busiest
        reg.gauge(f"{prefix}/busiest_link_packets").max(link.packets)


def publish_dram_stats(sink: TelemetrySink, prefix: str, stats: "DRAMStats") -> None:
    """Publish the DRAM controller's access/row/energy counters."""
    if not sink.enabled:
        return
    assert sink.registry is not None
    reg = sink.registry
    for name in ("reads", "writes", "row_hits", "row_misses"):
        reg.counter(f"{prefix}/{name}").add(getattr(stats, name))
    reg.counter(f"{prefix}/energy_pj").add(stats.energy_pj)
    reg.gauge(f"{prefix}/row_hit_rate").set(stats.row_hit_rate)


def publish_group_stats(sink: TelemetrySink, prefix: str, stats) -> None:
    """Publish a node group's :class:`~repro.core.functional.GroupRunStats`."""
    if not sink.enabled:
        return
    assert sink.registry is not None
    reg = sink.registry
    reg.counter(f"{prefix}/vectors_streamed").add(stats.vectors_streamed)
    reg.counter(f"{prefix}/row_transfers").add(stats.row_transfers)
    reg.counter(f"{prefix}/macs").add(stats.macs)
    reg.counter(f"{prefix}/cmem_energy_pj").add(stats.cmem_energy_pj)
