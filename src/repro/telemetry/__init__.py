"""Unified telemetry: metrics registry + sim-time tracing for all tiers.

The simulators publish their existing ad-hoc statistics
(:class:`~repro.riscv.pipeline.PipelineStats`,
:class:`~repro.noc.mesh.NoCStats`, :class:`~repro.dram.controller.DRAMStats`,
CMem busy counters, node-group results) into one hierarchical
:class:`MetricsRegistry` and one :class:`TraceRecorder`, behind a sink
interface:

* :class:`NullSink` — the default.  ``enabled`` is ``False`` and every
  instrumented hot path guards on it, so disabled telemetry costs one
  attribute read per publication site (the PR 1 fast path stays within
  noise; pinned by ``benchmarks/test_perf_regression.py``).
* :class:`Telemetry` — an active sink holding a registry and a recorder.

Components accept an explicit ``telemetry=`` argument or fall back to the
ambient sink installed with :func:`use`::

    from repro import telemetry

    with telemetry.use(telemetry.Telemetry()) as t:
        node = MAICCNode(spec, weights)       # picks up the ambient sink
        node.run(ifmap)
    t.registry.to_json()                      # metrics.json
    t.trace.to_json()                         # trace.json (Perfetto-loadable)

Every timestamp is simulation time (or a documented logical clock for the
untimed functional tier) — never wall clock — so two identical runs emit
byte-identical metrics and trace files.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator, Optional

from repro.telemetry.registry import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    Timer,
)
from repro.telemetry.trace import TraceRecorder, validate_chrome_trace
from repro.telemetry.windows import WindowCell, WindowedSeries


class TelemetrySink:
    """Interface every instrumented component holds a reference to.

    ``enabled`` is the only attribute hot paths may touch; ``registry``
    and ``trace`` are present (``None`` on the null sink) so call sites
    can be written without isinstance checks once guarded.
    """

    enabled: bool = False
    registry: Optional[MetricsRegistry] = None
    trace: Optional[TraceRecorder] = None


class NullSink(TelemetrySink):
    """The no-op default: records nothing, costs one ``enabled`` read."""


class Telemetry(TelemetrySink):
    """An active sink: a metrics registry plus a trace recorder."""

    enabled = True

    def __init__(self) -> None:
        self.registry: MetricsRegistry = MetricsRegistry()
        self.trace: TraceRecorder = TraceRecorder()


#: The process-wide default sink (no-op).
NULL_SINK = NullSink()

_current: TelemetrySink = NULL_SINK


def current() -> TelemetrySink:
    """The ambient sink new components bind to (default: :data:`NULL_SINK`)."""
    return _current


def install(sink: Optional[TelemetrySink]) -> TelemetrySink:
    """Install ``sink`` as the ambient default; returns the previous one."""
    global _current
    previous = _current
    _current = sink if sink is not None else NULL_SINK
    return previous


@contextmanager
def use(sink: TelemetrySink) -> Iterator[TelemetrySink]:
    """Scope ``sink`` as the ambient default for components built inside."""
    previous = install(sink)
    try:
        yield sink
    finally:
        install(previous)


__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_SINK",
    "NullSink",
    "Telemetry",
    "TelemetrySink",
    "Timer",
    "TraceRecorder",
    "WindowCell",
    "WindowedSeries",
    "current",
    "install",
    "use",
    "validate_chrome_trace",
]
