"""Hierarchical metrics registry: counters, gauges, histograms, timers.

Metrics are keyed by ``/``-separated paths mirroring the hardware
hierarchy, e.g. ``core/3/pipeline/raw_stall_cycles`` or
``noc/link/(0, 0)->(1, 0)/packets``.  The registry is deliberately
simulation-flavoured:

* all values come from *simulation* quantities (cycles, packets, pJ) —
  never wall clock — so two identical runs export byte-identical JSON;
* ``snapshot`` / ``diff`` support before/after attribution of a counter
  delta to one phase of a run;
* ``merge`` folds per-core registries (or :class:`PipelineStats`-style
  publications from many cores) into chip-level totals.

The registry itself performs no locking and no I/O; it is plain Python
dictionaries, cheap enough to update from simulator hot loops when
telemetry is enabled and entirely absent from them when it is not (see
:class:`repro.telemetry.NullSink`).
"""

from __future__ import annotations

import json
from bisect import bisect_right
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple, Union

from repro.errors import TelemetryError
from repro.telemetry.windows import WindowedSeries

Number = Union[int, float]

#: Default histogram bucket upper bounds (powers of two; cycles/packet
#: counts span several orders of magnitude).
DEFAULT_BUCKETS: Tuple[float, ...] = tuple(float(1 << i) for i in range(0, 21, 2))


def _check_path(path: str) -> str:
    if not path or not isinstance(path, str):
        raise TelemetryError(f"metric path must be a non-empty string, got {path!r}")
    if path.startswith("/") or path.endswith("/") or "//" in path:
        raise TelemetryError(f"malformed metric path {path!r}")
    return path


@dataclass
class Counter:
    """A monotonically increasing tally (events, cycles, picojoules)."""

    value: Number = 0

    def add(self, n: Number = 1) -> None:
        if n < 0:
            raise TelemetryError(f"counter increment must be >= 0, got {n}")
        self.value += n

    def inc(self) -> None:
        self.add(1)


@dataclass
class Gauge:
    """A point-in-time value (queue depth, utilization, open row)."""

    value: Number = 0

    def set(self, v: Number) -> None:
        self.value = v

    def max(self, v: Number) -> None:
        """Retain the high-water mark."""
        if v > self.value:
            self.value = v


@dataclass
class Histogram:
    """A bucketed distribution plus count/sum/min/max moments."""

    bounds: Tuple[float, ...] = DEFAULT_BUCKETS
    bucket_counts: List[int] = field(default_factory=list)
    count: int = 0
    total: float = 0.0
    min: Optional[Number] = None
    max: Optional[Number] = None

    def __post_init__(self) -> None:
        if list(self.bounds) != sorted(self.bounds):
            raise TelemetryError(f"histogram bounds must be sorted: {self.bounds}")
        if not self.bucket_counts:
            # One bucket per bound plus the overflow bucket.
            self.bucket_counts = [0] * (len(self.bounds) + 1)

    def observe(self, v: Number) -> None:
        self.count += 1
        self.total += v
        self.min = v if self.min is None else min(self.min, v)
        self.max = v if self.max is None else max(self.max, v)
        self.bucket_counts[bisect_right(self.bounds, v)] += 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentile(self, q: float) -> float:
        """Bucket-interpolated percentile estimate (``q`` in [0, 100]).

        Walks the cumulative bucket counts to the bucket containing the
        ``q``-th percentile rank and interpolates linearly inside it —
        the standard Prometheus-style estimator.  The first bucket's
        lower edge and the overflow bucket's upper edge come from the
        recorded ``min``/``max`` moments, so an estimate never leaves
        the observed value range.  Returns 0.0 on an empty histogram.
        """
        if not 0.0 <= q <= 100.0:
            raise TelemetryError(f"percentile must be in [0, 100], got {q}")
        if self.count == 0:
            return 0.0
        assert self.min is not None and self.max is not None
        rank = q / 100.0 * self.count
        cumulative = 0
        for i, n in enumerate(self.bucket_counts):
            if n == 0:
                continue
            below = cumulative
            cumulative += n
            if cumulative >= rank:
                # Bucket i spans (bounds[i-1], bounds[i]]; the edge
                # buckets are clipped to the observed min/max.
                lo = self.bounds[i - 1] if i > 0 else float(self.min)
                hi = self.bounds[i] if i < len(self.bounds) else float(self.max)
                lo = max(lo, float(self.min))
                hi = min(hi, float(self.max))
                if hi <= lo:
                    return float(lo)
                fraction = (rank - below) / n
                # The ends of the span are exact — `lo + (hi - lo) *
                # fraction` can round an ulp off at fraction 1.0, and
                # p100 must be exactly the observed max.  The min()
                # keeps interior rounding inside the span too.
                if fraction >= 1.0:
                    return float(hi)
                return float(min(lo + (hi - lo) * fraction, hi))
        return float(self.max)


@dataclass
class Timer:
    """Accumulated sim-time durations of a repeated activity."""

    count: int = 0
    total: float = 0.0
    min: Optional[Number] = None
    max: Optional[Number] = None

    def record(self, duration: Number) -> None:
        if duration < 0:
            raise TelemetryError(f"timer duration must be >= 0, got {duration}")
        self.count += 1
        self.total += duration
        self.min = duration if self.min is None else min(self.min, duration)
        self.max = duration if self.max is None else max(self.max, duration)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0


class MetricsRegistry:
    """All metrics of one telemetry session, keyed by hierarchical path."""

    def __init__(self) -> None:
        self.counters: Dict[str, Counter] = {}
        self.gauges: Dict[str, Gauge] = {}
        self.histograms: Dict[str, Histogram] = {}
        self.timers: Dict[str, Timer] = {}
        self.series: Dict[str, WindowedSeries] = {}

    # -- access (create on first use) -----------------------------------------

    def counter(self, path: str) -> Counter:
        path = _check_path(path)
        metric = self.counters.get(path)
        if metric is None:
            metric = self.counters[path] = Counter()
        return metric

    def gauge(self, path: str) -> Gauge:
        path = _check_path(path)
        metric = self.gauges.get(path)
        if metric is None:
            metric = self.gauges[path] = Gauge()
        return metric

    def histogram(
        self, path: str, bounds: Optional[Sequence[float]] = None
    ) -> Histogram:
        path = _check_path(path)
        metric = self.histograms.get(path)
        if metric is None:
            metric = self.histograms[path] = Histogram(
                bounds=tuple(bounds) if bounds is not None else DEFAULT_BUCKETS
            )
        return metric

    def timer(self, path: str) -> Timer:
        path = _check_path(path)
        metric = self.timers.get(path)
        if metric is None:
            metric = self.timers[path] = Timer()
        return metric

    def windowed(
        self,
        path: str,
        window: float,
        bounds: Optional[Sequence[float]] = None,
    ) -> WindowedSeries:
        """A :class:`WindowedSeries` at ``path`` (create on first use).

        ``window``/``bounds`` must agree with the existing series on a
        repeat lookup — a silent shape change would corrupt the cells.
        """
        path = _check_path(path)
        metric = self.series.get(path)
        if metric is None:
            metric = self.series[path] = WindowedSeries(
                window=window,
                bounds=tuple(bounds) if bounds is not None else None,
            )
            return metric
        if metric.window != window or metric.bounds != (
            tuple(bounds) if bounds is not None else None
        ):
            raise TelemetryError(
                f"windowed series {path!r} already exists with a different "
                f"window or bounds"
            )
        return metric

    # -- export ---------------------------------------------------------------

    def snapshot(self) -> Dict[str, Number]:
        """Flat ``path -> value`` view of counters and gauges (for diffing)."""
        snap: Dict[str, Number] = {}
        for path, c in self.counters.items():
            snap[path] = c.value
        for path, g in self.gauges.items():
            snap[path] = g.value
        return snap

    @staticmethod
    def diff(
        before: Mapping[str, Number], after: Mapping[str, Number]
    ) -> Dict[str, Number]:
        """Per-path delta between two snapshots (missing paths read as 0)."""
        out: Dict[str, Number] = {}
        for path in set(before) | set(after):
            delta = after.get(path, 0) - before.get(path, 0)
            if delta:
                out[path] = delta
        return out

    def as_dict(self) -> Dict[str, Dict[str, object]]:
        """Full deterministic export (sorted paths, JSON-ready values)."""
        return {
            "counters": {p: self.counters[p].value for p in sorted(self.counters)},
            "gauges": {p: self.gauges[p].value for p in sorted(self.gauges)},
            "histograms": {
                p: {
                    "bounds": list(h.bounds),
                    "bucket_counts": list(h.bucket_counts),
                    "count": h.count,
                    "total": h.total,
                    "min": h.min,
                    "max": h.max,
                }
                for p, h in sorted(self.histograms.items())
            },
            "timers": {
                p: {"count": t.count, "total": t.total, "min": t.min, "max": t.max}
                for p, t in sorted(self.timers.items())
            },
            "series": {
                p: s.as_dict() for p, s in sorted(self.series.items())
            },
        }

    def as_tree(self) -> Dict[str, object]:
        """Counters/gauges nested by path segment (for human reports)."""
        tree: Dict[str, object] = {}
        for path, value in sorted(self.snapshot().items()):
            node = tree
            *parents, leaf = path.split("/")
            for seg in parents:
                child = node.setdefault(seg, {})
                if not isinstance(child, dict):
                    # A leaf and a subtree share a prefix; nest the leaf value.
                    child = node[seg] = {"": child}
                node = child
            node[leaf] = value
        return tree

    def to_json(self, *, indent: Optional[int] = 2) -> str:
        """Deterministic JSON export (sorted keys; sim-time values only)."""
        return json.dumps(self.as_dict(), indent=indent, sort_keys=True)

    # -- aggregation ------------------------------------------------------------

    def merge(self, other: "MetricsRegistry") -> "MetricsRegistry":
        """Fold ``other`` into this registry in place; returns self.

        Counters, histograms, and timers add; gauges keep the maximum
        (the high-water-mark interpretation is the useful one when folding
        per-core registries into chip totals).
        """
        for path, c in other.counters.items():
            self.counter(path).value += c.value
        for path, g in other.gauges.items():
            mine = self.gauges.get(path)
            if mine is None:
                self.gauge(path).set(g.value)
            else:
                mine.max(g.value)
        for path, h in other.histograms.items():
            mine_h = self.histograms.get(path)
            if mine_h is None:
                mine_h = self.histograms[path] = Histogram(bounds=h.bounds)
            if mine_h.bounds != h.bounds:
                raise TelemetryError(
                    f"cannot merge histogram {path!r}: bucket bounds differ"
                )
            mine_h.count += h.count
            mine_h.total += h.total
            for i, n in enumerate(h.bucket_counts):
                mine_h.bucket_counts[i] += n
            for attr in ("min", "max"):
                theirs = getattr(h, attr)
                if theirs is None:
                    continue
                mine_v = getattr(mine_h, attr)
                pick = min if attr == "min" else max
                setattr(mine_h, attr, theirs if mine_v is None else pick(mine_v, theirs))
        for path, s in other.series.items():
            mine_s = self.series.get(path)
            if mine_s is None:
                mine_s = self.series[path] = WindowedSeries(
                    window=s.window, bounds=s.bounds
                )
            mine_s.merge(s)
        for path, t in other.timers.items():
            mine_t = self.timer(path)
            mine_t.count += t.count
            mine_t.total += t.total
            for attr in ("min", "max"):
                theirs = getattr(t, attr)
                if theirs is None:
                    continue
                mine_v = getattr(mine_t, attr)
                pick = min if attr == "min" else max
                setattr(mine_t, attr, theirs if mine_v is None else pick(mine_v, theirs))
        return self

    @classmethod
    def merged(cls, registries: Iterable["MetricsRegistry"]) -> "MetricsRegistry":
        """Merge many registries into a fresh one.

        An empty iterable yields an empty registry (no metrics, zero
        everywhere) — callers aggregating a variable shard count (the
        parallel sweep executor, fleet chip shards) rely on this
        identity element and must not special-case zero shards.
        """
        out = cls()
        for r in registries:
            out.merge(r)
        return out
