"""Static analysis over assembled MAICC programs.

The paper schedules its six CMem extension instructions both dynamically
(FIFO issue queue + scoreboard, Sec. 3.3) and statically by compile-time
reordering, and its kernels lean on software vector locks (Algorithm 1's
``p``/``nextp`` flags).  This package turns those invariants into
machine-checked properties over ``List[Instruction]`` — without running
the program:

* :func:`verify_program` / :class:`KernelVerifier` — basic blocks,
  def-use dataflow, a symbolic scoreboard replay, CMem geometry and
  lock-protocol rules (catalog in :mod:`repro.analysis.rules`, docs in
  ``docs/ANALYSIS.md``);
* :func:`schedule_kernel` / :func:`estimate_cycles` — the static list
  scheduler plus an exact (for branch-free kernels) cycle predictor that
  mirrors :mod:`repro.riscv.pipeline`;
* ``scripts/lint_kernel.py`` — the command-line front end.

Since PR 7 the package also checks *whole systems*, not just kernels
(``scripts/lint_plan.py`` front end, ``analyze_plan()`` entry point):

* :func:`analyze_plan` / :class:`PlanVerifier` — ``PLAN6xx`` resource
  checks over :class:`~repro.mapping.segmentation.SegmentPlan` sets
  (the ``simulate()``/serving pre-flight gate);
* :func:`check_routes` / :func:`replay_routes` — ``NOC7xx``
  channel-dependency deadlock and hot-link checks over mesh route sets;
* :func:`check_batches` / :func:`check_replay` — ``DET8xx``
  same-timestamp batch commutativity and seeded replay diffing.
"""

from repro.analysis.cfg import (
    BasicBlock,
    ControlFlowGraph,
    build_cfg,
    compute_defined,
    compute_liveness,
)
from repro.analysis.determinism import (
    EventAccess,
    accesses_from_events,
    accesses_from_queue,
    check_batches,
    check_replay,
)
from repro.analysis.diagnostics import Diagnostic, LintReport, Severity
from repro.analysis.noc_check import (
    RouteChecker,
    RouteFlow,
    RouteReplay,
    check_routes,
    plan_route_flows,
    replay_routes,
)
from repro.analysis.plan import (
    PlanVerifier,
    ResidentPlan,
    dram_bandwidth_budget,
    verify_plan,
)
from repro.analysis.rules import RULES, Rule, rule
from repro.analysis.system import ANALYSIS_FAMILIES, analyze_plan
from repro.analysis.scheduler import (
    ScheduleReport,
    TimingEstimate,
    estimate_cycles,
    schedule_kernel,
)
from repro.analysis.verifier import (
    AnalysisConfig,
    KernelVerifier,
    lint_text,
    verify_program,
)

__all__ = [
    "ANALYSIS_FAMILIES",
    "AnalysisConfig",
    "BasicBlock",
    "ControlFlowGraph",
    "Diagnostic",
    "EventAccess",
    "KernelVerifier",
    "LintReport",
    "PlanVerifier",
    "RULES",
    "ResidentPlan",
    "RouteChecker",
    "RouteFlow",
    "RouteReplay",
    "Rule",
    "rule",
    "ScheduleReport",
    "Severity",
    "TimingEstimate",
    "accesses_from_events",
    "accesses_from_queue",
    "analyze_plan",
    "build_cfg",
    "check_batches",
    "check_replay",
    "check_routes",
    "compute_defined",
    "compute_liveness",
    "dram_bandwidth_budget",
    "estimate_cycles",
    "lint_text",
    "plan_route_flows",
    "replay_routes",
    "schedule_kernel",
    "verify_plan",
    "verify_program",
]
