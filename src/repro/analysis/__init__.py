"""Static analysis over assembled MAICC programs.

The paper schedules its six CMem extension instructions both dynamically
(FIFO issue queue + scoreboard, Sec. 3.3) and statically by compile-time
reordering, and its kernels lean on software vector locks (Algorithm 1's
``p``/``nextp`` flags).  This package turns those invariants into
machine-checked properties over ``List[Instruction]`` — without running
the program:

* :func:`verify_program` / :class:`KernelVerifier` — basic blocks,
  def-use dataflow, a symbolic scoreboard replay, CMem geometry and
  lock-protocol rules (catalog in :mod:`repro.analysis.rules`, docs in
  ``docs/ANALYSIS.md``);
* :func:`schedule_kernel` / :func:`estimate_cycles` — the static list
  scheduler plus an exact (for branch-free kernels) cycle predictor that
  mirrors :mod:`repro.riscv.pipeline`;
* ``scripts/lint_kernel.py`` — the command-line front end.
"""

from repro.analysis.cfg import (
    BasicBlock,
    ControlFlowGraph,
    build_cfg,
    compute_defined,
    compute_liveness,
)
from repro.analysis.diagnostics import Diagnostic, LintReport, Severity
from repro.analysis.rules import RULES, Rule, rule
from repro.analysis.scheduler import (
    ScheduleReport,
    TimingEstimate,
    estimate_cycles,
    schedule_kernel,
)
from repro.analysis.verifier import (
    AnalysisConfig,
    KernelVerifier,
    lint_text,
    verify_program,
)

__all__ = [
    "AnalysisConfig",
    "BasicBlock",
    "ControlFlowGraph",
    "Diagnostic",
    "KernelVerifier",
    "LintReport",
    "RULES",
    "Rule",
    "rule",
    "ScheduleReport",
    "Severity",
    "TimingEstimate",
    "build_cfg",
    "compute_defined",
    "compute_liveness",
    "estimate_cycles",
    "lint_text",
    "schedule_kernel",
    "verify_program",
]
