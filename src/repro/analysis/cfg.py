"""Control-flow graph and register def-use analyses over assembled programs.

The simulator's PC is an index into the instruction list, so basic blocks
are index ranges: leaders are the entry, every branch target, and every
instruction after a branch or ``halt``.  On top of the CFG this module
provides the two classic bit-vector dataflows the verifier needs over the
32 architectural registers:

* *liveness* (backward, may) — powers the dead-write rule;
* *defined registers* (forward, must) — powers use-before-def.

``x0`` is hard-wired and excluded from both.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Set

from repro.errors import DecodeError
from repro.riscv.isa import Instruction
from repro.riscv.registers import NUM_REGS

# Branches whose ``target`` field must hold a resolved instruction index.
DIRECT_BRANCHES = frozenset({"beq", "bne", "blt", "bge", "bltu", "bgeu", "j", "jal"})
UNCONDITIONAL = frozenset({"j", "jal"})


def instr_reads(instr: Instruction) -> List[int]:
    """Architectural registers this instruction reads (x0 excluded)."""
    try:
        spec = instr.spec
    except DecodeError:
        return []
    regs = []
    if spec.reads_rs1 and instr.rs1:
        regs.append(instr.rs1)
    if spec.reads_rs2 and instr.rs2:
        regs.append(instr.rs2)
    return regs


def instr_write(instr: Instruction) -> Optional[int]:
    """The register this instruction writes, if any (x0 excluded)."""
    try:
        spec = instr.spec
    except DecodeError:
        return None
    if spec.writes_rd and instr.rd:
        return instr.rd
    return None


@dataclass
class BasicBlock:
    """One maximal straight-line region ``[start, end)``."""

    index: int
    start: int
    end: int
    succs: List[int] = field(default_factory=list)
    preds: List[int] = field(default_factory=list)

    @property
    def size(self) -> int:
        return self.end - self.start


@dataclass
class ControlFlowGraph:
    """Basic blocks plus an instruction-index -> block-index map."""

    program: Sequence[Instruction]
    blocks: List[BasicBlock]
    block_of: List[int]
    # True when the program contains an indirect jump (jalr); successor
    # sets are then incomplete and dataflow facts unsound — clients skip
    # the affected rules.
    has_indirect: bool = False

    def reachable(self) -> Set[int]:
        """Block indices reachable from the entry block."""
        if not self.blocks:
            return set()
        seen = {0}
        work = [0]
        while work:
            b = work.pop()
            for s in self.blocks[b].succs:
                if s not in seen:
                    seen.add(s)
                    work.append(s)
        return seen


def build_cfg(program: Sequence[Instruction]) -> ControlFlowGraph:
    """Split a program into basic blocks and wire successor edges."""
    n = len(program)
    if n == 0:
        return ControlFlowGraph(program=program, blocks=[], block_of=[])

    leaders = {0}
    has_indirect = False
    for i, instr in enumerate(program):
        try:
            spec = instr.spec
        except DecodeError:
            continue
        if spec.is_branch or instr.opcode == "halt":
            if i + 1 < n:
                leaders.add(i + 1)
            if instr.opcode == "jalr":
                has_indirect = True
            elif instr.target is not None and 0 <= instr.target < n:
                leaders.add(instr.target)

    starts = sorted(leaders)
    blocks: List[BasicBlock] = []
    block_of = [0] * n
    for bi, start in enumerate(starts):
        end = starts[bi + 1] if bi + 1 < len(starts) else n
        blocks.append(BasicBlock(index=bi, start=start, end=end))
        for i in range(start, end):
            block_of[i] = bi

    for block in blocks:
        last = program[block.end - 1]
        try:
            spec = last.spec
        except DecodeError:
            spec = None
        succs: List[int] = []
        if last.opcode == "halt":
            pass
        elif spec is not None and spec.is_branch:
            if last.opcode == "jalr":
                pass  # indirect: unknown successors (has_indirect is set)
            else:
                if last.target is not None and 0 <= last.target < n:
                    succs.append(block_of[last.target])
                if last.opcode not in UNCONDITIONAL and block.end < n:
                    succs.append(block_of[block.end])
        elif block.end < n:
            succs.append(block_of[block.end])
        block.succs = sorted(set(succs))
        for s in block.succs:
            blocks[s].preds.append(block.index)

    return ControlFlowGraph(
        program=program, blocks=blocks, block_of=block_of, has_indirect=has_indirect
    )


def _block_use_def(
    cfg: ControlFlowGraph, block: BasicBlock
) -> tuple[Set[int], Set[int]]:
    """(upward-exposed uses, defs) of one block."""
    use: Set[int] = set()
    defs: Set[int] = set()
    for i in range(block.start, block.end):
        instr = cfg.program[i]
        for reg in instr_reads(instr):
            if reg not in defs:
                use.add(reg)
        rd = instr_write(instr)
        if rd is not None:
            defs.add(rd)
    return use, defs


def compute_liveness(
    cfg: ControlFlowGraph,
) -> tuple[List[Set[int]], List[Set[int]]]:
    """Per-block (live_in, live_out) register sets (backward, may)."""
    nb = len(cfg.blocks)
    use_def = [_block_use_def(cfg, b) for b in cfg.blocks]
    live_in: List[Set[int]] = [set() for _ in range(nb)]
    live_out: List[Set[int]] = [set() for _ in range(nb)]
    changed = True
    while changed:
        changed = False
        for b in reversed(range(nb)):
            out: Set[int] = set()
            for s in cfg.blocks[b].succs:
                out |= live_in[s]
            use, defs = use_def[b]
            inn = use | (out - defs)
            if out != live_out[b] or inn != live_in[b]:
                live_out[b], live_in[b] = out, inn
                changed = True
    return live_in, live_out


def compute_defined(
    cfg: ControlFlowGraph, assume_defined: FrozenSet[int] = frozenset()
) -> List[Set[int]]:
    """Per-block set of registers defined on *every* path to the block entry.

    ``assume_defined`` seeds the entry block (e.g. an ABI environment where
    ``sp``/``ra`` are pre-set); ``x0`` is always defined.
    """
    nb = len(cfg.blocks)
    all_regs = set(range(NUM_REGS))
    entry_defs = set(assume_defined) | {0}
    defined_in: List[Set[int]] = [set(all_regs) for _ in range(nb)]
    defined_out: List[Set[int]] = [set(all_regs) for _ in range(nb)]
    if nb:
        defined_in[0] = set(entry_defs)
    gen: Dict[int, Set[int]] = {
        b.index: _block_use_def(cfg, b)[1] for b in cfg.blocks
    }
    changed = True
    while changed:
        changed = False
        for b in range(nb):
            if b == 0:
                inn = set(entry_defs)
            else:
                preds = cfg.blocks[b].preds
                if preds:
                    inn = set(all_regs)
                    for p in preds:
                        inn &= defined_out[p]
                else:
                    # Unreachable block: keep top (no use-before-def noise).
                    inn = set(all_regs)
            out = inn | gen[b] | {0}
            if inn != defined_in[b] or out != defined_out[b]:
                defined_in[b], defined_out[b] = inn, out
                changed = True
    return defined_in
