"""Event-tier determinism checking — the ``DET8xx`` rules.

PR 6 made batched draining (:meth:`repro.utils.events.EventQueue.step_batch`)
and the vectorized event engine fast by dispatching every event that
shares a timestamp in one sweep.  That is only sound when each
same-timestamp batch is *commutative*: no two events of different
actors write the same station/queue/bank, and no event reads what a
peer writes at the same instant.  This module turns that property from
an empirical one (the PR 6 byte-identical differential tests) into a
checked one:

* :func:`check_batches` — a happens-before pass over annotated event
  accesses.  Two same-timestamp writes to one resource from different
  actors is ``DET801`` (order-sensitive batch, error); a same-timestamp
  read/write pair across actors is ``DET802`` (order-dependent read,
  warning).  Same-actor pairs are fine: one actor's events dispatch in
  sequence order, which the kernel guarantees.
* :func:`accesses_from_queue` — lift the pending events of a live
  :class:`~repro.utils.events.EventQueue` (scheduled with
  ``actor``/``reads``/``writes`` annotations) into the checker's form.
* :func:`check_replay` — the dynamic backstop (``DET803``): run the
  same seeded simulation twice and diff the two structural trace
  signatures; any divergence means hidden nondeterminism no static
  annotation caught.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Sequence, Set, Tuple

from repro.analysis.diagnostics import LintReport
from repro.analysis.rules import rule
from repro.utils.events import Event, EventQueue


@dataclass(frozen=True)
class EventAccess:
    """One event's footprint: when it runs, who owns it, what it touches."""

    time: float
    actor: str
    tag: str = ""
    reads: Tuple[str, ...] = ()
    writes: Tuple[str, ...] = ()


def accesses_from_events(events: Iterable[Event]) -> List[EventAccess]:
    """Annotated events -> checker form (unannotated events are skipped)."""
    return [
        EventAccess(
            time=e.time, actor=e.actor, tag=e.tag,
            reads=e.reads, writes=e.writes,
        )
        for e in events
        if e.actor and (e.reads or e.writes)
    ]


def accesses_from_queue(queue: EventQueue) -> List[EventAccess]:
    """The pending batches of a live queue, ready for :func:`check_batches`."""
    return accesses_from_events(queue.pending())


def check_batches(accesses: Sequence[EventAccess]) -> LintReport:
    """Classify every same-timestamp batch as commutative or conflicting.

    Deterministic: batches are visited in time order and resources in
    sorted order, so two runs over the same accesses render identical
    reports.
    """
    report = LintReport(program_length=len(accesses))
    batches: Dict[float, List[EventAccess]] = {}
    for access in accesses:
        batches.setdefault(access.time, []).append(access)
    for time in sorted(batches):
        batch = batches[time]
        writers: Dict[str, Set[str]] = {}
        readers: Dict[str, Set[str]] = {}
        for access in batch:
            for resource in access.writes:
                writers.setdefault(resource, set()).add(access.actor)
            for resource in access.reads:
                readers.setdefault(resource, set()).add(access.actor)
        for resource in sorted(writers):
            actors = writers[resource]
            if len(actors) > 1:
                report.add(rule("DET801").diag(
                    f"at t={time:g}, actors {', '.join(sorted(actors))} all "
                    f"write {resource!r}; the batch is not commutative and "
                    f"batched draining is order-sensitive",
                    opcode=resource,
                ))
            cross_readers = readers.get(resource, set()) - actors
            if cross_readers:
                report.add(rule("DET802").diag(
                    f"at t={time:g}, {', '.join(sorted(cross_readers))} "
                    f"read(s) {resource!r} while "
                    f"{', '.join(sorted(actors))} write(s) it; the read "
                    f"observes an order-dependent value",
                    opcode=resource,
                ))
    return report


def check_replay(
    run: Callable[[], str],
    *,
    runs: int = 2,
    label: str = "replay",
) -> LintReport:
    """The ``DET803`` dynamic backstop: N seeded runs must agree.

    ``run`` executes one full seeded simulation and returns a structural
    signature (e.g. a metrics snapshot's deterministic JSON, or a
    rendered event trace).  Any two differing signatures are a
    determinism violation the static batch check missed.
    """
    signatures = [run() for _ in range(max(2, runs))]
    report = LintReport(program_length=len(signatures))
    reference = signatures[0]
    for k, signature in enumerate(signatures[1:], start=2):
        if signature != reference:
            report.add(rule("DET803").diag(
                f"run {k} produced a structurally different trace than "
                f"run 1 ({_first_difference(reference, signature)})",
                opcode=label,
            ))
    return report


def _first_difference(a: str, b: str) -> str:
    if len(a) != len(b):
        return f"lengths differ: {len(a)} vs {len(b)}"
    for i, (ca, cb) in enumerate(zip(a, b)):
        if ca != cb:
            return f"first divergence at offset {i}: {ca!r} vs {cb!r}"
    return "identical prefixes"  # unreachable when a != b
