"""Diagnostics emitted by the static kernel verifier.

A :class:`Diagnostic` pins one finding to one instruction (or the whole
program), carries the rule ID from :mod:`repro.analysis.rules`, and renders
both human-readable (``[E] CMEM301 @12 (line 34) mac.c: ...``) and as JSON
for tooling.  :class:`LintReport` aggregates the findings of one pass.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from enum import Enum, unique
from typing import Any, Dict, List


@unique
class Severity(Enum):
    """How bad a finding is.

    * ``ERROR`` — the program violates an architectural invariant and will
      fault (or silently corrupt state) when executed.
    * ``WARNING`` — legal but almost certainly a bug (dead write, unlocked
      remote vector access).
    * ``INFO`` — performance advisory (a stall the static scheduler could
      hide); never fails a lint.
    """

    ERROR = "error"
    WARNING = "warning"
    INFO = "info"

    @property
    def rank(self) -> int:
        return {"error": 0, "warning": 1, "info": 2}[self.value]

    @property
    def tag(self) -> str:
        return {"error": "E", "warning": "W", "info": "I"}[self.value]


@dataclass(frozen=True)
class Diagnostic:
    """One finding of the verifier."""

    rule: str
    severity: Severity
    message: str
    index: int = -1  # instruction index in the program; -1 = program-level
    opcode: str = ""
    source_line: int = -1

    def render(self) -> str:
        where = f"@{self.index}" if self.index >= 0 else "@program"
        line = f" (line {self.source_line})" if self.source_line > 0 else ""
        op = f" {self.opcode}" if self.opcode else ""
        return f"[{self.severity.tag}] {self.rule} {where}{line}{op}: {self.message}"

    def to_dict(self) -> Dict[str, Any]:
        return {
            "rule": self.rule,
            "severity": self.severity.value,
            "index": self.index,
            "opcode": self.opcode,
            "source_line": self.source_line,
            "message": self.message,
        }


@dataclass
class LintReport:
    """All findings of one verifier pass over one program."""

    program_length: int
    diagnostics: List[Diagnostic] = field(default_factory=list)

    def add(self, diag: Diagnostic) -> None:
        self.diagnostics.append(diag)

    # -- queries ---------------------------------------------------------------

    @property
    def errors(self) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.severity is Severity.ERROR]

    @property
    def warnings(self) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.severity is Severity.WARNING]

    @property
    def infos(self) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.severity is Severity.INFO]

    @property
    def ok(self) -> bool:
        """No errors (warnings and advisories allowed)."""
        return not self.errors

    @property
    def clean(self) -> bool:
        """No errors and no warnings (advisories allowed)."""
        return not self.errors and not self.warnings

    def by_rule(self, rule: str) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.rule == rule]

    def sorted(self) -> List[Diagnostic]:
        return sorted(self.diagnostics, key=lambda d: (d.severity.rank, d.index))

    # -- rendering -------------------------------------------------------------

    def render(self, *, max_infos: int = 20) -> str:
        """Human-readable multi-line report."""
        lines = [
            f"lint: {self.program_length} instructions, "
            f"{len(self.errors)} error(s), {len(self.warnings)} warning(s), "
            f"{len(self.infos)} advisory(ies)"
        ]
        shown_infos = 0
        for diag in self.sorted():
            if diag.severity is Severity.INFO:
                if shown_infos >= max_infos:
                    continue
                shown_infos += 1
            lines.append("  " + diag.render())
        hidden = len(self.infos) - shown_infos
        if hidden > 0:
            lines.append(f"  ... {hidden} more advisories suppressed")
        return "\n".join(lines)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "program_length": self.program_length,
            "errors": len(self.errors),
            "warnings": len(self.warnings),
            "infos": len(self.infos),
            "clean": self.clean,
            "diagnostics": [d.to_dict() for d in self.sorted()],
        }

    def to_json(self, *, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)
