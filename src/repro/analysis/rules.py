"""Catalog of verifier rules.

Every diagnostic the verifier can emit has a stable ID here, grouped by
prefix:

* ``PROG`` — program structure (decode, control flow, reachability);
* ``HAZ``  — register hazards from the symbolic scoreboard replay;
* ``CMEM`` — CMem geometry and operand legality (the 8x(64x256b) design
  point, Table 2 widths, slice-0 reservation);
* ``LOCK`` — the Algorithm-1 ``p``/``nextp`` vector-lock protocol;
* ``MEM``  — statically resolvable data-memory accesses (Table 1 map);
* ``PLAN`` — whole-chip plan verification (CMem capacity, core budgets,
  staging footprint, DRAM bandwidth, tenant co-residency);
* ``NOC``  — mesh route sets (channel-dependency deadlock cycles, hot
  links, malformed routes);
* ``DET``  — event-tier determinism (conflicting same-timestamp event
  batches, replay divergence).

``docs/ANALYSIS.md`` documents each rule with an example diagnostic.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.analysis.diagnostics import Diagnostic, Severity


@dataclass(frozen=True)
class Rule:
    """One verifier rule: stable ID, default severity, and description."""

    id: str
    severity: Severity
    title: str
    description: str

    def diag(
        self,
        message: str,
        *,
        index: int = -1,
        opcode: str = "",
        source_line: int = -1,
    ) -> Diagnostic:
        """Instantiate a diagnostic for this rule."""
        return Diagnostic(
            rule=self.id,
            severity=self.severity,
            message=message,
            index=index,
            opcode=opcode,
            source_line=source_line,
        )


_ALL = [
    # -- program structure -----------------------------------------------------
    Rule("PROG101", Severity.ERROR, "unknown-opcode",
         "An instruction's opcode has no entry in the ISA table."),
    Rule("PROG102", Severity.ERROR, "bad-branch-target",
         "A branch target is unresolved or outside the program."),
    Rule("PROG103", Severity.ERROR, "fall-off-end",
         "Control can run past the last instruction (no halt on some path)."),
    Rule("PROG104", Severity.WARNING, "unreachable-code",
         "A basic block is unreachable from the program entry."),
    # -- register hazards ------------------------------------------------------
    Rule("HAZ201", Severity.INFO, "raw-stall",
         "A reader issues long after fetch because a multi-cycle producer "
         "is still in flight; independent work could fill the gap."),
    Rule("HAZ202", Severity.INFO, "waw-stall",
         "A writer stalls on a prior in-flight write to the same register "
         "(the scoreboard has no renaming)."),
    Rule("HAZ203", Severity.WARNING, "dead-write",
         "A register is written but the value can never be read."),
    Rule("HAZ204", Severity.WARNING, "use-before-def",
         "A register is read on some path before any instruction defines it."),
    # -- CMem geometry and operands -------------------------------------------
    Rule("CMEM301", Severity.ERROR, "slice-out-of-range",
         "A slice operand is outside [0, num_slices)."),
    Rule("CMEM302", Severity.ERROR, "mac-on-slice0",
         "MAC.C targets slice 0, which is reserved as the transpose buffer "
         "(byte-addressed ifmap staging); MACs run in slices 1+."),
    Rule("CMEM303", Severity.ERROR, "row-out-of-range",
         "A row operand (or the n-row vector it starts) exceeds the 64-row "
         "slice."),
    Rule("CMEM304", Severity.ERROR, "illegal-operand-width",
         "The operand width n is outside [1, 32] (32-bit word granularity "
         "of a CMem row)."),
    Rule("CMEM305", Severity.ERROR, "mac-operand-overlap",
         "The two MAC.C operand row ranges overlap; dual-word-line "
         "activation of a row against itself is undefined."),
    Rule("CMEM306", Severity.ERROR, "move-overlap",
         "Move.C source and destination row ranges overlap within one "
         "slice; the row-by-row copy would read already-clobbered rows."),
    Rule("CMEM307", Severity.WARNING, "setrow-value",
         "SetRow.C fills a row with all zeros or all ones; other values "
         "do not describe a bit pattern."),
    Rule("CMEM308", Severity.ERROR, "shiftrow-out-of-range",
         "ShiftRow.C word count shifts by >= the 256-bit row width."),
    Rule("CMEM309", Severity.WARNING, "csr-mask-truncated",
         "SetCSR.C mask has bits above the 8 column-group lanes; hardware "
         "truncates to 8 bits."),
    # -- vector-lock protocol --------------------------------------------------
    Rule("LOCK401", Severity.WARNING, "remote-row-outside-lock",
         "In a program that uses the p/nextp vector locks, a remote row "
         "transfer happens before the first lock acquire; row-level "
         "atomicity alone does not protect multi-row vectors."),
    Rule("LOCK402", Severity.WARNING, "lock-never-released",
         "A vector lock is acquired but no store that could release it "
         "follows; a peer core spinning on p/nextp would deadlock."),
    # -- memory map ------------------------------------------------------------
    Rule("MEM501", Severity.ERROR, "unmapped-address",
         "A statically known address (imm(zero)) falls outside every "
         "region of the Table 1 memory map."),
    Rule("MEM502", Severity.ERROR, "misaligned-access",
         "A statically known address violates the access-size alignment."),
    # -- whole-chip plan verification -------------------------------------------
    Rule("PLAN601", Severity.ERROR, "cmem-over-capacity",
         "A layer's node group cannot hold its filters in CMem even with "
         "split-filter placement; the stager would overflow the slices."),
    Rule("PLAN602", Severity.ERROR, "core-over-subscription",
         "A segment (or the co-resident tenants together) needs more "
         "compute tiles than the array provides."),
    Rule("PLAN603", Severity.ERROR, "no-ifmap-reservation",
         "The layer's precision reserves every row of each compute slice "
         "for the incoming ifmap vector, leaving no slots for filters "
         "(the slice-0 transpose reservation has no compute twin)."),
    Rule("PLAN604", Severity.ERROR, "staging-footprint",
         "A segment stages more weight bytes than the CMem bytes of the "
         "nodes allocated to it can hold."),
    Rule("PLAN605", Severity.WARNING, "dram-bandwidth",
         "The plan's sustained DRAM demand (filter loads plus boundary "
         "fmap staging across co-resident tenants) exceeds the aggregate "
         "channel bandwidth budget."),
    Rule("PLAN606", Severity.ERROR, "tenant-region-overlap",
         "Two co-resident tenants' snake-walk regions overlap; their node "
         "groups would be placed onto the same mesh tiles."),
    # -- NoC route sets ---------------------------------------------------------
    Rule("NOC701", Severity.ERROR, "route-deadlock-cycle",
         "The channel-dependency graph of the route set has a cycle: "
         "every flow in it waits on a link held by the next, and none "
         "can drain."),
    Rule("NOC702", Severity.WARNING, "hot-link",
         "The summed static flit demand on a link exceeds its capacity; "
         "the link saturates and upstream flows back-pressure."),
    Rule("NOC703", Severity.ERROR, "bad-route",
         "A route is malformed: an endpoint off the mesh, a self-loop "
         "(a wildcard placement mapped chain neighbours to one tile), a "
         "discontinuous path, or a path that re-acquires a link it "
         "already holds (self-deadlock)."),
    # -- event-tier determinism -------------------------------------------------
    Rule("DET801", Severity.ERROR, "conflicting-batch",
         "Two same-timestamp events of different actors write one "
         "station/queue/bank; the batch is not commutative, so batched "
         "or vectorized draining is order-sensitive."),
    Rule("DET802", Severity.WARNING, "read-write-race",
         "A same-timestamp pair reads and writes one resource from "
         "different actors; the read observes an order-dependent value."),
    Rule("DET803", Severity.ERROR, "replay-divergence",
         "Two seeded replays of the same plan produced structurally "
         "different telemetry traces; the simulation is not "
         "deterministic."),
]

RULES: Dict[str, Rule] = {rule.id: rule for rule in _ALL}


def rule(rule_id: str) -> Rule:
    """Look up a rule by ID."""
    return RULES[rule_id]
