"""Catalog of verifier rules.

Every diagnostic the verifier can emit has a stable ID here, grouped by
prefix:

* ``PROG`` — program structure (decode, control flow, reachability);
* ``HAZ``  — register hazards from the symbolic scoreboard replay;
* ``CMEM`` — CMem geometry and operand legality (the 8x(64x256b) design
  point, Table 2 widths, slice-0 reservation);
* ``LOCK`` — the Algorithm-1 ``p``/``nextp`` vector-lock protocol;
* ``MEM``  — statically resolvable data-memory accesses (Table 1 map).

``docs/ANALYSIS.md`` documents each rule with an example diagnostic.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.analysis.diagnostics import Diagnostic, Severity


@dataclass(frozen=True)
class Rule:
    """One verifier rule: stable ID, default severity, and description."""

    id: str
    severity: Severity
    title: str
    description: str

    def diag(
        self,
        message: str,
        *,
        index: int = -1,
        opcode: str = "",
        source_line: int = -1,
    ) -> Diagnostic:
        """Instantiate a diagnostic for this rule."""
        return Diagnostic(
            rule=self.id,
            severity=self.severity,
            message=message,
            index=index,
            opcode=opcode,
            source_line=source_line,
        )


_ALL = [
    # -- program structure -----------------------------------------------------
    Rule("PROG101", Severity.ERROR, "unknown-opcode",
         "An instruction's opcode has no entry in the ISA table."),
    Rule("PROG102", Severity.ERROR, "bad-branch-target",
         "A branch target is unresolved or outside the program."),
    Rule("PROG103", Severity.ERROR, "fall-off-end",
         "Control can run past the last instruction (no halt on some path)."),
    Rule("PROG104", Severity.WARNING, "unreachable-code",
         "A basic block is unreachable from the program entry."),
    # -- register hazards ------------------------------------------------------
    Rule("HAZ201", Severity.INFO, "raw-stall",
         "A reader issues long after fetch because a multi-cycle producer "
         "is still in flight; independent work could fill the gap."),
    Rule("HAZ202", Severity.INFO, "waw-stall",
         "A writer stalls on a prior in-flight write to the same register "
         "(the scoreboard has no renaming)."),
    Rule("HAZ203", Severity.WARNING, "dead-write",
         "A register is written but the value can never be read."),
    Rule("HAZ204", Severity.WARNING, "use-before-def",
         "A register is read on some path before any instruction defines it."),
    # -- CMem geometry and operands -------------------------------------------
    Rule("CMEM301", Severity.ERROR, "slice-out-of-range",
         "A slice operand is outside [0, num_slices)."),
    Rule("CMEM302", Severity.ERROR, "mac-on-slice0",
         "MAC.C targets slice 0, which is reserved as the transpose buffer "
         "(byte-addressed ifmap staging); MACs run in slices 1+."),
    Rule("CMEM303", Severity.ERROR, "row-out-of-range",
         "A row operand (or the n-row vector it starts) exceeds the 64-row "
         "slice."),
    Rule("CMEM304", Severity.ERROR, "illegal-operand-width",
         "The operand width n is outside [1, 32] (32-bit word granularity "
         "of a CMem row)."),
    Rule("CMEM305", Severity.ERROR, "mac-operand-overlap",
         "The two MAC.C operand row ranges overlap; dual-word-line "
         "activation of a row against itself is undefined."),
    Rule("CMEM306", Severity.ERROR, "move-overlap",
         "Move.C source and destination row ranges overlap within one "
         "slice; the row-by-row copy would read already-clobbered rows."),
    Rule("CMEM307", Severity.WARNING, "setrow-value",
         "SetRow.C fills a row with all zeros or all ones; other values "
         "do not describe a bit pattern."),
    Rule("CMEM308", Severity.ERROR, "shiftrow-out-of-range",
         "ShiftRow.C word count shifts by >= the 256-bit row width."),
    Rule("CMEM309", Severity.WARNING, "csr-mask-truncated",
         "SetCSR.C mask has bits above the 8 column-group lanes; hardware "
         "truncates to 8 bits."),
    # -- vector-lock protocol --------------------------------------------------
    Rule("LOCK401", Severity.WARNING, "remote-row-outside-lock",
         "In a program that uses the p/nextp vector locks, a remote row "
         "transfer happens before the first lock acquire; row-level "
         "atomicity alone does not protect multi-row vectors."),
    Rule("LOCK402", Severity.WARNING, "lock-never-released",
         "A vector lock is acquired but no store that could release it "
         "follows; a peer core spinning on p/nextp would deadlock."),
    # -- memory map ------------------------------------------------------------
    Rule("MEM501", Severity.ERROR, "unmapped-address",
         "A statically known address (imm(zero)) falls outside every "
         "region of the Table 1 memory map."),
    Rule("MEM502", Severity.ERROR, "misaligned-access",
         "A statically known address violates the access-size alignment."),
]

RULES: Dict[str, Rule] = {rule.id: rule for rule in _ALL}


def rule(rule_id: str) -> Rule:
    """Look up a rule by ID."""
    return RULES[rule_id]
