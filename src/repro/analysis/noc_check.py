"""NoC route-set checking — the ``NOC7xx`` rules.

Wormhole routing acquires a path's links one by one and holds every
earlier link until the tail flit clears the last one (hold-and-wait).
The classical static soundness condition (Dally & Seitz) is on the
*channel-dependency graph*: one node per directed link, one edge for
every consecutive link pair of every route.  A cycle in that graph is a
set of flows that can each hold the link the next one needs — a
deadlock reachable under some timing.  X-Y dimension-ordered routes
(:func:`repro.noc.router.xy_route`) can never close such a cycle (a
Y-link is never followed by an X-link), so only explicitly routed paths
— wildcard placements, hand-built route tables — can trip ``NOC701``.

Checks:

* ``NOC701`` — channel-dependency cycle (one diagnostic per cycle,
  offending links named).
* ``NOC702`` — statically hot link: summed sustained flit demand
  exceeds the link's capacity (warning).
* ``NOC703`` — malformed route: endpoint off the mesh, self-loop,
  discontinuous path, or a path that re-acquires a link it already
  holds (self-deadlock).

:func:`replay_routes` is the dynamic twin: it replays hold-and-wait
link acquisition on the discrete-event kernel, so a route set the
checker calls cyclic demonstrably stalls the event tier too
(``tests/analysis/test_noc_check.py`` pins the agreement).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.analysis.diagnostics import LintReport
from repro.analysis.rules import rule
from repro.errors import NoCError
from repro.mapping.placement import NodePlacement, zigzag_placement
from repro.mapping.segmentation import SegmentPlan
from repro.noc.router import xy_route
from repro.utils.events import EventQueue

Coord = Tuple[int, int]
#: A directed mesh link (the unit of wormhole arbitration).
Link = Tuple[Coord, Coord]


@dataclass(frozen=True)
class RouteFlow:
    """One sustained flow of a plan's route set.

    ``path`` is the explicit tile sequence (inclusive of ``src`` and
    ``dst``); ``None`` means the deterministic X-Y route.  ``rate`` is
    the sustained demand in flits/cycle the hot-link check sums; 0 opts
    the flow out of ``NOC702``.
    """

    name: str
    src: Coord
    dst: Coord
    flits: int = 1
    rate: float = 0.0
    path: Optional[Tuple[Coord, ...]] = None

    def resolved_path(self, width: int, height: int) -> List[Coord]:
        if self.path is not None:
            return list(self.path)
        return xy_route(self.src, self.dst, width, height)


def path_links(path: Sequence[Coord]) -> List[Link]:
    """The directed links a path acquires, in order."""
    return [(a, b) for a, b in zip(path, path[1:])]


def _fmt_link(link: Link) -> str:
    return f"{link[0]}->{link[1]}"


class RouteChecker:
    """Static checks over a set of route flows on one mesh."""

    def __init__(
        self,
        *,
        width: int = 16,
        height: int = 16,
        link_capacity: float = 1.0,
    ) -> None:
        self.width = width
        self.height = height
        self.link_capacity = link_capacity
        self.report = LintReport(program_length=0)

    def _emit(self, rule_id: str, message: str, *, where: str = "") -> None:
        self.report.add(rule(rule_id).diag(message, opcode=where))

    # -- the pass --------------------------------------------------------------

    def check(self, flows: Sequence[RouteFlow]) -> LintReport:
        self.report.program_length = len(flows)
        links_of: Dict[str, List[Link]] = {}
        for flow in flows:
            links = self._validate(flow)
            if links is not None:
                links_of[flow.name] = links
        self._check_hot_links(flows, links_of)
        self._check_cycles(links_of)
        return self.report

    # -- NOC703: malformed routes ----------------------------------------------

    def _validate(self, flow: RouteFlow) -> Optional[List[Link]]:
        for label, coord in (("src", flow.src), ("dst", flow.dst)):
            x, y = coord
            if not (0 <= x < self.width and 0 <= y < self.height):
                self._emit(
                    "NOC703",
                    f"{label} {coord} is outside the "
                    f"{self.width}x{self.height} mesh",
                    where=flow.name,
                )
                return None
        if flow.src == flow.dst:
            self._emit(
                "NOC703",
                f"route is a self-loop at {flow.src} (a wildcard placement "
                f"mapped chain neighbours onto one tile)",
                where=flow.name,
            )
            return None
        try:
            path = flow.resolved_path(self.width, self.height)
        except NoCError as exc:
            self._emit("NOC703", str(exc), where=flow.name)
            return None
        if path[0] != flow.src or path[-1] != flow.dst:
            self._emit(
                "NOC703",
                f"path endpoints {path[0]}->{path[-1]} do not match "
                f"src/dst {flow.src}->{flow.dst}",
                where=flow.name,
            )
            return None
        for a, b in zip(path, path[1:]):
            if abs(a[0] - b[0]) + abs(a[1] - b[1]) != 1:
                self._emit(
                    "NOC703",
                    f"path is discontinuous: {a} and {b} are not "
                    f"mesh neighbours",
                    where=flow.name,
                )
                return None
            if not (0 <= b[0] < self.width and 0 <= b[1] < self.height):
                self._emit(
                    "NOC703",
                    f"path leaves the mesh at {b}",
                    where=flow.name,
                )
                return None
        links = path_links(path)
        seen: Set[Link] = set()
        for link in links:
            if link in seen:
                self._emit(
                    "NOC703",
                    f"path re-acquires link {_fmt_link(link)} it already "
                    f"holds (self-deadlock under wormhole hold-and-wait)",
                    where=flow.name,
                )
                return None
            seen.add(link)
        return links

    # -- NOC702: hot links -----------------------------------------------------

    def _check_hot_links(
        self,
        flows: Sequence[RouteFlow],
        links_of: Dict[str, List[Link]],
    ) -> None:
        rates = {flow.name: flow.rate for flow in flows}
        demand: Dict[Link, float] = {}
        for name, links in links_of.items():
            for link in links:
                demand[link] = demand.get(link, 0.0) + rates[name]
        for link in sorted(demand):
            if demand[link] > self.link_capacity:
                users = sorted(
                    name for name, links in links_of.items() if link in links
                )
                self._emit(
                    "NOC702",
                    f"link {_fmt_link(link)} carries "
                    f"{demand[link]:.2f} flits/cycle "
                    f"(capacity {self.link_capacity:.2f}) from "
                    f"{', '.join(users)}",
                    where=_fmt_link(link),
                )

    # -- NOC701: channel-dependency cycles -------------------------------------

    def _check_cycles(self, links_of: Dict[str, List[Link]]) -> None:
        edges: Dict[Link, Set[Link]] = {}
        nodes: Set[Link] = set()
        for links in links_of.values():
            nodes.update(links)
            for a, b in zip(links, links[1:]):
                edges.setdefault(a, set()).add(b)
        for scc in _strongly_connected(nodes, edges):
            if len(scc) < 2:
                continue  # single-link SCCs: self-edges are NOC703 cases
            cycle = _order_cycle(scc, edges)
            named = " -> ".join(_fmt_link(link) for link in cycle)
            flows = sorted(
                name
                for name, links in links_of.items()
                if any(link in scc for link in links)
            )
            self._emit(
                "NOC701",
                f"channel-dependency cycle over {len(scc)} links: "
                f"{named} (flows {', '.join(flows)}); every flow waits "
                f"on a link the next one holds",
                where=flows[0] if flows else "",
            )


def _strongly_connected(
    nodes: Set[Link], edges: Dict[Link, Set[Link]]
) -> List[List[Link]]:
    """Iterative Tarjan SCC, deterministic over sorted nodes."""
    index: Dict[Link, int] = {}
    lowlink: Dict[Link, int] = {}
    on_stack: Set[Link] = set()
    stack: List[Link] = []
    sccs: List[List[Link]] = []
    counter = [0]

    for root in sorted(nodes):
        if root in index:
            continue
        work: List[Tuple[Link, List[Link]]] = [
            (root, sorted(edges.get(root, ())))
        ]
        index[root] = lowlink[root] = counter[0]
        counter[0] += 1
        stack.append(root)
        on_stack.add(root)
        while work:
            node, succs = work[-1]
            advanced = False
            while succs:
                succ = succs.pop(0)
                if succ not in index:
                    index[succ] = lowlink[succ] = counter[0]
                    counter[0] += 1
                    stack.append(succ)
                    on_stack.add(succ)
                    work.append((succ, sorted(edges.get(succ, ()))))
                    advanced = True
                    break
                if succ in on_stack:
                    lowlink[node] = min(lowlink[node], index[succ])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[node])
            if lowlink[node] == index[node]:
                scc: List[Link] = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    scc.append(member)
                    if member == node:
                        break
                sccs.append(sorted(scc))
    return sccs


def _order_cycle(scc: List[Link], edges: Dict[Link, Set[Link]]) -> List[Link]:
    """Walk one cycle through the SCC for a readable diagnostic."""
    members = set(scc)
    start = scc[0]
    cycle = [start]
    seen = {start}
    node = start
    while True:
        nexts = sorted(n for n in edges.get(node, ()) if n in members)
        if not nexts:
            break
        node = nexts[0]
        if node in seen:
            break
        cycle.append(node)
        seen.add(node)
    return cycle


def check_routes(
    flows: Sequence[RouteFlow],
    *,
    width: int = 16,
    height: int = 16,
    link_capacity: float = 1.0,
) -> LintReport:
    """Run the ``NOC7xx`` pass over a route set."""
    return RouteChecker(
        width=width, height=height, link_capacity=link_capacity
    ).check(flows)


# -- deriving a plan's route set ------------------------------------------------


def plan_route_flows(
    plan: SegmentPlan,
    placements: Optional[Sequence[NodePlacement]] = None,
    *,
    start_offset: int = 0,
    prefix: str = "",
) -> List[RouteFlow]:
    """The sustained flows of one mapped plan's steady-state waves.

    Mirrors :func:`repro.core.traffic.simulate_segment_traffic`: per
    layer, the ifmap vector ripples down the DC -> core chain (5-flit
    row packets, ``n_bits`` rows per wave per 256-channel sub-vector),
    and finished ofmap values flow to the next layer's DC (2-flit
    scalar stores).  Rates are flits per cycle of the segment's
    bottleneck interval, so a well-balanced plan stays far under link
    capacity.
    """
    import math

    if placements is None:
        placements = [
            zigzag_placement(segment, start_offset=start_offset)
            for segment in plan.segments
        ]
    flows: List[RouteFlow] = []
    for k, (segment, placement) in enumerate(zip(plan.segments, placements)):
        interval = max(1.0, segment.allocation.bottleneck_time)
        indices = [spec.index for spec in segment.layers]
        for pos, spec in enumerate(segment.layers):
            sub = max(1, math.ceil(spec.c / 256))
            chain = [placement.dc[spec.index]] + placement.computing[spec.index]
            wave_flits = 5 * spec.n_bits * sub
            for hop, (src, dst) in enumerate(zip(chain, chain[1:])):
                flows.append(
                    RouteFlow(
                        name=f"{prefix}seg{k}/{spec.name}/chain{hop}",
                        src=src,
                        dst=dst,
                        flits=wave_flits,
                        rate=wave_flits / interval,
                    )
                )
            if pos + 1 < len(segment.layers):
                target = placement.dc[indices[pos + 1]]
                for c, core in enumerate(placement.computing[spec.index]):
                    flows.append(
                        RouteFlow(
                            name=f"{prefix}seg{k}/{spec.name}/ofmap{c}",
                            src=core,
                            dst=target,
                            flits=2,
                            rate=2.0 / interval,
                        )
                    )
    return flows


# -- the dynamic twin: hold-and-wait replay on the event kernel ------------------


@dataclass
class RouteReplay:
    """Outcome of replaying a route set with wormhole hold-and-wait."""

    completed: List[str]
    stalled: List[str]
    time: float

    @property
    def deadlocked(self) -> bool:
        return bool(self.stalled)


class _FlowState:
    def __init__(self, name: str, links: List[Link]) -> None:
        self.name = name
        self.links = links
        self.held = 0
        self.done = False


def replay_routes(
    flows: Sequence[RouteFlow],
    *,
    width: int = 16,
    height: int = 16,
    cycles_per_hop: float = 1.0,
) -> RouteReplay:
    """Replay wormhole link acquisition on the discrete-event kernel.

    Every flow acquires its links in path order, holding each until the
    whole path is owned, then releases them all (one worm per flow).  A
    flow blocked on a busy link parks in that link's FIFO and schedules
    nothing — so a channel-dependency cycle leaves the event queue empty
    with flows still holding links: the kernel *stalls*, which is
    exactly what the static ``NOC701`` check predicts.

    Events are annotated with the links they write, so
    :func:`repro.analysis.determinism.accesses_from_queue` can audit the
    replay's own batches.
    """
    states = [
        _FlowState(f.name, path_links(f.resolved_path(width, height)))
        for f in flows
    ]
    holders: Dict[Link, _FlowState] = {}
    waiters: Dict[Link, List[_FlowState]] = {}
    queue = EventQueue()
    completed: List[str] = []

    def advance(flow: _FlowState) -> None:
        if flow.done:
            return
        if flow.held == len(flow.links):
            finish(flow)
            return
        link = flow.links[flow.held]
        holder = holders.get(link)
        if holder is None:
            holders[link] = flow
            flow.held += 1
            queue.schedule_in(
                cycles_per_hop,
                lambda: advance(flow),
                tag="noc/advance",
                actor=flow.name,
                writes=(_fmt_link(link),),
            )
        else:
            # Hold-and-wait: park without an event.  Only a release can
            # wake the flow — a cyclic route set never produces one.
            waiters.setdefault(link, []).append(flow)

    def finish(flow: _FlowState) -> None:
        flow.done = True
        completed.append(flow.name)
        for link in flow.links:
            if holders.get(link) is flow:
                del holders[link]
                parked = waiters.get(link)
                if parked:
                    queue.schedule_in(
                        0.0,
                        lambda f=parked.pop(0): advance(f),
                        tag="noc/grant",
                        actor=flow.name,
                        writes=(_fmt_link(link),),
                    )

    for state in states:
        queue.schedule_in(
            0.0, lambda f=state: advance(f), tag="noc/inject", actor=state.name
        )
    queue.run()
    stalled = [s.name for s in states if not s.done]
    return RouteReplay(completed=completed, stalled=stalled, time=queue.now)
