"""``analyze_plan()`` — the one entry point for whole-system analysis.

Composes the three system-scope analyzer families over one query:

* ``plan`` — :mod:`repro.analysis.plan` (``PLAN6xx``): CMem capacity,
  core budgets, staging footprint, DRAM bandwidth, tenant co-residency;
* ``noc``  — :mod:`repro.analysis.noc_check` (``NOC7xx``): the
  channel-dependency graph of the plan's (or an explicit) route set;
* ``det``  — :mod:`repro.analysis.determinism` (``DET8xx``): same-
  timestamp batch commutativity over annotated event accesses.

Callers:

* :func:`repro.sim.simulate` runs the ``plan`` family as an opt-out
  pre-flight gate (``SimConfig.preflight``) before spending tier cycles;
* :class:`repro.serving.ServingSimulator` admission runs ``plan`` (+
  co-residency) and ``det`` through
  :meth:`repro.serving.policies.ServingPolicy.preflight`;
* ``scripts/lint_plan.py`` runs all three families from the CLI.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Set, Tuple

from repro.analysis.determinism import EventAccess, check_batches
from repro.analysis.diagnostics import LintReport
from repro.analysis.noc_check import RouteFlow, check_routes, plan_route_flows
from repro.analysis.plan import ResidentPlan, verify_plan
from repro.dram.controller import DRAMConfig
from repro.errors import ConfigurationError, PlacementError
from repro.mapping.placement import zigzag_placement
from repro.mapping.segmentation import SegmentPlan
from repro.sim.config import SimConfig

#: The analyzer families, in the order they run.
ANALYSIS_FAMILIES = ("plan", "noc", "det")


def _merge(into: LintReport, part: LintReport) -> None:
    into.program_length += part.program_length
    into.diagnostics.extend(part.diagnostics)


def _resident_tiles(resident: ResidentPlan) -> List[str]:
    """Every mesh tile the resident's segments ever occupy."""
    tiles: Set[Tuple[int, int]] = set()
    for segment in resident.plan.segments:
        placement = zigzag_placement(
            segment, start_offset=resident.region_start
        )
        tiles.update(placement.dc.values())
        for coords in placement.computing.values():
            tiles.update(coords)
    return [f"tile{t}" for t in sorted(tiles)]


def analyze_plan(
    plan: Optional[SegmentPlan] = None,
    config: Optional[SimConfig] = None,
    *,
    co_resident: Sequence[ResidentPlan] = (),
    routes: Optional[Sequence[RouteFlow]] = None,
    event_batches: Optional[Sequence[EventAccess]] = None,
    dram: Optional[DRAMConfig] = None,
    families: Sequence[str] = ANALYSIS_FAMILIES,
) -> LintReport:
    """Statically analyze a plan (or a co-resident set of plans).

    ``routes`` overrides the route set (``noc`` family); when omitted it
    is derived from the plans' zig-zag placements.  ``event_batches``
    feeds the ``det`` family explicit event accesses; when omitted the
    residents' steady-state waves are modeled as one tile-writing access
    per tenant, so overlapping regions surface as ``DET801`` write-write
    conflicts in addition to ``PLAN606``.  ``families`` restricts the
    pass — the ``simulate()`` pre-flight gate runs ``("plan",)`` only,
    keeping its cost well under 1% of even the analytic tier.
    """
    unknown = [f for f in families if f not in ANALYSIS_FAMILIES]
    if unknown:
        raise ConfigurationError(
            f"unknown analysis families {unknown}; "
            f"choose from {list(ANALYSIS_FAMILIES)}"
        )
    residents = list(co_resident)
    if plan is not None:
        residents.insert(0, ResidentPlan(name="plan", plan=plan))

    report = LintReport(program_length=0)
    if "plan" in families:
        _merge(
            report,
            verify_plan(config=config, co_resident=residents, dram=dram),
        )
    if "noc" in families:
        flows: List[RouteFlow] = list(routes) if routes is not None else []
        if routes is None:
            for resident in residents:
                try:
                    flows.extend(
                        plan_route_flows(
                            resident.plan,
                            start_offset=resident.region_start,
                            prefix=f"{resident.name}/",
                        )
                    )
                except PlacementError:
                    # Region overflow: already a PLAN602 error; there is
                    # no placement to derive routes from.
                    continue
        _merge(report, check_routes(flows))
    if "det" in families:
        accesses: List[EventAccess]
        if event_batches is not None:
            accesses = list(event_batches)
        else:
            accesses = []
            for resident in residents:
                try:
                    tiles = _resident_tiles(resident)
                except PlacementError:
                    continue
                if tiles:
                    # One steady-state wave: the tenant's cores all write
                    # their own stations at the same sim-time.
                    accesses.append(
                        EventAccess(
                            time=0.0,
                            actor=resident.name,
                            tag="wave",
                            writes=tuple(tiles),
                        )
                    )
        _merge(report, check_batches(accesses))
    return report
