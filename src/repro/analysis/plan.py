"""Whole-chip plan verification — the ``PLAN6xx`` rules.

PR 2's kernel verifier checks one program on one core; this module
checks a *plan*: the :class:`~repro.mapping.segmentation.SegmentPlan`
(and, for multi-DNN deployments, several co-resident plans) that the
``repro.sim`` tiers are about to spend cycles simulating.  All resource
math reuses :mod:`repro.sim.accounting` and
:class:`~repro.mapping.capacity.CapacityModel`, so the checker and the
simulators cannot disagree about what a plan costs.

The checks (catalog in :mod:`repro.analysis.rules`, worked diagnostics
in ``docs/ANALYSIS.md``):

* ``PLAN601`` — a layer's node group is below the split-filter capacity
  floor: its filters cannot fit the group's CMems.
* ``PLAN602`` — a segment (or the co-resident tenants together) needs
  more compute tiles than the array/region provides.
* ``PLAN603`` — the layer precision leaves no filter slots per slice
  (the ifmap reservation consumes every row).
* ``PLAN604`` — a segment stages more weight bytes than the raw CMem
  bytes of its allocated computing cores.
* ``PLAN605`` — sustained DRAM demand across co-resident tenants
  exceeds the aggregate channel bandwidth budget (warning).
* ``PLAN606`` — two tenants' snake-walk regions overlap.

Plans produced by :func:`repro.sim.accounting.plan_network` satisfy the
capacity floors by construction; the error rules exist to catch
hand-built, mutated, or mis-partitioned plans *before* a simulation (or
a serving admission) runs them.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Optional, Sequence

from repro.nn.workloads import ConvLayerSpec

from repro.analysis.diagnostics import LintReport
from repro.analysis.rules import rule
from repro.dram.controller import DRAMConfig
from repro.errors import CapacityError
from repro.mapping.capacity import CapacityModel
from repro.mapping.segmentation import Segment, SegmentPlan
from repro.sim.accounting import boundary_bytes, segment_weight_bytes
from repro.sim.config import SimConfig

#: Tiles of the default chip's 15x14 compute region (row 0 and row 15
#: of the 16x16 mesh are LLC rows, one column is reserved — see
#: :func:`repro.mapping.placement.zigzag_placement`).  The verifier
#: itself derives the snake-region size from the *configured* chip
#: (``SimConfig.chip.compute_tiles``), which equals this constant on the
#: paper's geometry; design-space sweeps hand it other meshes.
COMPUTE_REGION_TILES = 15 * 14


@dataclass(frozen=True)
class ResidentPlan:
    """One tenant's mapped plan plus its snake-walk region offset.

    ``region_start`` is the tenant's offset into the global snake walk
    (the same number :meth:`repro.serving.policies.ElasticPolicy.region_starts`
    and :meth:`repro.core.multi_dnn.MultiDNNScheduler.run` hand to
    :func:`~repro.mapping.placement.zigzag_placement`).
    """

    name: str
    plan: SegmentPlan
    region_start: int = 0

    @property
    def footprint(self) -> int:
        """Tiles the resident occupies.

        Segments run sequentially in time and reuse the same region, so
        the widest segment sizes the tenant's tile interval.
        """
        if not self.plan.segments:
            return 0
        return max(segment.total_nodes for segment in self.plan.segments)


@lru_cache(maxsize=4096)
def _split_floor(capacity: CapacityModel, spec: ConvLayerSpec) -> int:
    """Memoized :meth:`CapacityModel.min_nodes_split`.

    Both arguments are frozen dataclasses, and the pre-flight gate
    re-checks the same layer specs on every ``simulate()`` call — the
    memo keeps the gate's steady-state cost well under 1% of the
    analytic tier.  Raises :class:`CapacityError` like the original
    (``lru_cache`` does not cache exceptions, which is fine: the raising
    case is the error path).
    """
    return capacity.min_nodes_split(spec)


def dram_bandwidth_budget(dram: DRAMConfig) -> float:
    """Aggregate sustainable DRAM bytes/cycle.

    Streaming row-hit reads: one ``line_bytes`` line per
    ``tcas + tburst`` cycles per channel.  Deliberately conservative
    (no bank-level pipelining credit) so the ``PLAN605`` warning fires
    before the controller model would actually saturate.
    """
    return dram.channels * dram.line_bytes / (dram.tcas + dram.tburst)


class PlanVerifier:
    """Static resource checks over one or more mapped plans."""

    def __init__(
        self,
        config: Optional[SimConfig] = None,
        *,
        dram: Optional[DRAMConfig] = None,
    ) -> None:
        self.config = config or SimConfig()
        self.dram = dram or DRAMConfig()
        self.report = LintReport(program_length=0)

    # -- emission --------------------------------------------------------------

    def _emit(self, rule_id: str, message: str, *, where: str = "") -> None:
        self.report.add(rule(rule_id).diag(message, opcode=where))

    # -- the pass --------------------------------------------------------------

    def verify(self, residents: Sequence[ResidentPlan]) -> LintReport:
        """Check every resident alone, then their co-residency."""
        layers_checked = 0
        for resident in residents:
            for k, segment in enumerate(resident.plan.segments):
                layers_checked += len(segment.layers)
                self._check_segment(resident, k, segment)
        self._check_co_residency(residents)
        self.report.program_length = layers_checked
        return self.report

    # -- per-segment checks ----------------------------------------------------

    def _check_segment(
        self, resident: ResidentPlan, k: int, segment: Segment
    ) -> None:
        capacity = self.config.capacity
        where = f"{resident.name}:seg{k}"
        if segment.total_nodes > self.config.array_size:
            self._emit(
                "PLAN602",
                f"segment needs {segment.total_nodes} tiles (computing + DC) "
                f"but the array provides {self.config.array_size}",
                where=where,
            )
        for spec in segment.layers:
            layer_where = f"{where}/{spec.name}"
            nodes = segment.allocation.nodes.get(spec.index, 0)
            try:
                floor = _split_floor(capacity, spec)
            except CapacityError:
                self._emit(
                    "PLAN603",
                    f"{spec.n_bits}-bit vectors reserve all "
                    f"{capacity.rows} rows of each compute slice for the "
                    f"ifmap, leaving no filter slots",
                    where=layer_where,
                )
                continue
            if nodes < floor:
                self._emit(
                    "PLAN601",
                    f"{nodes} computing core(s) cannot hold the layer's "
                    f"{spec.m} filters even split "
                    f"(capacity floor: {floor} cores)",
                    where=layer_where,
                )
        # Byte-level staging bound: the weight stream must fit the raw
        # CMem bytes of the computing cores it targets.  Coarser than the
        # slot model above, but independent of it — it catches plans
        # whose allocation dict disagrees with the layer geometry.
        node_bytes = capacity.compute_slices * capacity.rows * capacity.cols / 8
        allocated = sum(segment.allocation.nodes.values()) * node_bytes
        staged = segment_weight_bytes(segment)
        if staged > allocated:
            self._emit(
                "PLAN604",
                f"segment stages {staged:.0f} weight bytes into "
                f"{allocated:.0f} bytes of allocated CMem "
                f"({sum(segment.allocation.nodes.values())} computing cores)",
                where=where,
            )

    # -- cross-resident checks -------------------------------------------------

    def _check_co_residency(self, residents: Sequence[ResidentPlan]) -> None:
        total = sum(r.footprint for r in residents)
        if total > self.config.array_size:
            self._emit(
                "PLAN602",
                f"co-resident tenants need {total} tiles together but the "
                f"array provides {self.config.array_size}",
                where="system",
            )
        intervals = [
            (r.region_start, r.region_start + r.footprint, r.name)
            for r in residents
        ]
        region_tiles = self.config.chip.compute_tiles
        for start, end, name in intervals:
            if end > region_tiles:
                self._emit(
                    "PLAN602",
                    f"{name}'s region [{start}, {end}) runs past the "
                    f"{region_tiles}-tile snake region",
                    where=name,
                )
        for i, (a_start, a_end, a_name) in enumerate(intervals):
            for b_start, b_end, b_name in intervals[i + 1 :]:
                if a_start < b_end and b_start < a_end:
                    self._emit(
                        "PLAN606",
                        f"{a_name}'s region [{a_start}, {a_end}) overlaps "
                        f"{b_name}'s [{b_start}, {b_end}); both would be "
                        f"placed onto the same mesh tiles",
                        where=f"{a_name}+{b_name}",
                    )
        self._check_dram_bandwidth(residents)

    def _check_dram_bandwidth(self, residents: Sequence[ResidentPlan]) -> None:
        budget = dram_bandwidth_budget(self.dram)
        load_bw = self.config.params.filter_load_bw
        # Each tenant's demand is capped at its filter-load port rate, so
        # n * load_bw bounds the total: under budget, skip the per-plan
        # byte sums entirely (the common pre-flight-gate case).
        if len(residents) * load_bw <= budget:
            return
        demand = 0.0
        for resident in residents:
            plan = resident.plan
            total_bytes = sum(
                segment_weight_bytes(segment) for segment in plan.segments
            )
            # Boundary fmaps cross DRAM twice: written out after segment
            # k, read back before segment k+1 (accounting.staging_cycles).
            for k in range(len(plan.segments) - 1):
                total_bytes += 2 * boundary_bytes(plan, k)
            cycles = sum(
                segment.allocation.bottleneck_time
                for segment in plan.segments
            )
            sustained = total_bytes / cycles if cycles > 0 else load_bw
            # A tenant cannot pull faster than its filter-load port.
            demand += min(load_bw, sustained)
        if residents and demand > budget:
            self._emit(
                "PLAN605",
                f"sustained DRAM demand {demand:.1f} B/cycle across "
                f"{len(residents)} resident(s) exceeds the "
                f"{budget:.1f} B/cycle channel budget "
                f"({self.dram.channels} channel(s))",
                where="system",
            )


def verify_plan(
    plan: Optional[SegmentPlan] = None,
    config: Optional[SimConfig] = None,
    *,
    co_resident: Sequence[ResidentPlan] = (),
    dram: Optional[DRAMConfig] = None,
) -> LintReport:
    """Run the ``PLAN6xx`` pass over one plan and/or a co-resident set.

    ``plan`` is wrapped as a resident at region offset 0; pass
    ``co_resident`` alone for multi-tenant deployments where every plan
    already carries its own region offset.
    """
    residents = list(co_resident)
    if plan is not None:
        residents.insert(0, ResidentPlan(name="plan", plan=plan))
    return PlanVerifier(config, dram=dram).verify(residents)
