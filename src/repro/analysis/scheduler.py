"""Static list scheduling with a predictive cycle model.

Sec. 3.3's second scheduling approach: since CMem latencies and data
dependences are known after "compilation", independent instructions can be
moved into the delay slots of multi-cycle CMem ops at compile time.  The
reorder itself is the dependence-safe list scheduler of
:func:`repro.core.scheduler.static_schedule`; this module adds what a
compiler needs to *trust* it:

* :func:`estimate_cycles` — a symbolic replay of the
  :class:`repro.riscv.pipeline.Pipeline` issue rules (scoreboard RAW/WAW,
  the shared :class:`~repro.riscv.pipeline.CMemIssueQueue`, the
  unpipelined divider, write-back ports) that needs no executor and no
  data.  For branch-free programs with statically resolvable addresses —
  every unrolled Algorithm-1 kernel — the prediction is *exact*: it
  reproduces the simulated cycle count bit-for-bit, which
  ``tests/analysis/test_scheduler.py`` pins against the pipeline.
* :func:`schedule_kernel` — reorder, re-verify (the scheduled program
  must introduce no new lint errors), and report predicted stall savings.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.analysis.verifier import AnalysisConfig, verify_program
from repro.core.scheduler import static_schedule
from repro.errors import MemoryMapError, SchedulingError
from repro.riscv.isa import FunctionalUnit, Instruction
from repro.riscv.memory import AddressRegion, MemoryMap
from repro.riscv.pipeline import CMemIssueQueue, PipelineConfig, instr_slices
from repro.riscv.scoreboard import Scoreboard


@dataclass(frozen=True)
class TimingEstimate:
    """Predicted execution profile of one program."""

    cycles: int
    instructions: int
    raw_stall_cycles: int
    waw_stall_cycles: int
    structural_stall_cycles: int
    wb_stall_cycles: int
    # True when the model provably matches the pipeline: no branches and
    # every memory access's region statically known.
    exact: bool

    def to_dict(self) -> Dict[str, object]:
        return {
            "cycles": self.cycles,
            "instructions": self.instructions,
            "raw_stall_cycles": self.raw_stall_cycles,
            "waw_stall_cycles": self.waw_stall_cycles,
            "structural_stall_cycles": self.structural_stall_cycles,
            "wb_stall_cycles": self.wb_stall_cycles,
            "exact": self.exact,
        }


def _static_region(instr: Instruction) -> Optional[AddressRegion]:
    """Region of a load/store when the address is statically known."""
    if instr.rs1 in (None, 0):
        try:
            return MemoryMap.region_of(instr.imm)
        except MemoryMapError:
            return None
    return None


def estimate_cycles(
    program: Sequence[Instruction],
    config: Optional[PipelineConfig] = None,
    *,
    num_cmem_slices: int = 8,
) -> TimingEstimate:
    """Predict the pipeline cycle count of a program without executing it.

    Mirrors :meth:`repro.riscv.pipeline.Pipeline.run` rule for rule —
    in-order issue, scoreboard RAW/WAW, the CMem issue queue and per-slice
    occupancy, the unpipelined divider, write-back port arbitration, and
    the final drain — but walks the instruction list linearly.  Branches
    are assumed not taken and unknown-address memory accesses local, and
    either assumption marks the estimate inexact.
    """
    cfg = config or PipelineConfig()
    sb = Scoreboard()
    cmem = CMemIssueQueue(cfg.cmem_queue_size, num_cmem_slices)
    wb_slots: Dict[int, int] = {}
    muldiv_free = 0
    next_fetch = 0
    raw = waw = structural = wb_stall = 0
    executed = 0
    exact = True

    def reserve_wb(completion: int) -> int:
        cycle = completion
        while wb_slots.get(cycle, 0) >= cfg.writeback_ports:
            cycle += 1
        wb_slots[cycle] = wb_slots.get(cycle, 0) + 1
        return cycle

    for instr in program:
        spec = instr.spec
        executed += 1
        issue = next_fetch

        source_ready = 0
        if spec.reads_rs1 and instr.rs1:
            source_ready = max(source_ready, sb.ready_time(instr.rs1))
        if spec.reads_rs2 and instr.rs2:
            source_ready = max(source_ready, sb.ready_time(instr.rs2))
        if source_ready > issue:
            raw += source_ready - issue
            issue = source_ready

        if spec.writes_rd and instr.rd:
            waw_ready = sb.write_time(instr.rd)
            if waw_ready > issue:
                waw += waw_ready - issue
                issue = waw_ready

        if spec.unit is FunctionalUnit.MULDIV:
            if muldiv_free > issue:
                structural += muldiv_free - issue
                issue = muldiv_free
        elif spec.unit is FunctionalUnit.CMEM:
            gated = cmem.earliest_issue(issue)
            if cmem.queue_size == 0:
                for s in instr_slices(instr):
                    gated = max(gated, cmem.slice_free[s] - 1)
                gated = max(gated, cmem.last_start)
            if gated > issue:
                structural += gated - issue
                issue = gated

        latency = instr.latency()
        if spec.unit is FunctionalUnit.CMEM:
            start = cmem.dispatch(issue + 1, instr_slices(instr), latency)
            completion = start + latency
            if instr.opcode == "loadrow.rc":
                completion += cfg.remote_latency
            elif instr.opcode == "storerow.rc":
                completion += cfg.remote_store_latency
        else:
            if spec.unit is FunctionalUnit.MEM:
                region = _static_region(instr)
                if region is None and instr.rs1 not in (None, 0):
                    exact = False  # unknown address: assume local
                if region is AddressRegion.REMOTE_CORE:
                    latency = (
                        cfg.remote_latency
                        if (spec.is_load or spec.is_atomic)
                        else cfg.remote_store_latency
                    )
                elif region is AddressRegion.DRAM:
                    latency = cfg.dram_latency
            completion = issue + latency
            if spec.unit is FunctionalUnit.MULDIV:
                muldiv_free = completion

        if spec.writes_rd and instr.rd:
            wb_cycle = reserve_wb(completion)
            if wb_cycle > completion:
                wb_stall += wb_cycle - completion
            sb.set_ready(instr.rd, wb_cycle)

        if instr.opcode == "halt":
            break
        if spec.is_branch:
            exact = False  # assumed not taken
        next_fetch = issue + 1

    cycles = max(next_fetch, cmem.all_free_time(), sb.horizon())
    return TimingEstimate(
        cycles=cycles,
        instructions=executed,
        raw_stall_cycles=raw,
        waw_stall_cycles=waw,
        structural_stall_cycles=structural,
        wb_stall_cycles=wb_stall,
        exact=exact,
    )


@dataclass
class ScheduleReport:
    """Outcome of one static-scheduling pass."""

    baseline: TimingEstimate
    scheduled: TimingEstimate
    program: List[Instruction]

    @property
    def predicted_saving(self) -> int:
        return self.baseline.cycles - self.scheduled.cycles

    @property
    def speedup(self) -> float:
        if self.scheduled.cycles == 0:
            return 1.0
        return self.baseline.cycles / self.scheduled.cycles

    def to_dict(self) -> Dict[str, object]:
        return {
            "baseline": self.baseline.to_dict(),
            "scheduled": self.scheduled.to_dict(),
            "predicted_saving": self.predicted_saving,
            "speedup": self.speedup,
        }


def schedule_kernel(
    program: Sequence[Instruction],
    config: Optional[PipelineConfig] = None,
    *,
    num_cmem_slices: int = 8,
    max_window: int = 400,
    analysis_config: Optional[AnalysisConfig] = None,
) -> ScheduleReport:
    """List-schedule a program and predict the stall-cycle savings.

    The scheduled program is re-verified: a reorder that introduces a lint
    *error* the input did not have is a scheduler bug and raises
    :class:`~repro.errors.SchedulingError` rather than silently emitting a
    broken kernel.
    """
    scheduled = static_schedule(program, max_window=max_window)
    before = verify_program(program, analysis_config)
    after = verify_program(scheduled, analysis_config)
    if len(after.errors) > len(before.errors):
        raise SchedulingError(
            "static schedule introduced lint errors: "
            + "; ".join(d.render() for d in after.errors)
        )
    return ScheduleReport(
        baseline=estimate_cycles(program, config, num_cmem_slices=num_cmem_slices),
        scheduled=estimate_cycles(scheduled, config, num_cmem_slices=num_cmem_slices),
        program=scheduled,
    )
