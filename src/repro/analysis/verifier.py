"""Static verifier over assembled MAICC programs.

Consumes a ``List[Instruction]`` (from :func:`repro.riscv.assembler.assemble`
or :meth:`repro.core.conv_kernel.ConvKernelGenerator.instructions`) and,
*without executing it*, checks the invariants the paper's kernels rely on:

1. program structure — decodable opcodes, resolved in-range branch
   targets, no path that falls off the end, no unreachable code;
2. register hazards — a symbolic replay of the issue scoreboard flags
   long RAW/WAW stalls (advisories the static scheduler can hide), plus
   CFG dataflow for dead writes and use-before-def;
3. CMem legality — slice/row operands inside the 8x(64x256b) geometry,
   slice 0 reserved for the transpose buffer (no MAC.C), Table 2 operand
   widths within the 32-bit word granularity, overlap rules for MAC.C and
   same-slice Move.C;
4. lock protocol — remote row transfers in programs that use the
   Algorithm-1 ``p``/``nextp`` vector locks must sit behind an acquire,
   and acquired locks must be released;
5. memory map — statically known ``imm(zero)`` accesses must land in a
   mapped Table 1 region, aligned to the access size.

The rule catalog lives in :mod:`repro.analysis.rules` and is documented in
``docs/ANALYSIS.md``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Optional, Sequence, Set

from repro.analysis.cfg import (
    DIRECT_BRANCHES,
    ControlFlowGraph,
    build_cfg,
    compute_defined,
    compute_liveness,
    instr_reads,
    instr_write,
)
from repro.analysis.diagnostics import LintReport
from repro.analysis.rules import rule
from repro.cmem.isa import MAX_OPERAND_BITS
from repro.errors import CMemError, DecodeError, MemoryMapError
from repro.riscv.assembler import assemble
from repro.riscv.isa import FunctionalUnit, Instruction
from repro.riscv.memory import MemoryMap
from repro.riscv.registers import reg_name
from repro.riscv.scoreboard import Scoreboard

_ATOMIC_OPS = frozenset({"amoswap.w", "amoadd.w", "lr.w", "sc.w"})
_REMOTE_ROW_OPS = frozenset({"loadrow.rc", "storerow.rc"})
_ACCESS_SIZE = {
    "lw": 4, "sw": 4, "lh": 2, "lhu": 2, "sh": 2, "lb": 1, "lbu": 1, "sb": 1,
    "amoswap.w": 4, "amoadd.w": 4, "lr.w": 4, "sc.w": 4,
}


@dataclass(frozen=True)
class AnalysisConfig:
    """Knobs of the verifier (defaults are the paper's design point)."""

    num_slices: int = 8
    rows: int = 64
    cols: int = 256
    max_operand_bits: int = MAX_OPERAND_BITS
    # Minimum stall (cycles) before a RAW/WAW advisory is emitted.
    stall_threshold: int = 8
    # Registers assumed live-in at the program entry (x0 always is).
    assume_defined: FrozenSet[int] = frozenset()


class KernelVerifier:
    """One verification pass over one program."""

    def __init__(
        self,
        program: Sequence[Instruction],
        config: Optional[AnalysisConfig] = None,
    ) -> None:
        self.program = list(program)
        self.config = config or AnalysisConfig()
        self.report = LintReport(program_length=len(self.program))
        self._bad_decode: Set[int] = set()

    # -- helpers ---------------------------------------------------------------

    def _emit(self, rule_id: str, message: str, index: int) -> None:
        instr = self.program[index] if 0 <= index < len(self.program) else None
        self.report.add(
            rule(rule_id).diag(
                message,
                index=index,
                opcode=instr.opcode if instr is not None else "",
                source_line=instr.source_line if instr is not None else -1,
            )
        )

    # -- pass driver -----------------------------------------------------------

    def verify(self) -> LintReport:
        self._check_decode()
        cfg = build_cfg(self.program)
        self._check_control_flow(cfg)
        self._check_cmem_rules()
        self._check_memory_rules()
        self._check_lock_protocol()
        self._check_hazards(cfg)
        return self.report

    # -- 1. structure ----------------------------------------------------------

    def _check_decode(self) -> None:
        for i, instr in enumerate(self.program):
            try:
                instr.spec
            except DecodeError:
                self._bad_decode.add(i)
                self._emit("PROG101", f"unknown opcode {instr.opcode!r}", i)

    def _check_control_flow(self, cfg: ControlFlowGraph) -> None:
        n = len(self.program)
        for i, instr in enumerate(self.program):
            if i in self._bad_decode:
                continue
            if instr.opcode in DIRECT_BRANCHES:
                if instr.target is None:
                    self._emit("PROG102", "branch target was never resolved", i)
                elif not 0 <= instr.target < n:
                    self._emit(
                        "PROG102",
                        f"branch target {instr.target} outside [0, {n})",
                        i,
                    )
        reachable = cfg.reachable()
        for block in cfg.blocks:
            last = self.program[block.end - 1]
            terminal = last.opcode in ("halt", "j", "jal")
            if (
                block.index in reachable
                and block.end == n
                and not terminal
                and last.opcode != "jalr"
            ):
                self._emit(
                    "PROG103",
                    "control can run past the last instruction "
                    "(missing halt or backward jump)",
                    block.end - 1,
                )
            if block.index not in reachable:
                self._emit(
                    "PROG104",
                    f"instructions {block.start}..{block.end - 1} are "
                    "unreachable from the entry",
                    block.start,
                )

    # -- 3. CMem legality ------------------------------------------------------

    def _slice_ok(self, s: int, index: int, what: str) -> bool:
        if not 0 <= s < self.config.num_slices:
            self._emit(
                "CMEM301",
                f"{what} {s} outside [0, {self.config.num_slices})",
                index,
            )
            return False
        return True

    def _row_ok(self, row: int, span: int, index: int, what: str) -> bool:
        if not (0 <= row and row + span <= self.config.rows):
            self._emit(
                "CMEM303",
                f"{what} rows [{row}, {row + span}) outside the "
                f"{self.config.rows}-row slice",
                index,
            )
            return False
        return True

    def _width_ok(self, n: int, index: int) -> bool:
        if not 1 <= n <= self.config.max_operand_bits:
            self._emit(
                "CMEM304",
                f"operand width n={n} outside [1, "
                f"{self.config.max_operand_bits}]",
                index,
            )
            return False
        return True

    def _check_cmem_rules(self) -> None:
        for i, instr in enumerate(self.program):
            if i in self._bad_decode or instr.spec.cmem_op is None:
                continue
            cm = instr.cm
            op = instr.opcode
            if op in ("mac.c", "macu.c"):
                s = cm["slice"]
                if self._slice_ok(s, i, "slice") and s == 0:
                    self._emit(
                        "CMEM302",
                        "MAC.C on slice 0 (reserved transpose buffer); "
                        "compute slices are 1+",
                        i,
                    )
                if self._width_ok(cm["n"], i):
                    n = cm["n"]
                    a_ok = self._row_ok(cm["row_a"], n, i, "operand A")
                    b_ok = self._row_ok(cm["row_b"], n, i, "operand B")
                    if a_ok and b_ok:
                        a, b = cm["row_a"], cm["row_b"]
                        if not (a + n <= b or b + n <= a):
                            self._emit(
                                "CMEM305",
                                f"operand row ranges [{a}, {a + n}) and "
                                f"[{b}, {b + n}) overlap",
                                i,
                            )
            elif op == "move.c":
                src_ok = self._slice_ok(cm["src_slice"], i, "source slice")
                dst_ok = self._slice_ok(cm["dst_slice"], i, "destination slice")
                if self._width_ok(cm["n"], i):
                    n = cm["n"]
                    s_ok = self._row_ok(cm["src_row"], n, i, "source")
                    d_ok = self._row_ok(cm["dst_row"], n, i, "destination")
                    if (
                        src_ok and dst_ok and s_ok and d_ok
                        and cm["src_slice"] == cm["dst_slice"]
                    ):
                        a, b = cm["src_row"], cm["dst_row"]
                        if not (a + n <= b or b + n <= a) and a != b:
                            self._emit(
                                "CMEM306",
                                f"same-slice move rows [{a}, {a + n}) and "
                                f"[{b}, {b + n}) overlap",
                                i,
                            )
            elif op == "setrow.c":
                self._slice_ok(cm["slice"], i, "slice")
                self._row_ok(cm["row"], 1, i, "row")
                if cm["value"] not in (0, 1):
                    self._emit(
                        "CMEM307",
                        f"SetRow.C value {cm['value']} is not 0 or 1",
                        i,
                    )
            elif op == "shiftrow.c":
                self._slice_ok(cm["slice"], i, "slice")
                self._row_ok(cm["row"], 1, i, "row")
                max_words = self.config.cols // 32
                if abs(cm["words"]) >= max_words:
                    self._emit(
                        "CMEM308",
                        f"shift of {cm['words']} words >= the "
                        f"{self.config.cols}-bit row ({max_words} words)",
                        i,
                    )
            elif op in _REMOTE_ROW_OPS:
                self._slice_ok(cm["slice"], i, "slice")
                self._row_ok(cm["row"], 1, i, "row")
            elif op == "setcsr.c":
                self._slice_ok(cm["slice"], i, "slice")
                if cm["mask"] & ~0xFF:
                    self._emit(
                        "CMEM309",
                        f"CSR mask {cm['mask']:#x} has bits above the 8 "
                        "column-group lanes (hardware truncates)",
                        i,
                    )

    # -- 5. memory map ---------------------------------------------------------

    def _check_memory_rules(self) -> None:
        for i, instr in enumerate(self.program):
            if i in self._bad_decode:
                continue
            spec = instr.spec
            if spec.cmem_op is not None or not (spec.is_load or spec.is_store):
                continue
            if instr.rs1 not in (None, 0):
                continue  # address not statically known
            addr = instr.imm
            try:
                MemoryMap.region_of(addr)
            except MemoryMapError:
                self._emit(
                    "MEM501", f"address {addr:#x} is outside the memory map", i
                )
                continue
            size = _ACCESS_SIZE.get(instr.opcode, 1)
            if addr % size:
                self._emit(
                    "MEM502",
                    f"address {addr:#x} not aligned to the {size}-byte access",
                    i,
                )

    # -- 4. lock protocol ------------------------------------------------------

    def _check_lock_protocol(self) -> None:
        guards = [
            i
            for i, instr in enumerate(self.program)
            if i not in self._bad_decode and instr.opcode in _ATOMIC_OPS
        ]
        if not guards:
            return  # single-owner streaming protocol; nothing to check
        first_guard = guards[0]
        for i, instr in enumerate(self.program):
            if instr.opcode in _REMOTE_ROW_OPS and i < first_guard:
                self._emit(
                    "LOCK401",
                    "remote row transfer before the first vector-lock "
                    "acquire; the p/nextp protocol does not protect it",
                    i,
                )
        last_guard = guards[-1]
        released = any(
            instr.spec.is_store
            for i, instr in enumerate(self.program)
            if i > last_guard and i not in self._bad_decode
        )
        if not released:
            self._emit(
                "LOCK402",
                "no store follows the last lock acquire; the lock is "
                "never released",
                last_guard,
            )

    # -- 2. hazards ------------------------------------------------------------

    def _check_hazards(self, cfg: ControlFlowGraph) -> None:
        reachable = cfg.reachable()
        self._replay_scoreboard(cfg, reachable)
        if cfg.has_indirect:
            return  # dataflow facts unsound under indirect jumps
        self._check_dead_writes(cfg, reachable)
        self._check_use_before_def(cfg, reachable)

    def _replay_scoreboard(self, cfg: ControlFlowGraph, reachable: Set[int]) -> None:
        """Symbolic per-block scoreboard replay flagging long stalls."""
        threshold = self.config.stall_threshold
        for block in cfg.blocks:
            if block.index not in reachable:
                continue
            sb = Scoreboard()
            producer: Dict[int, int] = {}
            fetch = 0
            for i in range(block.start, block.end):
                if i in self._bad_decode:
                    continue
                instr = self.program[i]
                issue = fetch
                worst_wait, worst_reg = 0, -1
                for r in instr_reads(instr):
                    wait = sb.ready_time(r) - issue
                    if wait > worst_wait:
                        worst_wait, worst_reg = wait, r
                    issue = max(issue, sb.ready_time(r))
                if worst_wait >= threshold:
                    self._emit(
                        "HAZ201",
                        f"waits {worst_wait} cycles for {reg_name(worst_reg)} "
                        f"from instruction {producer.get(worst_reg, '?')}",
                        i,
                    )
                rd = instr_write(instr)
                if rd is not None:
                    wait = sb.write_time(rd) - issue
                    if wait >= threshold:
                        self._emit(
                            "HAZ202",
                            f"overwrite of {reg_name(rd)} stalls {wait} cycles "
                            f"behind in-flight write from instruction "
                            f"{producer.get(rd, '?')}",
                            i,
                        )
                    issue = max(issue, sb.write_time(rd))
                    try:
                        latency = instr.latency()
                    except CMemError:
                        latency = 1  # illegal width: CMEM304 already emitted
                    extra = 1 if instr.spec.unit is FunctionalUnit.CMEM else 0
                    sb.set_ready(rd, issue + latency + extra)
                    producer[rd] = i
                fetch = issue + 1

    def _check_dead_writes(self, cfg: ControlFlowGraph, reachable: Set[int]) -> None:
        _, live_out = compute_liveness(cfg)
        for block in cfg.blocks:
            if block.index not in reachable:
                continue
            live = set(live_out[block.index])
            for i in reversed(range(block.start, block.end)):
                instr = self.program[i]
                if i in self._bad_decode:
                    continue
                rd = instr_write(instr)
                if rd is not None and not instr.spec.is_branch:
                    if rd not in live:
                        self._emit(
                            "HAZ203",
                            f"value written to {reg_name(rd)} is never read",
                            i,
                        )
                    live.discard(rd)
                for r in instr_reads(instr):
                    live.add(r)

    def _check_use_before_def(
        self, cfg: ControlFlowGraph, reachable: Set[int]
    ) -> None:
        defined_in = compute_defined(cfg, self.config.assume_defined)
        for block in cfg.blocks:
            if block.index not in reachable:
                continue
            defined = set(defined_in[block.index])
            for i in range(block.start, block.end):
                if i in self._bad_decode:
                    continue
                instr = self.program[i]
                for r in instr_reads(instr):
                    if r not in defined:
                        self._emit(
                            "HAZ204",
                            f"{reg_name(r)} may be read before any definition",
                            i,
                        )
                        defined.add(r)  # report each register once per block
                rd = instr_write(instr)
                if rd is not None:
                    defined.add(rd)


def verify_program(
    program: Sequence[Instruction],
    config: Optional[AnalysisConfig] = None,
) -> LintReport:
    """Run the full static verification pass over an instruction list."""
    return KernelVerifier(program, config).verify()


def lint_text(asm_text: str, config: Optional[AnalysisConfig] = None) -> LintReport:
    """Assemble program text and verify it."""
    return verify_program(assemble(asm_text), config)
