"""Shipped fleet scenarios: smoke, contention, failure, and scale.

Every scenario is a deterministic builder — same name + chips + seed,
same bytes out — over scripted :func:`~repro.fleet.profiles.fixed_profile`
models, so the fleet layer's behaviour (routing, balancing, failures,
autoscaling) is exercised at pure event-loop speed:

* ``fleet-smoke`` — 4 chips, three mixed-rate models at comfortable
  utilization: zero shed expected; the CI job pins its JSON bytes.
* ``mixed-rate-fleet`` — 8 chips with one chip degraded 2.25x from t=0.
  The scenario that separates balancers: round-robin keeps feeding the
  slow chip and its tenants' p99 diverges; load-aware policies
  (``least-loaded``, ``p2c``) steer around it.
* ``chip-crash`` — 4 chips; chip 0 (hosting two replicas) crashes
  mid-run.  Its queued and in-flight requests land in ``failed``, its
  replicas re-place onto survivors after weight re-staging, and the
  surviving replicas absorb the traffic — bounded SLO burn, full
  conservation.
* ``autoscale-burst`` — 6 chips, one model starting at a single replica
  under a diurnal ramp; the epoch autoscaler (with SLO burn-rate
  coupling) grows the replica set to follow the wave.
* ``diurnal-million`` — 16 chips, ~80k closed-loop users plus an
  open-loop stream under a shared diurnal day-curve: >= 1M simulated
  requests end to end (the acceptance scenario for fleet scale).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.errors import SimulationError
from repro.fleet.autoscale import AutoscaleConfig
from repro.fleet.failures import ChipCrash, ChipDegradation, FailureScenario
from repro.fleet.profiles import fixed_profile
from repro.fleet.simulator import (
    FleetModelSpec,
    OpenLoopTraffic,
    UserGroupTraffic,
)
from repro.fleet.traffic import DiurnalShape


@dataclass
class FleetScenario:
    """One ready-to-run fleet configuration."""

    name: str
    models: List[FleetModelSpec]
    n_chips: int
    duration_ms: float
    balancer: str = "least-loaded"
    batch_requests: int = 1
    failures: FailureScenario = field(default_factory=FailureScenario)
    autoscale: Optional[AutoscaleConfig] = None


def fleet_smoke(chips: int = 4) -> FleetScenario:
    if chips < 2:
        raise SimulationError("fleet-smoke needs >= 2 chips")
    r_vision = min(3, chips)
    r_speech = min(2, chips)
    r_detect = min(2, chips)
    models = [
        FleetModelSpec(
            name="vision",
            profile=fixed_profile(
                "vision", 0.8, cores=64, staging_ms=0.2, restage_ms=4.0
            ),
            traffic=OpenLoopTraffic(rate_hz=600.0 * r_vision),
            deadline_ms=10.0,
            queue_capacity=256,
            replicas=r_vision,
        ),
        FleetModelSpec(
            name="speech",
            profile=fixed_profile(
                "speech", 1.1, cores=96, staging_ms=0.3, restage_ms=6.0
            ),
            traffic=OpenLoopTraffic(rate_hz=350.0 * r_speech),
            deadline_ms=15.0,
            queue_capacity=256,
            replicas=r_speech,
        ),
        FleetModelSpec(
            name="detect",
            profile=fixed_profile(
                "detect", 2.2, cores=128, staging_ms=0.5, restage_ms=8.0
            ),
            traffic=OpenLoopTraffic(rate_hz=180.0 * r_detect),
            deadline_ms=30.0,
            queue_capacity=256,
            replicas=r_detect,
        ),
    ]
    return FleetScenario(
        name="fleet-smoke",
        models=models,
        n_chips=chips,
        duration_ms=200.0,
    )


def mixed_rate_fleet(chips: int = 8) -> FleetScenario:
    """One degraded chip under contention — the balancer separator."""
    if chips < 5:
        raise SimulationError("mixed-rate-fleet needs >= 5 chips")
    models = [
        FleetModelSpec(
            name="vision",
            profile=fixed_profile(
                "vision", 0.8, cores=64, staging_ms=0.2, restage_ms=4.0
            ),
            traffic=OpenLoopTraffic(rate_hz=2800.0),
            deadline_ms=10.0,
            replicas=4,
        ),
        FleetModelSpec(
            name="speech",
            profile=fixed_profile(
                "speech", 1.1, cores=96, staging_ms=0.3, restage_ms=6.0
            ),
            traffic=OpenLoopTraffic(rate_hz=1500.0),
            deadline_ms=15.0,
            replicas=3,
        ),
        FleetModelSpec(
            name="detect",
            profile=fixed_profile(
                "detect", 2.2, cores=128, staging_ms=0.5, restage_ms=8.0
            ),
            traffic=OpenLoopTraffic(rate_hz=400.0),
            deadline_ms=25.0,
            replicas=2,
        ),
    ]
    # Chip 0 hosts replicas under first-fit-decreasing; throttle it
    # 2.25x from the start — a blind balancer overloads it outright.
    failures = FailureScenario(
        degradations=[ChipDegradation(chip=0, from_ms=0.0, factor=2.25)]
    )
    return FleetScenario(
        name="mixed-rate-fleet",
        models=models,
        n_chips=chips,
        duration_ms=2000.0,
        failures=failures,
    )


def chip_crash(chips: int = 4) -> FleetScenario:
    if chips < 4:
        raise SimulationError("chip-crash needs >= 4 chips")
    models = [
        FleetModelSpec(
            name="vision",
            profile=fixed_profile(
                "vision", 0.8, cores=64, staging_ms=0.2, restage_ms=4.0
            ),
            traffic=OpenLoopTraffic(rate_hz=1800.0),
            deadline_ms=15.0,
            queue_capacity=256,
            replicas=3,
        ),
        FleetModelSpec(
            name="speech",
            profile=fixed_profile(
                "speech", 1.1, cores=96, staging_ms=0.3, restage_ms=6.0
            ),
            traffic=OpenLoopTraffic(rate_hz=700.0),
            deadline_ms=20.0,
            queue_capacity=256,
            replicas=2,
        ),
    ]
    failures = FailureScenario(crashes=[ChipCrash(chip=0, at_ms=400.0)])
    return FleetScenario(
        name="chip-crash",
        models=models,
        n_chips=chips,
        duration_ms=1000.0,
        failures=failures,
    )


def autoscale_burst(chips: int = 6) -> FleetScenario:
    """A diurnal ramp against one starting replica: the scaler follows."""
    if chips < 3:
        raise SimulationError("autoscale-burst needs >= 3 chips")
    shape = DiurnalShape(period_ms=600.0, floor=0.1)
    models = [
        FleetModelSpec(
            name="assist",
            profile=fixed_profile(
                "assist", 1.0, cores=96, staging_ms=0.25, restage_ms=5.0
            ),
            traffic=OpenLoopTraffic(rate_hz=2500.0, shape=shape),
            deadline_ms=12.0,
            queue_capacity=512,
            replicas=1,
        ),
    ]
    return FleetScenario(
        name="autoscale-burst",
        models=models,
        n_chips=chips,
        duration_ms=600.0,
        autoscale=AutoscaleConfig(
            epoch_ms=10.0,
            high_utilization=0.75,
            low_utilization=0.25,
            max_replicas=chips,
            down_epochs=4,
            cooldown_epochs=2,
        ),
    )


def diurnal_million(chips: int = 16) -> FleetScenario:
    """>= 1M simulated requests: closed-loop users + an open stream.

    Sized so one replica of each model lives on every chip and the
    fleet runs near 70% mean utilization over one simulated day-curve
    (requests scale linearly with ``chips``).
    """
    if chips < 2:
        raise SimulationError("diurnal-million needs >= 2 chips")
    duration = 36000.0
    shape = DiurnalShape(period_ms=duration, floor=0.3)
    users = 5000 * chips
    models = [
        FleetModelSpec(
            name="chat",
            profile=fixed_profile(
                "chat", 0.45, cores=120, staging_ms=0.1, restage_ms=5.0
            ),
            traffic=UserGroupTraffic(
                users=users, think_ms=2200.0, shape=shape
            ),
            deadline_ms=8.0,
            replicas=chips,
        ),
        FleetModelSpec(
            name="embed",
            profile=fixed_profile(
                "embed", 0.3, cores=80, staging_ms=0.05, restage_ms=3.0
            ),
            traffic=OpenLoopTraffic(rate_hz=750.0 * chips, shape=shape),
            deadline_ms=5.0,
            queue_capacity=512,
            replicas=chips,
        ),
    ]
    return FleetScenario(
        name="diurnal-million",
        models=models,
        n_chips=chips,
        duration_ms=duration,
    )


FLEET_SCENARIOS: Dict[str, Callable[[int], FleetScenario]] = {
    "fleet-smoke": fleet_smoke,
    "mixed-rate-fleet": mixed_rate_fleet,
    "chip-crash": chip_crash,
    "autoscale-burst": autoscale_burst,
    "diurnal-million": diurnal_million,
}

#: Default chip counts per scenario (the CLI's fallback).
DEFAULT_CHIPS: Dict[str, int] = {
    "fleet-smoke": 4,
    "mixed-rate-fleet": 8,
    "chip-crash": 4,
    "autoscale-burst": 6,
    "diurnal-million": 16,
}


def build_scenario(name: str, chips: Optional[int] = None) -> FleetScenario:
    try:
        builder = FLEET_SCENARIOS[name]
    except KeyError:
        raise SimulationError(
            f"unknown fleet scenario {name!r}; choose from "
            f"{sorted(FLEET_SCENARIOS)}"
        )
    n = chips if chips is not None else DEFAULT_CHIPS[name]
    if n is not None and n < 1:
        raise SimulationError(f"chips must be >= 1, got {n}")
    return builder(n)


def expected_requests(scenario: FleetScenario) -> float:
    """Back-of-envelope request count (for sizing, not assertions)."""
    total = 0.0
    for model in scenario.models:
        if isinstance(model.traffic, OpenLoopTraffic):
            mean = 1.0
            if model.traffic.shape is not None:
                floor = model.traffic.shape.floor
                mean = floor + (1.0 - floor) * 0.5
            total += (
                model.traffic.rate_hz * mean * scenario.duration_ms / 1000.0
            )
        elif isinstance(model.traffic, UserGroupTraffic):
            mean = 1.0
            if model.traffic.shape is not None:
                floor = model.traffic.shape.floor
                mean = floor + (1.0 - floor) * 0.5
            cycle = model.traffic.think_ms / mean + model.profile.service_ms
            total += model.traffic.users * scenario.duration_ms / cycle
    return total


__all__ = [
    "DEFAULT_CHIPS",
    "FLEET_SCENARIOS",
    "FleetScenario",
    "autoscale_burst",
    "build_scenario",
    "chip_crash",
    "diurnal_million",
    "expected_requests",
    "fleet_smoke",
    "mixed_rate_fleet",
]
