"""Fleet-wide results: per-chip reports folded into datacenter SLOs.

A :class:`FleetResult` holds every chip's
:class:`~repro.serving.slo.ServingRunResult` plus the router's control
log (shed counts, crash recoveries, scale events), and derives the
fleet view: per-model latency distributions merged across replicas
(bucket-by-bucket histogram addition, so fleet percentiles come from the
same estimator as per-chip ones), per-chip utilization, and the
conservation identity every run must satisfy —

    generated arrivals == completed + overrun + shed + failed
                          + router-shed

per model, with nothing silently dropped anywhere in the fabric.

``as_dict``/``to_json`` are deterministic (sorted keys, sim-time only):
two same-seed runs — serial or process-parallel — export byte-identical
JSON, which the CI ``fleet-smoke`` job pins.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.errors import SimulationError
from repro.fleet.autoscale import ScaleEvent
from repro.fleet.router import RecoveryEvent
from repro.serving.slo import SLO_LATENCY_BUCKETS_MS, ServingRunResult
from repro.telemetry import Histogram, MetricsRegistry


def merge_latency_histograms(histograms: List[Histogram]) -> Histogram:
    """Bucket-by-bucket fold of per-replica latency histograms."""
    out = Histogram(bounds=SLO_LATENCY_BUCKETS_MS)
    for h in histograms:
        if h.bounds != out.bounds:
            raise SimulationError(
                "cannot merge latency histograms with differing buckets"
            )
        out.count += h.count
        out.total += h.total
        for i, n in enumerate(h.bucket_counts):
            out.bucket_counts[i] += n
        if h.min is not None:
            out.min = h.min if out.min is None else min(out.min, h.min)
        if h.max is not None:
            out.max = h.max if out.max is None else max(out.max, h.max)
    return out


@dataclass
class ModelRollup:
    """One model's fleet-wide fate, folded over its replicas."""

    model: str
    generated: int = 0
    arrivals: int = 0          # reached a chip's admission queue path
    completed: int = 0
    overrun: int = 0
    shed: int = 0              # chip-level admission shedding
    failed: int = 0            # lost to chip crashes
    router_shed: int = 0       # no live replica at routing time
    deadline_misses: int = 0
    replicas_final: int = 0
    histogram: Histogram = field(
        default_factory=lambda: Histogram(bounds=SLO_LATENCY_BUCKETS_MS)
    )

    @property
    def conserved(self) -> bool:
        return self.generated == (
            self.completed
            + self.overrun
            + self.shed
            + self.failed
            + self.router_shed
        )

    def as_dict(self) -> Dict[str, object]:
        return {
            "generated": self.generated,
            "arrivals": self.arrivals,
            "completed": self.completed,
            "overrun": self.overrun,
            "shed": self.shed,
            "failed": self.failed,
            "router_shed": self.router_shed,
            "deadline_misses": self.deadline_misses,
            "replicas_final": self.replicas_final,
            "conserved": self.conserved,
            "latency_ms": {
                "mean": self.histogram.mean,
                "max": float(self.histogram.max)
                if self.histogram.count
                else 0.0,
                "p50": self.histogram.percentile(50.0),
                "p95": self.histogram.percentile(95.0),
                "p99": self.histogram.percentile(99.0),
            },
        }


@dataclass
class FleetResult:
    """Everything one fleet run produced."""

    scenario: str
    balancer: str
    n_chips: int
    duration_ms: float
    seed: int
    placement: Dict[str, object]
    chip_results: Dict[int, Optional[ServingRunResult]]
    models: Dict[str, ModelRollup]
    routed: Dict[int, int] = field(default_factory=dict)
    recoveries: List[RecoveryEvent] = field(default_factory=list)
    scale_events: List[ScaleEvent] = field(default_factory=list)
    failures: Dict[str, object] = field(default_factory=dict)
    router_alert_count: int = 0
    #: Fleet telemetry rollup (``MetricsRegistry.merged`` over per-chip
    #: registries); ``None`` unless the run collected metrics.
    metrics: Optional[MetricsRegistry] = None

    # -- fleet views ------------------------------------------------------------

    @property
    def total_generated(self) -> int:
        return sum(m.generated for m in self.models.values())

    @property
    def total_completed(self) -> int:
        return sum(m.completed for m in self.models.values())

    @property
    def total_shed(self) -> int:
        return sum(m.shed for m in self.models.values())

    @property
    def total_failed(self) -> int:
        return sum(m.failed for m in self.models.values())

    @property
    def total_router_shed(self) -> int:
        return sum(m.router_shed for m in self.models.values())

    @property
    def conserved(self) -> bool:
        return all(m.conserved for m in self.models.values())

    @property
    def worst_model_p99_ms(self) -> float:
        """The slowest model's fleet-wide p99 — the headline SLO figure."""
        return max(
            (
                m.histogram.percentile(99.0)
                for m in self.models.values()
                if m.histogram.count
            ),
            default=0.0,
        )

    def fleet_percentile(self, q: float) -> float:
        """All-model, all-chip latency percentile."""
        merged = merge_latency_histograms(
            [m.histogram for m in self.models.values()]
        )
        return merged.percentile(q)

    def chip_utilization(self) -> Dict[int, float]:
        return {
            chip: (result.utilization() if result is not None else 0.0)
            for chip, result in sorted(self.chip_results.items())
        }

    # -- export -----------------------------------------------------------------

    def as_dict(self) -> Dict[str, object]:
        """Deterministic JSON-ready export (sorted keys, sim-time only)."""
        utilization = self.chip_utilization()
        merged = merge_latency_histograms(
            [m.histogram for m in self.models.values()]
        )
        return {
            "kind": "fleet",
            "scenario": self.scenario,
            "balancer": self.balancer,
            "chips": self.n_chips,
            "duration_ms": self.duration_ms,
            "seed": self.seed,
            "placement": self.placement,
            "models": {
                name: rollup.as_dict()
                for name, rollup in sorted(self.models.items())
            },
            "per_chip": {
                str(chip): (result.as_dict() if result is not None else None)
                for chip, result in sorted(self.chip_results.items())
            },
            "router": {
                "routed": {
                    str(chip): n for chip, n in sorted(self.routed.items())
                },
                "alerts": self.router_alert_count,
            },
            "events": {
                "failures": self.failures,
                "recoveries": [e.as_dict() for e in self.recoveries],
                "scale": [e.as_dict() for e in self.scale_events],
            },
            "utilization": {
                str(chip): u for chip, u in sorted(utilization.items())
            },
            "totals": {
                "generated": self.total_generated,
                "completed": self.total_completed,
                "shed": self.total_shed,
                "failed": self.total_failed,
                "router_shed": self.total_router_shed,
                "conserved": self.conserved,
                "worst_model_p99_ms": self.worst_model_p99_ms,
                "latency_ms": {
                    "mean": merged.mean,
                    "p50": merged.percentile(50.0),
                    "p95": merged.percentile(95.0),
                    "p99": merged.percentile(99.0),
                },
                "mean_utilization": (
                    sum(utilization.values()) / len(utilization)
                    if utilization
                    else 0.0
                ),
            },
        }

    def to_json(self, *, indent: Optional[int] = 2) -> str:
        return json.dumps(self.as_dict(), indent=indent, sort_keys=True)


__all__ = ["FleetResult", "ModelRollup", "merge_latency_histograms"]
