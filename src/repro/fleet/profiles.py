"""Per-model serving profiles: the chip model, pre-computed once.

A fleet run simulates N chips serving millions of requests; re-running
the full mapping + backend pipeline per chip (let alone per request)
would drown the event loop.  Instead the coordinator computes one
:class:`ModelProfile` per model — authoritative service time at the
replica's partition share, batched service time, the analytic-tier
estimate for routing/autoscaling decisions, the weight re-staging cost,
and the phase split for latency attribution — through the same memoized
:class:`~repro.serving.service.ServiceModel` the elastic policy uses.
The profile is plain data (floats and tuples), so it pickles cheaply to
worker processes and the chips run at pure event-loop speed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from repro.errors import SimulationError
from repro.nn.workloads import ConvLayerSpec, NetworkSpec
from repro.obs.timeline import report_phases
from repro.serving.service import ServiceModel

#: ``(phase name, category, weight)`` — the plain-data mirror of
#: :class:`repro.obs.timeline.PhaseSpec` (ratios only; picklable).
PhaseTriple = Tuple[str, str, float]


@dataclass(frozen=True)
class ModelProfile:
    """Everything a chip needs to serve one model replica.

    ``service_ms`` / ``batched_ms`` come from the authoritative backend
    tier (what SLO accounting bills); ``est_ms`` from the cheap analytic
    tier (what the router's fluid load model and the autoscaler use —
    relative orderings, never billing).  ``batched_ms`` is the latency of
    a full ``batch_requests``-sized weight-stationary batch; intermediate
    batch sizes interpolate through the derived one-time
    :attr:`staging_ms` share, exactly like
    :class:`~repro.serving.policies.FixedServicePolicy`.
    """

    name: str
    cores: int
    min_cores: int
    service_ms: float
    batched_ms: float
    batch_requests: int
    est_ms: float
    restage_ms: float
    phases: Tuple[PhaseTriple, ...] = (
        ("service/compute", "compute", 1.0),
    )

    def __post_init__(self) -> None:
        if self.cores < 1:
            raise SimulationError(f"profile cores must be >= 1, got {self.cores}")
        if self.service_ms <= 0:
            raise SimulationError(
                f"profile service_ms must be positive, got {self.service_ms}"
            )
        if self.batch_requests < 1:
            raise SimulationError(
                f"profile batch_requests must be >= 1, got {self.batch_requests}"
            )
        if self.batched_ms < self.service_ms and self.batch_requests > 1:
            raise SimulationError(
                "profile batched_ms must be >= service_ms "
                f"({self.batched_ms} < {self.service_ms})"
            )

    @property
    def staging_ms(self) -> float:
        """One-time share of the service window (amortized by batching).

        Derived so the linear batched model ``stage + n * (service -
        stage)`` reproduces both measured endpoints (``n=1`` and
        ``n=batch_requests``) exactly; clamped to ``[0, service_ms]``.
        """
        if self.batch_requests == 1:
            return 0.0
        stage = (
            self.batch_requests * self.service_ms - self.batched_ms
        ) / (self.batch_requests - 1)
        return min(max(stage, 0.0), self.service_ms)

    def batched_service_ms(self, count: int) -> float:
        if count < 1:
            raise SimulationError(f"batch count must be >= 1, got {count}")
        if count == 1:
            return self.service_ms
        stage = self.staging_ms
        return stage + count * (self.service_ms - stage)

    def stub_network(self) -> NetworkSpec:
        """A 1x1 placeholder network carrying only the model's name.

        Chips never re-simulate the chip model (the profile already holds
        every number), but :class:`~repro.serving.tenancy.TenantSpec`
        carries a network; this keeps worker payloads tiny.
        """
        layer = ConvLayerSpec(index=0, name=f"{self.name}/stub", h=1, w=1, c=1, m=1)
        return NetworkSpec(name=self.name, layers=(layer,))


def profile_model(
    service: ServiceModel,
    name: str,
    network: NetworkSpec,
    cores: int,
    *,
    batch_requests: int = 1,
) -> ModelProfile:
    """Build a profile through the memoized chip-model service.

    Four tier lookups per (network, cores) point — single, batched,
    analytic, restage — all folded into the service model's LRU, so
    repeated placements and autoscale proposals cost nothing extra.
    """
    minimum = service.minimum_cores(network)
    if cores < minimum:
        raise SimulationError(
            f"model {name!r} needs >= {minimum} cores, got {cores}"
        )
    run = service.partition_run(network, cores)
    batched = (
        run.latency_ms
        if batch_requests == 1
        else service.batched_latency_ms(network, cores, batch_requests)
    )
    phases = tuple(
        (spec.name, spec.category, spec.weight)
        for spec in report_phases(run)
    )
    return ModelProfile(
        name=name,
        cores=cores,
        min_cores=minimum,
        service_ms=run.latency_ms,
        batched_ms=batched,
        batch_requests=batch_requests,
        est_ms=service.estimate_latency_ms(network, cores),
        restage_ms=service.restage_ms(network),
        phases=phases,
    )


def fixed_profile(
    name: str,
    service_ms: float,
    *,
    cores: int = 1,
    staging_ms: float = 0.0,
    batch_requests: int = 1,
    est_ms: Optional[float] = None,
    restage_ms: float = 0.0,
) -> ModelProfile:
    """A scripted profile with no chip model behind it.

    The fleet analogue of
    :class:`~repro.serving.policies.FixedServicePolicy`: used by unit
    tests and by large synthetic scenarios (``diurnal-million``) where
    the point is router/balancer behaviour at scale, not chip fidelity.
    """
    if not 0.0 <= staging_ms <= service_ms:
        raise SimulationError(
            f"staging_ms must be within [0, service_ms], got {staging_ms}"
        )
    batched = (
        service_ms
        if batch_requests == 1
        else staging_ms + batch_requests * (service_ms - staging_ms)
    )
    phases: Tuple[PhaseTriple, ...]
    if staging_ms > 0.0:
        phases = (
            ("service/staging", "staging", staging_ms),
            ("service/compute", "compute", service_ms - staging_ms),
        )
    else:
        phases = (("service/compute", "compute", 1.0),)
    return ModelProfile(
        name=name,
        cores=cores,
        min_cores=cores,
        service_ms=service_ms,
        batched_ms=batched,
        batch_requests=batch_requests,
        est_ms=service_ms if est_ms is None else est_ms,
        restage_ms=restage_ms,
        phases=phases,
    )
