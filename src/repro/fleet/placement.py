"""Replica placement: bin-packing model replicas onto fleet chips.

Each chip is one MAICC array of ``array_size`` cores; a replica of a
model owns a fixed partition share (its profile's ``cores``, floored at
the scheduler's ``minimum_cores`` — the capacity floor below which the
mapping pipeline cannot place the network at all).  Placement is
first-fit decreasing over replica core sizes with two hard rules:

* at most one replica of a model per chip (a second co-located replica
  would share the partition, not add capacity);
* the chip's packed shares never exceed ``array_size``.

When the models carry real networks, :func:`preflight_placement` re-runs
the co-residency PLAN-rule analysis (:func:`repro.analysis.analyze_plan`)
per chip over the actual segment plans — the same admission gate the
single-chip serving policies apply — so a fleet layout that would be
rejected on one chip is rejected before any sim-time is spent.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.errors import PlanVerificationError, SimulationError
from repro.fleet.profiles import ModelProfile
from repro.nn.workloads import NetworkSpec


@dataclass(frozen=True)
class ReplicaAssignment:
    """One model replica living on one chip."""

    model: str
    chip: int
    cores: int
    region_start: int


@dataclass
class FleetPlacement:
    """The replica map of a fleet: who lives where, with what share."""

    array_size: int
    n_chips: int
    assignments: List[ReplicaAssignment] = field(default_factory=list)

    def chips_of(self, model: str) -> List[int]:
        """Chips hosting a replica of ``model``, ascending."""
        return sorted(
            a.chip for a in self.assignments if a.model == model
        )

    def on_chip(self, chip: int) -> List[ReplicaAssignment]:
        return [a for a in self.assignments if a.chip == chip]

    def used_cores(self, chip: int) -> int:
        return sum(a.cores for a in self.on_chip(chip))

    def free_cores(self, chip: int) -> int:
        return self.array_size - self.used_cores(chip)

    def replica_count(self, model: str) -> int:
        return len(self.chips_of(model))

    def add(self, model: str, chip: int, cores: int) -> ReplicaAssignment:
        """Place one more replica (validates the two hard rules)."""
        if not 0 <= chip < self.n_chips:
            raise SimulationError(f"chip {chip} outside fleet of {self.n_chips}")
        if chip in self.chips_of(model):
            raise SimulationError(
                f"chip {chip} already hosts a replica of {model!r}"
            )
        if cores > self.free_cores(chip):
            raise SimulationError(
                f"replica of {model!r} needs {cores} cores; chip {chip} "
                f"has {self.free_cores(chip)} free"
            )
        assignment = ReplicaAssignment(
            model=model,
            chip=chip,
            cores=cores,
            region_start=self.used_cores(chip),
        )
        self.assignments.append(assignment)
        return assignment

    def remove(self, model: str, chip: int) -> None:
        before = len(self.assignments)
        self.assignments = [
            a
            for a in self.assignments
            if not (a.model == model and a.chip == chip)
        ]
        if len(self.assignments) == before:
            raise SimulationError(
                f"no replica of {model!r} on chip {chip} to remove"
            )

    def evict_chip(self, chip: int) -> List[ReplicaAssignment]:
        """Drop every replica of a crashed chip; returns what was lost."""
        lost = self.on_chip(chip)
        self.assignments = [a for a in self.assignments if a.chip != chip]
        return lost

    def as_dict(self) -> Dict[str, object]:
        return {
            "array_size": self.array_size,
            "chips": self.n_chips,
            "replicas": [
                {
                    "model": a.model,
                    "chip": a.chip,
                    "cores": a.cores,
                    "region_start": a.region_start,
                }
                for a in sorted(
                    self.assignments, key=lambda a: (a.chip, a.region_start)
                )
            ],
        }


def place_replicas(
    profiles: Mapping[str, ModelProfile],
    replicas: Mapping[str, int],
    n_chips: int,
    array_size: int,
) -> FleetPlacement:
    """First-fit-decreasing bin-pack of the requested replica counts.

    Replica units sort by core share descending (big partitions first —
    the classic FFD heuristic), then by model name for determinism; each
    unit lands on the first chip with room that does not already host
    the model.  Raises when the fleet cannot hold the layout.
    """
    if n_chips < 1:
        raise SimulationError(f"fleet needs >= 1 chip, got {n_chips}")
    placement = FleetPlacement(array_size=array_size, n_chips=n_chips)
    units: List[Tuple[int, str]] = []
    for model in sorted(replicas):
        count = replicas[model]
        profile = profiles.get(model)
        if profile is None:
            raise SimulationError(f"no profile for model {model!r}")
        if count < 1:
            raise SimulationError(
                f"model {model!r} needs >= 1 replica, got {count}"
            )
        if count > n_chips:
            raise SimulationError(
                f"model {model!r} wants {count} replicas on {n_chips} chips "
                "(max one replica per chip)"
            )
        if profile.cores < profile.min_cores:
            raise SimulationError(
                f"model {model!r} share {profile.cores} is below its "
                f"capacity floor of {profile.min_cores} cores"
            )
        if profile.cores > array_size:
            raise SimulationError(
                f"model {model!r} share {profile.cores} exceeds the "
                f"{array_size}-core array"
            )
        units.extend((profile.cores, model) for _ in range(count))
    units.sort(key=lambda u: (-u[0], u[1]))
    for cores, model in units:
        hosts = set(placement.chips_of(model))
        target = next(
            (
                chip
                for chip in range(n_chips)
                if chip not in hosts and placement.free_cores(chip) >= cores
            ),
            None,
        )
        if target is None:
            raise SimulationError(
                f"cannot place replica of {model!r} ({cores} cores): no "
                f"chip has room (fleet of {n_chips} x {array_size} cores)"
            )
        placement.add(model, target, cores)
    return placement


def best_chip_for(
    placement: FleetPlacement,
    model: str,
    cores: int,
    *,
    exclude: Sequence[int] = (),
) -> Optional[int]:
    """The most-free chip that can host one more replica of ``model``.

    Ties break to the lowest chip id; ``None`` when no chip fits.  Used
    by the autoscaler (scale-up) and by crash re-placement.
    """
    hosts = set(placement.chips_of(model))
    banned = hosts | set(exclude)
    candidates = [
        chip
        for chip in range(placement.n_chips)
        if chip not in banned and placement.free_cores(chip) >= cores
    ]
    if not candidates:
        return None
    return max(candidates, key=lambda chip: (placement.free_cores(chip), -chip))


def preflight_placement(
    placement: FleetPlacement,
    networks: Mapping[str, NetworkSpec],
    service: "object",
) -> None:
    """Per-chip PLAN-rule co-residency admission of the placed layout.

    ``service`` is a :class:`~repro.serving.service.ServiceModel`; every
    plan lookup hits its memo (profiling already simulated each
    (network, cores) point).  Raises
    :class:`~repro.errors.PlanVerificationError` naming the first chip
    whose layout fails.
    """
    from repro.analysis.plan import ResidentPlan
    from repro.analysis.system import analyze_plan
    from repro.sim.config import SimConfig

    for chip in range(placement.n_chips):
        assignments = sorted(
            placement.on_chip(chip), key=lambda a: a.region_start
        )
        if not assignments:
            continue
        residents = [
            ResidentPlan(
                name=a.model,
                plan=service.partition_run(  # type: ignore[attr-defined]
                    networks[a.model], a.cores
                ).plan,
                region_start=a.region_start,
            )
            for a in assignments
        ]
        report = analyze_plan(
            co_resident=residents,
            config=SimConfig(array_size=placement.array_size),
            families=("plan",),
        )
        if not report.ok:
            raise PlanVerificationError(
                f"fleet placement rejected on chip {chip}:\n"
                + report.render(),
                report,
            )


__all__ = [
    "FleetPlacement",
    "ReplicaAssignment",
    "best_chip_for",
    "place_replicas",
    "preflight_placement",
]
