"""The per-chip serving policy of a fleet run: profile-driven replicas.

One chip hosts at most one replica per model; each replica is its own
spatial partition (server), sized by its
:class:`~repro.fleet.profiles.ModelProfile`.  The policy is pure plain
data — every service time, batch interpolation, and phase split was
pre-computed on the coordinator — so worker processes deserialize it
cheaply and the chip's event loop never touches the chip model.

Chip-level degradation (a slow chip, a partial-mesh fault) is a step
function of sim time threaded through
:meth:`~repro.serving.policies.ServingPolicy.service_scale`: every
service window dispatched at ``t`` is multiplied by the factor of the
last step at or before ``t``.  An empty schedule is bit-identical to the
healthy chip (the dispatch path skips the multiply at exactly 1.0).
"""

from __future__ import annotations

from typing import List, Mapping, Sequence, Tuple

from repro.errors import SimulationError
from repro.fleet.profiles import ModelProfile
from repro.obs.timeline import PhaseSpec
from repro.serving.policies import ServingPolicy
from repro.serving.tenancy import TenantSpec

#: ``(from_ms, factor)`` — service times multiply by ``factor`` from
#: ``from_ms`` until the next step.  Sorted ascending by ``from_ms``.
DegradationStep = Tuple[float, float]


class ReplicaPolicy(ServingPolicy):
    """Scripted-by-profile serving of one chip's model replicas."""

    name = "replica"

    def __init__(
        self,
        profiles: Mapping[str, ModelProfile],
        *,
        degradation: Sequence[DegradationStep] = (),
    ) -> None:
        super().__init__()
        self.profiles = dict(profiles)
        steps = sorted(degradation)
        for _, factor in steps:
            if factor <= 0:
                raise SimulationError(
                    f"degradation factor must be positive, got {factor}"
                )
        self._steps = tuple(steps)

    def prepare(self, tenants: Sequence[TenantSpec]) -> None:
        for tenant in tenants:
            profile = self.profiles.get(tenant.name)
            if profile is None:
                raise SimulationError(
                    f"no replica profile for tenant {tenant.name!r}"
                )
            self._servers[tenant.name] = tenant.name
            self._service_ms[tenant.name] = profile.service_ms
            self._shares[tenant.name] = profile.cores

    def batched_service_ms(self, tenant: str, count: int) -> float:
        return self.profiles[tenant].batched_service_ms(count)

    def service_scale(self, now_ms: float) -> float:
        scale = 1.0
        for from_ms, factor in self._steps:
            if from_ms <= now_ms:
                scale = factor
            else:
                break
        return scale

    def service_phases(self, tenant: str, count: int = 1) -> List[PhaseSpec]:
        # Staging-category phases are paid once per dispatch; everything
        # else scales with the batch (ratios only — the serving loop
        # normalizes onto the billed window).
        profile = self.profiles[tenant]
        return [
            PhaseSpec(
                name,
                category,
                weight if (category == "staging" or count == 1) else weight * count,
            )
            for name, category, weight in profile.phases
        ]
