"""Simulated multi-chip datacenter serving of MAICC arrays.

``repro.fleet`` scales the single-chip serving stack
(:mod:`repro.serving`) to a cluster: N simulated chips behind a
:class:`ClusterRouter` with replica placement
(:func:`place_replicas` — first-fit-decreasing bin-packing with
capacity floors and the PLAN-rule co-residency preflight), pluggable
cross-chip load balancing (:data:`BALANCERS` — round-robin,
least-loaded, power-of-two-choices, sticky-tenant), epoch-driven
replica autoscaling with SLO burn-rate coupling, and declared failure
scenarios (chip crashes with replica re-placement, slow-chip and
partial-mesh degradation) under full request conservation.

Quickstart::

    from repro.fleet import FleetSimulator, build_scenario

    scenario = build_scenario("fleet-smoke")
    result = FleetSimulator(
        scenario.models, scenario.n_chips,
        balancer=scenario.balancer, failures=scenario.failures,
    ).run(scenario.duration_ms)
    print(result.worst_model_p99_ms, result.conserved)

Execution is deterministic end to end: one seed fixes routing, traffic,
and every chip's simulation, and the process-parallel path (``workers=N``)
produces byte-identical JSON to the serial one.  See ``docs/FLEET.md``.
"""

from repro.fleet.autoscale import AutoscaleConfig, ReplicaAutoscaler, ScaleEvent
from repro.fleet.balancing import (
    BALANCERS,
    Balancer,
    FluidLoadTracker,
    LeastLoadedBalancer,
    PowerOfTwoBalancer,
    RoundRobinBalancer,
    StickyTenantBalancer,
    load_imbalance,
    make_balancer,
)
from repro.fleet.failures import (
    ChipCrash,
    ChipDegradation,
    FailureScenario,
    partial_mesh_fault,
)
from repro.fleet.placement import (
    FleetPlacement,
    ReplicaAssignment,
    best_chip_for,
    place_replicas,
    preflight_placement,
)
from repro.fleet.profiles import ModelProfile, fixed_profile, profile_model
from repro.fleet.replica import ReplicaPolicy
from repro.fleet.result import FleetResult, ModelRollup, merge_latency_histograms
from repro.fleet.router import (
    ClusterRouter,
    RecoveryEvent,
    RoutingResult,
    split_user_groups,
)
from repro.fleet.scenarios import (
    DEFAULT_CHIPS,
    FLEET_SCENARIOS,
    FleetScenario,
    build_scenario,
    expected_requests,
)
from repro.fleet.simulator import (
    DEFAULT_ARRAY_SIZE,
    ChipWorkload,
    FleetModelSpec,
    FleetSimulator,
    OpenLoopTraffic,
    UserGroupTraffic,
    run_chip,
)
from repro.fleet.traffic import (
    DiurnalShape,
    UserGroupArrivals,
    derive_seed,
    generate_open_arrivals,
)

__all__ = [
    "AutoscaleConfig",
    "BALANCERS",
    "Balancer",
    "ChipCrash",
    "ChipDegradation",
    "ChipWorkload",
    "ClusterRouter",
    "DEFAULT_ARRAY_SIZE",
    "DEFAULT_CHIPS",
    "DiurnalShape",
    "FLEET_SCENARIOS",
    "FailureScenario",
    "FleetModelSpec",
    "FleetPlacement",
    "FleetResult",
    "FleetScenario",
    "FleetSimulator",
    "FluidLoadTracker",
    "LeastLoadedBalancer",
    "ModelProfile",
    "ModelRollup",
    "OpenLoopTraffic",
    "PowerOfTwoBalancer",
    "RecoveryEvent",
    "ReplicaAssignment",
    "ReplicaAutoscaler",
    "ReplicaPolicy",
    "RoundRobinBalancer",
    "RoutingResult",
    "ScaleEvent",
    "StickyTenantBalancer",
    "UserGroupArrivals",
    "UserGroupTraffic",
    "best_chip_for",
    "build_scenario",
    "derive_seed",
    "expected_requests",
    "fixed_profile",
    "generate_open_arrivals",
    "load_imbalance",
    "make_balancer",
    "merge_latency_histograms",
    "partial_mesh_fault",
    "place_replicas",
    "preflight_placement",
    "profile_model",
    "run_chip",
    "split_user_groups",
]
