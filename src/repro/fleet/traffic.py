"""Fleet traffic: seeded million-user load shapes.

Two traffic kinds drive a fleet scenario:

* **open loop** — a model-wide Poisson request stream, optionally
  modulated by a diurnal shape (non-homogeneous Poisson via thinning:
  candidates are drawn at the peak rate and accepted with probability
  ``shape.factor(t)``, so the same seed yields the same stream for any
  shape).  The coordinator pre-generates the stream, routes every
  arrival, and hands each chip its slice as a
  :class:`~repro.serving.arrivals.TraceArrivals` trace.
* **closed loop** — :class:`UserGroupArrivals`: ``users`` concurrent
  request chains with exponential think times.  Each chain issues its
  next request only after the previous one completes, so offered load
  self-throttles; the diurnal shape divides think times (shorter thinks
  at peak).  Groups are sticky: the router splits users across a model's
  replica chips once, and each chip runs its group entirely locally.

All randomness flows from explicit integer seeds through per-process
:class:`random.Random` instances; :func:`derive_seed` gives independent,
reproducible streams per (seed, chip, model) without overlap in
practice.
"""

from __future__ import annotations

import math
import random
import zlib
from dataclasses import dataclass
from typing import List, Optional

from repro.errors import SimulationError
from repro.serving.arrivals import ArrivalProcess


def derive_seed(seed: int, *parts: object) -> int:
    """A stable sub-seed for one (chip, model, ...) stream."""
    text = "/".join([str(seed)] + [str(p) for p in parts])
    return zlib.crc32(text.encode()) & 0x7FFFFFFF


@dataclass(frozen=True)
class DiurnalShape:
    """A smooth day curve: rate factor in ``[floor, 1]`` over ``period_ms``.

    ``factor(t)`` peaks at half-period and bottoms out at ``floor`` at
    t=0 — one simulated "day" per period, compressed to whatever sim-time
    scale the scenario uses.
    """

    period_ms: float
    floor: float = 0.2

    def __post_init__(self) -> None:
        if self.period_ms <= 0:
            raise SimulationError(
                f"diurnal period must be positive, got {self.period_ms}"
            )
        if not 0.0 < self.floor <= 1.0:
            raise SimulationError(
                f"diurnal floor must be in (0, 1], got {self.floor}"
            )

    def factor(self, t_ms: float) -> float:
        phase = 2.0 * math.pi * (t_ms / self.period_ms)
        return self.floor + (1.0 - self.floor) * 0.5 * (1.0 - math.cos(phase))


def generate_open_arrivals(
    rate_hz: float,
    seed: int,
    duration_ms: float,
    *,
    shape: Optional[DiurnalShape] = None,
) -> List[float]:
    """The full arrival stream of one open-loop model, sorted ascending.

    ``rate_hz`` is the *peak* rate; with a shape the realized mean rate
    is ``rate_hz * mean(factor)``.  Thinning keeps the candidate stream
    identical across shapes for one seed.
    """
    if rate_hz <= 0:
        raise SimulationError(f"rate must be positive, got {rate_hz}")
    rng = random.Random(seed)
    times: List[float] = []
    t = 0.0
    while True:
        t += rng.expovariate(rate_hz) * 1000.0
        if t >= duration_ms:
            return times
        if shape is None or rng.random() < shape.factor(t):
            times.append(t)


class UserGroupArrivals(ArrivalProcess):
    """``users`` concurrent closed-loop chains with exponential thinks.

    Seeds one arrival per user (staggered uniformly over one mean think
    time so the group does not arrive as a thundering herd), then lets
    every completion trigger the next request of *a* chain after an
    exponential think — with interchangeable users, tracking which chain
    completed is statistically irrelevant and keeping one RNG makes the
    stream replayable.  The diurnal shape divides the think time at the
    completion instant, so users think faster at peak.  A chain dies
    naturally when its next arrival lands past the run window (the
    serving loop drops post-window arrivals).
    """

    closed_loop = True

    def __init__(
        self,
        users: int,
        think_ms: float,
        *,
        seed: int = 0,
        shape: Optional[DiurnalShape] = None,
    ) -> None:
        if users < 1:
            raise SimulationError(f"user group needs >= 1 user, got {users}")
        if think_ms <= 0:
            raise SimulationError(
                f"mean think time must be positive, got {think_ms}"
            )
        self.users = users
        self.think_ms = think_ms
        self.seed = seed
        self.shape = shape
        self._rng = random.Random(seed)

    def reset(self) -> None:
        self._rng = random.Random(self.seed)

    def first_ms(self) -> Optional[float]:
        # Single-chain view (unused by the serving loop, which seeds via
        # initial_arrivals); kept for interface completeness.
        return 0.0

    def initial_arrivals(self) -> List[float]:
        return [
            self._rng.random() * self.think_ms for _ in range(self.users)
        ]

    def after_completion_ms(self, completion_ms: float) -> Optional[float]:
        think = self._rng.expovariate(1.0 / self.think_ms)
        if self.shape is not None:
            think /= self.shape.factor(completion_ms)
        return completion_ms + think
