"""Cross-chip load balancing: where does the next request go?

The router keeps a *fluid* load estimate per chip — outstanding
estimated work (analytic-tier ``est_ms`` per routed request) draining at
the chip's aggregate service speed (one unit per live replica, divided
by the chip's degradation factor).  Balancers pick among a model's live
replica chips using only this estimate, never the chips' internal state:
routing happens in a separate pass *before* the chip simulations run, so
serial and process-parallel execution see the identical routing and stay
byte-identical.

Four policies (``BALANCERS``):

* ``round-robin`` — per-model rotation, load-blind.
* ``least-loaded`` — argmin of the fluid estimate (ties: lowest chip).
* ``p2c`` — power of two choices: sample two distinct candidates with a
  seeded RNG, route to the less loaded.  The classic result: expected
  max load overshoot drops from ``Θ(log N / log log N)`` (random) to
  ``Θ(log log N)``.
* ``sticky`` — locality-aware sticky-tenant: a stable hash of the
  session key pins each user to one replica chip (cache/weight locality
  at the cost of load awareness).
"""

from __future__ import annotations

import random
import zlib
from typing import Dict, List, Optional, Sequence

from repro.errors import SimulationError


class FluidLoadTracker:
    """Outstanding estimated work per chip, draining at service speed."""

    def __init__(self) -> None:
        self._backlog_ms: Dict[int, float] = {}
        self._updated_ms: Dict[int, float] = {}
        #: Aggregate drain rate per chip: ``live replicas / degradation``
        #: (a chip running two replicas at half speed drains one unit of
        #: service-ms per sim-ms).  The router maintains this as replicas
        #: move and faults land.
        self.speed: Dict[int, float] = {}

    def load_ms(self, chip: int, now_ms: float) -> float:
        """The decayed backlog estimate of ``chip`` at ``now_ms``."""
        backlog = self._backlog_ms.get(chip, 0.0)
        updated = self._updated_ms.get(chip, 0.0)
        if now_ms > updated:
            backlog = max(
                0.0, backlog - (now_ms - updated) * self.speed.get(chip, 1.0)
            )
        return backlog

    def add(self, chip: int, now_ms: float, est_ms: float) -> None:
        self._backlog_ms[chip] = self.load_ms(chip, now_ms) + est_ms
        self._updated_ms[chip] = max(
            now_ms, self._updated_ms.get(chip, 0.0)
        )

    def reset_chip(self, chip: int) -> None:
        self._backlog_ms.pop(chip, None)
        self._updated_ms.pop(chip, None)


class Balancer:
    """Picks one chip among a model's live replica chips."""

    name = "abstract"

    def __init__(self, tracker: FluidLoadTracker) -> None:
        self.tracker = tracker

    def choose(
        self,
        model: str,
        candidates: Sequence[int],
        now_ms: float,
        *,
        session: Optional[str] = None,
    ) -> int:
        raise NotImplementedError


class RoundRobinBalancer(Balancer):
    """Per-model rotation over the candidate list."""

    name = "round-robin"

    def __init__(self, tracker: FluidLoadTracker) -> None:
        super().__init__(tracker)
        self._next: Dict[str, int] = {}

    def choose(
        self,
        model: str,
        candidates: Sequence[int],
        now_ms: float,
        *,
        session: Optional[str] = None,
    ) -> int:
        k = self._next.get(model, 0)
        self._next[model] = k + 1
        return candidates[k % len(candidates)]


class LeastLoadedBalancer(Balancer):
    """Argmin of the fluid load estimate; ties break to the lowest chip."""

    name = "least-loaded"

    def choose(
        self,
        model: str,
        candidates: Sequence[int],
        now_ms: float,
        *,
        session: Optional[str] = None,
    ) -> int:
        return min(
            candidates,
            key=lambda chip: (self.tracker.load_ms(chip, now_ms), chip),
        )


class PowerOfTwoBalancer(Balancer):
    """Sample two distinct candidates (seeded), route to the less loaded."""

    name = "p2c"

    def __init__(self, tracker: FluidLoadTracker, *, seed: int = 0) -> None:
        super().__init__(tracker)
        self._rng = random.Random(seed)

    def choose(
        self,
        model: str,
        candidates: Sequence[int],
        now_ms: float,
        *,
        session: Optional[str] = None,
    ) -> int:
        n = len(candidates)
        if n == 1:
            return candidates[0]
        i = self._rng.randrange(n)
        j = self._rng.randrange(n - 1)
        if j >= i:
            j += 1
        a, b = candidates[i], candidates[j]
        if (self.tracker.load_ms(a, now_ms), a) <= (
            self.tracker.load_ms(b, now_ms),
            b,
        ):
            return a
        return b


class StickyTenantBalancer(Balancer):
    """Stable-hash session pinning (locality-aware sticky-tenant).

    The same session key always lands on the same *slot*; when the
    candidate set shrinks after a crash, sessions re-hash over the
    survivors (a minimal, deterministic stand-in for consistent
    hashing).
    """

    name = "sticky"

    def choose(
        self,
        model: str,
        candidates: Sequence[int],
        now_ms: float,
        *,
        session: Optional[str] = None,
    ) -> int:
        key = f"{model}/{session if session is not None else ''}"
        slot = zlib.crc32(key.encode()) % len(candidates)
        return candidates[slot]


BALANCERS = {
    "round-robin": RoundRobinBalancer,
    "least-loaded": LeastLoadedBalancer,
    "p2c": PowerOfTwoBalancer,
    "sticky": StickyTenantBalancer,
}


def make_balancer(
    name: str, tracker: FluidLoadTracker, *, seed: int = 0
) -> Balancer:
    try:
        cls = BALANCERS[name]
    except KeyError:
        raise SimulationError(
            f"unknown balancer {name!r}; choose from {sorted(BALANCERS)}"
        )
    if cls is PowerOfTwoBalancer:
        return PowerOfTwoBalancer(tracker, seed=seed)
    return cls(tracker)


def load_imbalance(loads: Sequence[float]) -> float:
    """Max/mean chip load — 1.0 is perfectly balanced."""
    if not loads:
        return 1.0
    mean = sum(loads) / len(loads)
    if mean <= 0:
        return 1.0
    return max(loads) / mean


__all__ = [
    "BALANCERS",
    "Balancer",
    "FluidLoadTracker",
    "LeastLoadedBalancer",
    "PowerOfTwoBalancer",
    "RoundRobinBalancer",
    "StickyTenantBalancer",
    "load_imbalance",
    "make_balancer",
]
