"""The cluster router: one deterministic pass that routes every arrival.

A fleet run is two phases.  Phase 1 (this module, on the coordinator)
walks all open-loop arrivals, crash events, and autoscale epochs in one
merged time order and decides *where* each request goes — using only the
router-side fluid load model (:mod:`repro.fleet.balancing`), never the
chips' internal state.  Phase 2 then runs every chip's serving
simulation independently over its pre-routed trace, which is what makes
serial and process-parallel execution byte-identical: chips share
nothing, and results merge in fixed chip order.

The router also owns the fleet's *control plane* along the way:

* **crash handling** — at a :class:`~repro.fleet.failures.ChipCrash` the
  chip leaves every candidate set instantly; its replicas re-place onto
  the most-free surviving chips and come ready after the model's weight
  re-staging time.  Arrivals that find no live, ready replica are
  counted as ``router_shed`` per model — accounted, never dropped.
* **replica autoscaling** — every epoch the
  :class:`~repro.fleet.autoscale.ReplicaAutoscaler` compares each
  model's offered load (window arrivals x analytic ``est_ms``) against
  its live replica capacity and adds/removes replicas; an SLO burn-rate
  alert (from a :class:`~repro.obs.monitor.SLOMonitor` fed with
  router-estimated latencies) waives the scale-up cooldown.

Closed-loop user groups never pass through the per-request balancer:
their sessions are split across the model's initial replica chips once
(sticky by construction) and live entirely inside one chip's simulation.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.errors import SimulationError
from repro.fleet.autoscale import AutoscaleConfig, ReplicaAutoscaler, ScaleEvent
from repro.fleet.balancing import Balancer, FluidLoadTracker
from repro.fleet.failures import FailureScenario
from repro.fleet.placement import FleetPlacement, best_chip_for
from repro.fleet.profiles import ModelProfile


@dataclass(frozen=True)
class RecoveryEvent:
    """One replica re-placed after a crash (or lost for good)."""

    time_ms: float
    model: str
    from_chip: int
    to_chip: Optional[int]    # None: no surviving chip had room
    ready_ms: Optional[float]

    def as_dict(self) -> Dict[str, object]:
        return {
            "time_ms": self.time_ms,
            "model": self.model,
            "from_chip": self.from_chip,
            "to_chip": self.to_chip,
            "ready_ms": self.ready_ms,
        }


@dataclass
class RoutingResult:
    """Everything phase 1 decided."""

    #: ``(chip, model) -> sorted arrival times`` — each chip's trace.
    traces: Dict[Tuple[int, str], List[float]] = field(default_factory=dict)
    #: Arrivals that found no live, ready replica, per model.
    router_shed: Dict[str, int] = field(default_factory=dict)
    #: Requests routed per chip (open loop only).
    routed: Dict[int, int] = field(default_factory=dict)
    recoveries: List[RecoveryEvent] = field(default_factory=list)
    scale_events: List[ScaleEvent] = field(default_factory=list)
    #: Router-side SLO alerts (estimated latencies, not billed ones).
    alert_count: int = 0


class ClusterRouter:
    """Routes a fleet's open-loop traffic over its replica placement."""

    def __init__(
        self,
        placement: FleetPlacement,
        profiles: Mapping[str, ModelProfile],
        balancer: Balancer,
        tracker: FluidLoadTracker,
        *,
        deadlines_ms: Optional[Mapping[str, float]] = None,
        failures: Optional[FailureScenario] = None,
        autoscaler: Optional[ReplicaAutoscaler] = None,
    ) -> None:
        self.placement = placement
        self.profiles = dict(profiles)
        self.balancer = balancer
        self.tracker = tracker
        self.deadlines_ms = dict(deadlines_ms or {})
        self.failures = failures or FailureScenario()
        self.autoscaler = autoscaler
        self._crashed: set = set()
        #: ``(model, chip) -> ready_ms`` for replicas still staging their
        #: weights (new placements and crash recoveries).
        self._ready_ms: Dict[Tuple[str, int], float] = {}
        self._update_speeds(0.0)

    # -- state ------------------------------------------------------------------

    def _update_speeds(self, now_ms: float) -> None:
        for chip in range(self.placement.n_chips):
            if chip in self._crashed:
                self.tracker.speed[chip] = 0.0
                continue
            replicas = len(self.placement.on_chip(chip))
            factor = self.failures.degradation_factor(chip, now_ms)
            self.tracker.speed[chip] = replicas / factor

    def live_candidates(self, model: str, now_ms: float) -> List[int]:
        """Chips with a live, weight-ready replica of ``model`` at ``now_ms``."""
        return [
            chip
            for chip in self.placement.chips_of(model)
            if chip not in self._crashed
            and self._ready_ms.get((model, chip), 0.0) <= now_ms
        ]

    def add_replica(
        self, model: str, chip: int, now_ms: float
    ) -> float:
        """Place one more replica; returns when its weights are staged."""
        profile = self.profiles[model]
        self.placement.add(model, chip, profile.cores)
        ready = now_ms + profile.restage_ms
        self._ready_ms[(model, chip)] = ready
        self._update_speeds(now_ms)
        return ready

    def remove_replica(self, model: str, chip: int, now_ms: float) -> None:
        self.placement.remove(model, chip)
        self._ready_ms.pop((model, chip), None)
        self._update_speeds(now_ms)

    def crash_chip(
        self, chip: int, now_ms: float, result: RoutingResult
    ) -> None:
        """Evict a crashed chip and re-place its replicas on survivors."""
        self._crashed.add(chip)
        lost = self.placement.evict_chip(chip)
        self.tracker.reset_chip(chip)
        self._update_speeds(now_ms)
        for assignment in sorted(lost, key=lambda a: a.model):
            self._ready_ms.pop((assignment.model, chip), None)
            target = best_chip_for(
                self.placement,
                assignment.model,
                self.profiles[assignment.model].cores,
                exclude=sorted(self._crashed),
            )
            if target is None:
                result.recoveries.append(
                    RecoveryEvent(
                        time_ms=now_ms,
                        model=assignment.model,
                        from_chip=chip,
                        to_chip=None,
                        ready_ms=None,
                    )
                )
                continue
            ready = self.add_replica(assignment.model, target, now_ms)
            result.recoveries.append(
                RecoveryEvent(
                    time_ms=now_ms,
                    model=assignment.model,
                    from_chip=chip,
                    to_chip=target,
                    ready_ms=ready,
                )
            )

    # -- the sweep --------------------------------------------------------------

    def route_all(
        self,
        streams: Mapping[str, Sequence[float]],
        duration_ms: float,
    ) -> RoutingResult:
        """Route every open-loop arrival in one merged time order.

        ``streams`` maps model name to its sorted arrival times.  Crash
        events and autoscale epochs interleave at their timestamps;
        simultaneous events resolve control-first (crash, then epoch,
        then arrivals in model-name order) — fixed, documented, and
        deterministic.
        """
        result = RoutingResult()
        result.routed = {c: 0 for c in range(self.placement.n_chips)}
        model_names = sorted(streams)
        merged: List[Tuple[float, int, int, float]] = []
        # Event ranks: 0 = crash, 1 = epoch tick, 2 = arrival.
        heap: List[Tuple[float, int, int, int]] = []
        for crash in self.failures.crashes:
            if crash.at_ms < duration_ms:
                heapq.heappush(heap, (crash.at_ms, 0, crash.chip, 0))
        if self.autoscaler is not None:
            epoch = self.autoscaler.config.epoch_ms
            k = 1
            while k * epoch < duration_ms:
                heapq.heappush(heap, (k * epoch, 1, k, 0))
                k += 1
        cursors = {m: 0 for m in model_names}
        for mi, model in enumerate(model_names):
            times = streams[model]
            if times:
                heapq.heappush(heap, (times[0], 2, mi, 0))
        del merged

        while heap:
            t, rank, a, _ = heapq.heappop(heap)
            if rank == 0:
                self.crash_chip(a, t, result)
                continue
            if rank == 1:
                self._update_speeds(t)
                assert self.autoscaler is not None
                events = self.autoscaler.on_epoch(t, self)
                result.scale_events.extend(events)
                continue
            model = model_names[a]
            self._route_one(model, t, result)
            if self.autoscaler is not None:
                self.autoscaler.observe_arrival(model, t)
            cursors[model] += 1
            times = streams[model]
            if cursors[model] < len(times):
                heapq.heappush(heap, (times[cursors[model]], 2, a, 0))
        if self.autoscaler is not None:
            result.alert_count = self.autoscaler.alert_count
        return result

    def _route_one(
        self, model: str, t: float, result: RoutingResult
    ) -> None:
        candidates = self.live_candidates(model, t)
        if not candidates:
            result.router_shed[model] = result.router_shed.get(model, 0) + 1
            return
        profile = self.profiles[model]
        chip = self.balancer.choose(model, candidates, t)
        result.traces.setdefault((chip, model), []).append(t)
        result.routed[chip] += 1
        # The fluid model bills the chip the analytic estimate, stretched
        # by its current degradation (slow chips accumulate more load,
        # which is exactly what steers load-aware balancers away).
        est = profile.est_ms * self.failures.degradation_factor(chip, t)
        self.tracker.add(chip, t, est)
        if self.autoscaler is not None:
            wait = self.tracker.load_ms(chip, t) / max(
                self.tracker.speed.get(chip, 1.0), 1e-9
            )
            est_latency = wait + est
            deadline = self.deadlines_ms.get(model)
            self.autoscaler.observe_estimate(
                model, t, est_latency,
                met_deadline=(deadline is None or est_latency <= deadline),
            )


def split_user_groups(
    placement: FleetPlacement,
    model: str,
    users: int,
) -> Dict[int, int]:
    """Deterministic sticky split of a user group over replica chips.

    Users divide as evenly as possible; remainders go to the
    lowest-numbered chips.  The split happens once, before the run —
    closed-loop sessions never migrate.
    """
    chips = placement.chips_of(model)
    if not chips:
        raise SimulationError(f"model {model!r} has no replicas to host users")
    base, extra = divmod(users, len(chips))
    return {
        chip: base + (1 if i < extra else 0)
        for i, chip in enumerate(chips)
        if base + (1 if i < extra else 0) > 0
    }


__all__ = [
    "ClusterRouter",
    "RecoveryEvent",
    "RoutingResult",
    "split_user_groups",
]
