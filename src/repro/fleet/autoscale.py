"""Replica autoscaling: analytic offered load vs capacity, plus SLO burn.

Every routing epoch the autoscaler compares, per model, the *offered*
service time of the window (arrivals x the profile's analytic-tier
``est_ms``) against the window's replica-seconds of capacity (live
replicas x epoch length; one replica drains one ms of service per ms of
sim time).  Utilization above ``high_utilization`` scales up — one more
replica on the most-free chip, ready after weight re-staging;
utilization below ``low_utilization`` for ``down_epochs`` consecutive
epochs scales down to keep the fleet dense.

The decision loop is also wired into the PR 8 SLO machinery: the router
feeds a :class:`~repro.obs.monitor.SLOMonitor` its *estimated* per-model
latencies (fluid queue wait + analytic service), and a ``burn_rate``
alert for a model waives the scale-up cooldown at the next epoch — a
burning model should not wait out the timer.  Estimated latencies steer
control only; billed SLOs always come from the chips' own simulations.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional

from repro.errors import SimulationError
from repro.fleet.placement import best_chip_for
from repro.obs.monitor import SLOConfig, SLOMonitor

if TYPE_CHECKING:
    from repro.fleet.router import ClusterRouter


@dataclass(frozen=True)
class AutoscaleConfig:
    """Thresholds of the epoch-driven replica controller."""

    epoch_ms: float = 10.0
    high_utilization: float = 0.8
    low_utilization: float = 0.3
    min_replicas: int = 1
    max_replicas: Optional[int] = None
    #: Consecutive low-utilization epochs before a scale-down.
    down_epochs: int = 3
    #: Epochs to wait between scale-ups of one model (waived by a
    #: burn-rate alert).
    cooldown_epochs: int = 2

    def __post_init__(self) -> None:
        if self.epoch_ms <= 0:
            raise SimulationError(
                f"epoch must be positive, got {self.epoch_ms}"
            )
        if not 0.0 < self.low_utilization < self.high_utilization:
            raise SimulationError(
                "need 0 < low_utilization < high_utilization, got "
                f"{self.low_utilization} / {self.high_utilization}"
            )
        if self.min_replicas < 1:
            raise SimulationError(
                f"min_replicas must be >= 1, got {self.min_replicas}"
            )


@dataclass(frozen=True)
class ScaleEvent:
    """One applied replica-count change."""

    time_ms: float
    model: str
    direction: str          # "up" | "down"
    chip: int
    replicas: int           # live replicas after the change
    utilization: float      # the window utilization that triggered it
    burn_alert: bool = False

    def as_dict(self) -> Dict[str, object]:
        return {
            "time_ms": self.time_ms,
            "model": self.model,
            "direction": self.direction,
            "chip": self.chip,
            "replicas": self.replicas,
            "utilization": self.utilization,
            "burn_alert": self.burn_alert,
        }


@dataclass
class _ModelState:
    window_arrivals: int = 0
    low_streak: int = 0
    last_up_epoch: int = -(10**9)


class ReplicaAutoscaler:
    """Epoch-driven replica controller over the router's placement."""

    def __init__(
        self,
        config: Optional[AutoscaleConfig] = None,
        *,
        monitor: Optional[SLOMonitor] = None,
    ) -> None:
        self.config = config or AutoscaleConfig()
        #: Router-estimate SLO monitor; ``None`` disables burn coupling.
        self.monitor = (
            monitor
            if monitor is not None
            else SLOMonitor(SLOConfig(window_ms=self.config.epoch_ms))
        )
        self.alert_count = 0
        self._states: Dict[str, _ModelState] = {}
        self._burning: set = set()
        self._epoch_index = 0

    def _state(self, model: str) -> _ModelState:
        state = self._states.get(model)
        if state is None:
            state = self._states[model] = _ModelState()
        return state

    # -- router feed ------------------------------------------------------------

    def observe_arrival(self, model: str, t: float) -> None:
        self._state(model).window_arrivals += 1

    def observe_estimate(
        self, model: str, t: float, est_latency_ms: float, *, met_deadline: bool
    ) -> None:
        self.monitor.record_completion(model, t, est_latency_ms, met_deadline)

    # -- the epoch tick ---------------------------------------------------------

    def on_epoch(self, t: float, router: "ClusterRouter") -> List[ScaleEvent]:
        self._epoch_index += 1
        cfg = self.config
        fresh = self.monitor.poll(t)
        self.alert_count += len(fresh)
        for alert in fresh:
            if alert.kind == "burn_rate":
                self._burning.add(alert.tenant)
        events: List[ScaleEvent] = []
        for model in sorted(router.profiles):
            state = self._state(model)
            arrivals = state.window_arrivals
            state.window_arrivals = 0
            live = [
                chip
                for chip in router.placement.chips_of(model)
                if chip not in router._crashed
            ]
            replicas = len(live)
            if replicas == 0:
                continue
            offered_ms = arrivals * router.profiles[model].est_ms
            capacity_ms = replicas * cfg.epoch_ms
            utilization = offered_ms / capacity_ms
            burning = model in self._burning
            if utilization > cfg.high_utilization or burning:
                state.low_streak = 0
                if (
                    cfg.max_replicas is not None
                    and replicas >= cfg.max_replicas
                ):
                    continue
                if (
                    not burning
                    and self._epoch_index - state.last_up_epoch
                    < cfg.cooldown_epochs
                ):
                    continue
                target = best_chip_for(
                    router.placement,
                    model,
                    router.profiles[model].cores,
                    exclude=sorted(router._crashed),
                )
                if target is None:
                    continue
                router.add_replica(model, target, t)
                state.last_up_epoch = self._epoch_index
                events.append(
                    ScaleEvent(
                        time_ms=t,
                        model=model,
                        direction="up",
                        chip=target,
                        replicas=replicas + 1,
                        utilization=utilization,
                        burn_alert=burning,
                    )
                )
            elif utilization < cfg.low_utilization:
                state.low_streak += 1
                if (
                    state.low_streak >= cfg.down_epochs
                    and replicas > cfg.min_replicas
                ):
                    # Shrink from the highest-numbered live replica chip
                    # (deterministic; the lowest chips keep the stable
                    # replicas, matching first-fit growth).
                    victim = max(live)
                    router.remove_replica(model, victim, t)
                    state.low_streak = 0
                    events.append(
                        ScaleEvent(
                            time_ms=t,
                            model=model,
                            direction="down",
                            chip=victim,
                            replicas=replicas - 1,
                            utilization=utilization,
                        )
                    )
            else:
                state.low_streak = 0
        self._burning.clear()
        return events


__all__ = ["AutoscaleConfig", "ReplicaAutoscaler", "ScaleEvent"]
