"""The fleet simulator: N chips, one router, two deterministic phases.

Phase 1 (coordinator): generate every open-loop arrival stream from the
run's seed, split closed-loop user groups across replica chips, and let
the :class:`~repro.fleet.router.ClusterRouter` route all traffic in one
merged time order — interleaving chip crashes and autoscale epochs as
they fall.  Phase 2: every chip runs an independent
:class:`~repro.serving.simulator.ServingSimulator` over its pre-routed
trace (a :class:`~repro.serving.chip.ChipHandle` under a
:class:`~repro.fleet.replica.ReplicaPolicy` built from plain-data
profiles).  Chips share nothing, so phase 2 runs serially or sharded
across worker processes (``fork``) with byte-identical results: the
merge folds chips in fixed index order either way.

Phase 2 runs on the repo's shared executor,
:func:`repro.utils.parallel.run_sharded` (extracted from the fork pool
this module originally hand-rolled): ``workers=N`` shards chips over a
process pool; ``workers=0`` (the default) is the serial path.  Both
produce the same :class:`~repro.fleet.result.FleetResult` bytes, which
the tests and the CI ``fleet-smoke`` job pin.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.errors import SimulationError
from repro.fleet.autoscale import AutoscaleConfig, ReplicaAutoscaler
from repro.fleet.balancing import FluidLoadTracker, make_balancer
from repro.fleet.failures import FailureScenario
from repro.fleet.placement import (
    FleetPlacement,
    place_replicas,
    preflight_placement,
)
from repro.fleet.profiles import ModelProfile
from repro.fleet.replica import ReplicaPolicy
from repro.fleet.result import FleetResult, ModelRollup, merge_latency_histograms
from repro.fleet.router import ClusterRouter, split_user_groups
from repro.fleet.traffic import (
    DiurnalShape,
    UserGroupArrivals,
    derive_seed,
    generate_open_arrivals,
)
from repro.nn.workloads import NetworkSpec
from repro.serving.arrivals import TraceArrivals
from repro.serving.simulator import ServingSimulator
from repro.serving.slo import ServingRunResult
from repro.serving.tenancy import TenantSpec
from repro.telemetry import MetricsRegistry, Telemetry
from repro.utils.parallel import run_sharded

#: The MAICC array size the paper's chip exposes (and the repo's
#: single-chip serving stack defaults to).
DEFAULT_ARRAY_SIZE = 210


@dataclass(frozen=True)
class OpenLoopTraffic:
    """A model-wide Poisson request stream (peak ``rate_hz``)."""

    rate_hz: float
    shape: Optional[DiurnalShape] = None


@dataclass(frozen=True)
class UserGroupTraffic:
    """``users`` closed-loop sessions with mean think ``think_ms``."""

    users: int
    think_ms: float
    shape: Optional[DiurnalShape] = None


@dataclass(frozen=True)
class FleetModelSpec:
    """One model served fleet-wide."""

    name: str
    profile: ModelProfile
    traffic: object            # OpenLoopTraffic | UserGroupTraffic
    deadline_ms: float = math.inf
    queue_capacity: Optional[int] = None
    replicas: int = 1
    #: The real network, when the profile came from the chip model —
    #: enables the per-chip PLAN-rule placement preflight.
    network: Optional[NetworkSpec] = None


@dataclass(frozen=True)
class _TenantWork:
    """One tenant of one chip's workload (plain data, picklable)."""

    model: str
    profile: ModelProfile
    deadline_ms: float
    queue_capacity: Optional[int]
    trace: Tuple[float, ...] = ()
    users: int = 0
    think_ms: float = 0.0
    seed: int = 0
    shape: Optional[DiurnalShape] = None


@dataclass(frozen=True)
class ChipWorkload:
    """Everything one chip needs to run its slice of the fleet."""

    chip: int
    duration_ms: float
    discipline: str
    batch_requests: int
    tenants: Tuple[_TenantWork, ...]
    halt_ms: Optional[float] = None
    degradation: Tuple[Tuple[float, float], ...] = ()
    collect_metrics: bool = False


def run_chip(
    workload: ChipWorkload,
) -> Tuple[Optional[ServingRunResult], Optional[MetricsRegistry]]:
    """Run one chip's serving simulation (top-level: fork/pickle safe)."""
    if not workload.tenants:
        return None, None
    profiles = {w.model: w.profile for w in workload.tenants}
    policy = ReplicaPolicy(profiles, degradation=workload.degradation)
    tenants: List[TenantSpec] = []
    for work in workload.tenants:
        if work.users > 0:
            arrivals: object = UserGroupArrivals(
                work.users, work.think_ms, seed=work.seed, shape=work.shape
            )
        else:
            arrivals = TraceArrivals(list(work.trace))
        tenants.append(
            TenantSpec(
                name=work.model,
                network=work.profile.stub_network(),
                arrivals=arrivals,  # type: ignore[arg-type]
                deadline_ms=work.deadline_ms,
                queue_capacity=work.queue_capacity,
            )
        )
    sink = Telemetry() if workload.collect_metrics else None
    simulator = ServingSimulator(
        policy,
        discipline=workload.discipline,
        batch_requests=workload.batch_requests,
        preflight=False,  # placement was preflighted on the coordinator
        telemetry=sink,
    )
    chip = simulator.open(
        tenants, workload.duration_ms, halt_ms=workload.halt_ms
    )
    chip.start()
    chip.queue.run()
    return chip.finish(), (sink.registry if sink is not None else None)


class FleetSimulator:
    """Simulates a datacenter of MAICC chips behind a cluster router."""

    def __init__(
        self,
        models: Sequence[FleetModelSpec],
        n_chips: int,
        *,
        array_size: int = DEFAULT_ARRAY_SIZE,
        balancer: str = "least-loaded",
        seed: int = 0,
        discipline: str = "fifo",
        batch_requests: int = 1,
        failures: Optional[FailureScenario] = None,
        autoscale: Optional[AutoscaleConfig] = None,
        collect_metrics: bool = False,
        workers: int = 0,
        scenario: str = "custom",
        service: Optional[object] = None,
    ) -> None:
        if not models:
            raise SimulationError("fleet needs at least one model")
        names = [m.name for m in models]
        if len(set(names)) != len(names):
            raise SimulationError(f"model names must be unique, got {names}")
        if workers < 0:
            raise SimulationError(f"workers must be >= 0, got {workers}")
        self.models = list(models)
        self.n_chips = n_chips
        self.array_size = array_size
        self.balancer_name = balancer
        self.seed = seed
        self.discipline = discipline
        self.batch_requests = batch_requests
        self.failures = failures or FailureScenario()
        self.failures.validate(n_chips)
        self.autoscale = autoscale
        self.collect_metrics = collect_metrics
        self.workers = workers
        self.scenario = scenario
        #: Optional :class:`~repro.serving.service.ServiceModel` — when
        #: every model carries its real network, placement runs the
        #: per-chip PLAN-rule co-residency preflight through it.
        self.service = service

    # -- phase 1: placement + routing -------------------------------------------

    def _place(self) -> FleetPlacement:
        profiles = {m.name: m.profile for m in self.models}
        replicas = {m.name: m.replicas for m in self.models}
        placement = place_replicas(
            profiles, replicas, self.n_chips, self.array_size
        )
        networks = {
            m.name: m.network for m in self.models if m.network is not None
        }
        if self.service is not None and len(networks) == len(self.models):
            preflight_placement(placement, networks, self.service)
        return placement

    def run(self, duration_ms: float) -> FleetResult:
        if duration_ms <= 0:
            raise SimulationError(
                f"duration must be positive, got {duration_ms}"
            )
        placement = self._place()
        tracker = FluidLoadTracker()
        balancer = make_balancer(
            self.balancer_name, tracker, seed=derive_seed(self.seed, "balancer")
        )
        autoscaler = (
            ReplicaAutoscaler(self.autoscale)
            if self.autoscale is not None
            else None
        )
        router = ClusterRouter(
            placement,
            {m.name: m.profile for m in self.models},
            balancer,
            tracker,
            deadlines_ms={m.name: m.deadline_ms for m in self.models},
            failures=self.failures,
            autoscaler=autoscaler,
        )

        # Sticky session split first: closed-loop groups bind to the
        # *initial* placement (sessions never migrate; a crash fails the
        # chip's sessions, visibly, into the failed counter).
        group_split: Dict[str, Dict[int, int]] = {}
        for model in self.models:
            if isinstance(model.traffic, UserGroupTraffic):
                group_split[model.name] = split_user_groups(
                    placement, model.name, model.traffic.users
                )

        streams: Dict[str, List[float]] = {}
        for model in self.models:
            if isinstance(model.traffic, OpenLoopTraffic):
                streams[model.name] = generate_open_arrivals(
                    model.traffic.rate_hz,
                    derive_seed(self.seed, "open", model.name),
                    duration_ms,
                    shape=model.traffic.shape,
                )
        routing = router.route_all(streams, duration_ms)

        # -- phase 2: independent chip simulations ------------------------------

        workloads = self._build_workloads(
            placement, routing.traces, group_split, duration_ms
        )
        outcomes = self._run_chips(workloads)

        # -- phase 3: deterministic merge ---------------------------------------

        chip_results: Dict[int, Optional[ServingRunResult]] = {}
        registries: List[MetricsRegistry] = []
        for workload, (result, registry) in zip(workloads, outcomes):
            chip_results[workload.chip] = result
            if registry is not None:
                registries.append(registry)

        rollups: Dict[str, ModelRollup] = {}
        for model in self.models:
            rollup = ModelRollup(model=model.name)
            rollup.router_shed = routing.router_shed.get(model.name, 0)
            rollup.replicas_final = placement.replica_count(model.name)
            reports = [
                result.reports[model.name]
                for result in chip_results.values()
                if result is not None and model.name in result.reports
            ]
            for report in reports:
                rollup.arrivals += report.arrivals
                rollup.completed += report.completed
                rollup.overrun += report.overrun
                rollup.shed += report.shed
                rollup.failed += report.failed
                rollup.deadline_misses += report.deadline_misses
            rollup.histogram = merge_latency_histograms(
                [report.histogram for report in reports]
            )
            if isinstance(model.traffic, OpenLoopTraffic):
                rollup.generated = len(streams[model.name])
            else:
                # Closed-loop arrivals are generated on-chip; the chips'
                # own counts are the ground truth.
                rollup.generated = rollup.arrivals + rollup.router_shed
            rollups[model.name] = rollup

        return FleetResult(
            scenario=self.scenario,
            balancer=self.balancer_name,
            n_chips=self.n_chips,
            duration_ms=duration_ms,
            seed=self.seed,
            placement=placement.as_dict(),
            chip_results=chip_results,
            models=rollups,
            routed=routing.routed,
            recoveries=routing.recoveries,
            scale_events=routing.scale_events,
            failures=self.failures.as_dict(),
            router_alert_count=routing.alert_count,
            metrics=(
                MetricsRegistry.merged(registries) if registries else None
            ),
        )

    # -- workload assembly ------------------------------------------------------

    def _build_workloads(
        self,
        placement: FleetPlacement,
        traces: Mapping[Tuple[int, str], List[float]],
        group_split: Mapping[str, Mapping[int, int]],
        duration_ms: float,
    ) -> List[ChipWorkload]:
        by_name = {m.name: m for m in self.models}
        workloads: List[ChipWorkload] = []
        for chip in range(self.n_chips):
            tenant_models = {
                a.model for a in placement.on_chip(chip)
            }
            tenant_models.update(
                model for (c, model) in traces if c == chip
            )
            tenant_models.update(
                name
                for name, split in group_split.items()
                if split.get(chip, 0) > 0
            )
            works: List[_TenantWork] = []
            for name in sorted(tenant_models):
                model = by_name[name]
                users = group_split.get(name, {}).get(chip, 0)
                if users > 0:
                    works.append(
                        _TenantWork(
                            model=name,
                            profile=model.profile,
                            deadline_ms=model.deadline_ms,
                            queue_capacity=model.queue_capacity,
                            users=users,
                            think_ms=model.traffic.think_ms,  # type: ignore[attr-defined]
                            seed=derive_seed(self.seed, "group", chip, name),
                            shape=model.traffic.shape,  # type: ignore[attr-defined]
                        )
                    )
                else:
                    works.append(
                        _TenantWork(
                            model=name,
                            profile=model.profile,
                            deadline_ms=model.deadline_ms,
                            queue_capacity=model.queue_capacity,
                            trace=tuple(traces.get((chip, name), ())),
                        )
                    )
            workloads.append(
                ChipWorkload(
                    chip=chip,
                    duration_ms=duration_ms,
                    discipline=self.discipline,
                    batch_requests=self.batch_requests,
                    tenants=tuple(works),
                    halt_ms=self.failures.halt_ms(chip),
                    degradation=self.failures.degradation_schedule(chip),
                    collect_metrics=self.collect_metrics,
                )
            )
        return workloads

    # -- phase 2 execution ------------------------------------------------------

    def _run_chips(
        self, workloads: Sequence[ChipWorkload]
    ) -> List[Tuple[Optional[ServingRunResult], Optional[MetricsRegistry]]]:
        # run_sharded preserves input order on both paths, so the merge
        # above folds chips in index order — serial == parallel bytes.
        return run_sharded(run_chip, workloads, workers=self.workers)


__all__ = [
    "ChipWorkload",
    "DEFAULT_ARRAY_SIZE",
    "FleetModelSpec",
    "FleetSimulator",
    "OpenLoopTraffic",
    "UserGroupTraffic",
    "run_chip",
]
