"""Failure scenarios: crashes, slow chips, and partial-mesh faults.

Three failure kinds, all declared up front so a failed run replays
byte-identically:

* :class:`ChipCrash` — the chip halts at ``at_ms``: queued and in-flight
  requests are accounted as ``failed`` (never silently dropped), its
  replicas are re-placed onto survivors (ready after the weight
  re-staging time), and the router stops sending traffic the instant of
  the crash.
* :class:`ChipDegradation` — from ``from_ms`` every service window on
  the chip is multiplied by ``factor`` (> 1 is slower).  Models a
  thermally throttled or mis-clocked chip; the router's fluid estimate
  slows the chip's drain rate by the same factor, so load-aware
  balancers steer around it.
* ``partial_mesh`` (a :class:`ChipDegradation` built by
  :func:`partial_mesh_fault`) — a router-region fault that disables a
  fraction of the chip's mesh links: the NoC detours around the dead
  region, stretching every service window by the detour factor.  Same
  mechanism, distinct provenance in the report.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.errors import SimulationError


@dataclass(frozen=True)
class ChipCrash:
    """One chip halting for good at ``at_ms``."""

    chip: int
    at_ms: float

    def __post_init__(self) -> None:
        if self.at_ms <= 0:
            raise SimulationError(
                f"crash time must be positive, got {self.at_ms}"
            )


@dataclass(frozen=True)
class ChipDegradation:
    """A chip serving slower (factor > 1) from ``from_ms`` onward."""

    chip: int
    from_ms: float
    factor: float
    cause: str = "slow-chip"

    def __post_init__(self) -> None:
        if self.factor <= 0:
            raise SimulationError(
                f"degradation factor must be positive, got {self.factor}"
            )
        if self.from_ms < 0:
            raise SimulationError(
                f"degradation start must be >= 0, got {self.from_ms}"
            )


def partial_mesh_fault(
    chip: int, from_ms: float, *, dead_fraction: float = 0.25
) -> ChipDegradation:
    """A partial-mesh fault as a service-time stretch.

    With a fraction ``f`` of mesh links down, X-Y detours lengthen the
    average on-chip route by roughly ``1 / (1 - f)`` — the fluid-level
    stand-in this layer uses for the cycle-level NoC model.
    """
    if not 0.0 < dead_fraction < 1.0:
        raise SimulationError(
            f"dead fraction must be in (0, 1), got {dead_fraction}"
        )
    return ChipDegradation(
        chip=chip,
        from_ms=from_ms,
        factor=1.0 / (1.0 - dead_fraction),
        cause="partial-mesh",
    )


@dataclass
class FailureScenario:
    """Everything that goes wrong in one fleet run."""

    crashes: List[ChipCrash] = field(default_factory=list)
    degradations: List[ChipDegradation] = field(default_factory=list)

    def validate(self, n_chips: int) -> None:
        seen = set()
        for crash in self.crashes:
            if not 0 <= crash.chip < n_chips:
                raise SimulationError(
                    f"crash names chip {crash.chip} outside fleet of {n_chips}"
                )
            if crash.chip in seen:
                raise SimulationError(
                    f"chip {crash.chip} crashes more than once"
                )
            seen.add(crash.chip)
        for deg in self.degradations:
            if not 0 <= deg.chip < n_chips:
                raise SimulationError(
                    f"degradation names chip {deg.chip} outside fleet of {n_chips}"
                )

    def halt_ms(self, chip: int) -> "float | None":
        for crash in self.crashes:
            if crash.chip == chip:
                return crash.at_ms
        return None

    def degradation_schedule(self, chip: int) -> Tuple[Tuple[float, float], ...]:
        """Sorted ``(from_ms, factor)`` steps for one chip."""
        return tuple(
            sorted(
                (d.from_ms, d.factor)
                for d in self.degradations
                if d.chip == chip
            )
        )

    def degradation_factor(self, chip: int, now_ms: float) -> float:
        factor = 1.0
        for from_ms, step in self.degradation_schedule(chip):
            if from_ms <= now_ms:
                factor = step
            else:
                break
        return factor

    def as_dict(self) -> Dict[str, object]:
        return {
            "crashes": [
                {"chip": c.chip, "at_ms": c.at_ms}
                for c in sorted(self.crashes, key=lambda c: (c.at_ms, c.chip))
            ],
            "degradations": [
                {
                    "chip": d.chip,
                    "from_ms": d.from_ms,
                    "factor": d.factor,
                    "cause": d.cause,
                }
                for d in sorted(
                    self.degradations, key=lambda d: (d.from_ms, d.chip)
                )
            ],
        }


__all__ = [
    "ChipCrash",
    "ChipDegradation",
    "FailureScenario",
    "partial_mesh_fault",
]
