"""2D-mesh network-on-chip model (booksim2 substitute).

X-Y dimension-ordered routing on a 16x16 mesh connecting the host tile,
the 15x14 compute cores, and the two LLC rows.  The model exposes both a
closed-form latency (hops x per-hop delay + serialization) used by the
streaming simulator and a contention-aware link-occupancy mode, plus
flit-hop accounting for the 5.4 pJ/flit/hop energy model.
"""

from repro.noc.packet import Packet, PacketKind, FLIT_BITS
from repro.noc.router import xy_route, hop_count
from repro.noc.mesh import MeshConfig, MeshNoC, NoCStats

__all__ = [
    "Packet",
    "PacketKind",
    "FLIT_BITS",
    "xy_route",
    "hop_count",
    "MeshConfig",
    "MeshNoC",
    "NoCStats",
]
