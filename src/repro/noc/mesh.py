"""The mesh NoC: latency, contention, and energy accounting.

Two usage modes:

* **Closed-form** (:meth:`MeshNoC.latency`): ``hops * router_delay +
  (flits - 1)`` serialization cycles — what the streaming simulator uses
  for steady-state estimates.
* **Link-occupancy** (:meth:`MeshNoC.send`): each directed link has a
  busy-until time; a packet acquires its X-Y path links in order, modeling
  head-of-line contention without per-flit simulation.  Deterministic and
  cheap, adequate for the traffic the execution framework generates
  (neighbour-to-neighbour streams by construction of the zig-zag mapping).

Energy: 5.4 pJ per flit per hop plus 2.20 W static for the whole 16x16
mesh (paper Sec. 5, measured with dsent).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.errors import NoCError
from repro.noc.packet import Packet
from repro.noc.router import hop_count, xy_route
from repro.telemetry import TelemetrySink, current as _current_telemetry

Coord = Tuple[int, int]
Link = Tuple[Coord, Coord]


@dataclass(frozen=True)
class MeshConfig:
    """Mesh geometry and constants (defaults: the paper's 16x16 chip)."""

    width: int = 16
    height: int = 16
    router_delay: int = 2  # cycles per hop (route + switch + link)
    flit_energy_pj: float = 5.4  # per flit per hop
    static_power_w: float = 2.20
    area_mm2: float = 2.61


@dataclass
class NoCStats:
    """Traffic counters for energy/thermal reporting."""

    packets: int = 0
    flit_hops: int = 0
    total_latency: int = 0

    def energy_pj(self, flit_energy_pj: float) -> float:
        return self.flit_hops * flit_energy_pj

    @property
    def avg_latency(self) -> float:
        """Mean packet latency in cycles; 0.0 before any traffic."""
        return self.total_latency / self.packets if self.packets else 0.0


@dataclass
class LinkStats:
    """Occupancy of one directed link, derived from its busy-until time."""

    packets: int = 0
    busy_cycles: int = 0  # cycles the link was held by packet heads/bodies
    max_wait: int = 0  # worst head-of-line blocking a packet saw here


class MeshNoC:
    """A 2D-mesh interconnect with X-Y routing."""

    def __init__(
        self,
        config: MeshConfig = MeshConfig(),
        telemetry: Optional[TelemetrySink] = None,
    ) -> None:
        self.config = config
        self.stats = NoCStats()
        # busy-until time per directed link ((x,y) -> (x',y')).
        self._link_free: Dict[Link, int] = {}
        # Per-link occupancy, populated by contention-aware sends.
        self.link_stats: Dict[Link, LinkStats] = {}
        self._telemetry = telemetry if telemetry is not None else _current_telemetry()

    def check_coord(self, coord: Coord) -> None:
        x, y = coord
        if not (0 <= x < self.config.width and 0 <= y < self.config.height):
            raise NoCError(
                f"{coord} outside the {self.config.width}x{self.config.height} mesh"
            )

    # -- closed-form -------------------------------------------------------------

    def latency(self, src: Coord, dst: Coord, flits: int) -> int:
        """Zero-load latency of a ``flits``-flit packet from src to dst."""
        self.check_coord(src)
        self.check_coord(dst)
        if flits < 1:
            raise NoCError(f"packet must have at least 1 flit, got {flits}")
        hops = hop_count(src, dst)
        return hops * self.config.router_delay + (flits - 1)

    def account(self, src: Coord, dst: Coord, flits: int) -> int:
        """Record traffic for energy accounting; returns zero-load latency."""
        lat = self.latency(src, dst, flits)
        self.stats.packets += 1
        self.stats.flit_hops += flits * hop_count(src, dst)
        self.stats.total_latency += lat
        return lat

    # -- contention-aware --------------------------------------------------------

    def send(self, packet: Packet, inject_time: int) -> int:
        """Send a packet at ``inject_time``; returns its arrival time.

        Wormhole-like: the head acquires each link of the X-Y path in order,
        waiting for the link to free; each link is then held for the packet's
        serialization time (``flits`` cycles).
        """
        path = xy_route(packet.src, packet.dst, self.config.width, self.config.height)
        flits = packet.flits
        telemetry = self._telemetry
        t = inject_time
        for a, b in zip(path, path[1:]):
            link = (a, b)
            free_at = self._link_free.get(link, 0)
            wait = max(0, free_at - t)
            start = max(t, free_at)
            t = start + self.config.router_delay
            self._link_free[link] = t + flits - 1
            occupancy = self.link_stats.get(link)
            if occupancy is None:
                occupancy = self.link_stats[link] = LinkStats()
            occupancy.packets += 1
            occupancy.busy_cycles += self.config.router_delay + flits - 1
            if wait > occupancy.max_wait:
                occupancy.max_wait = wait
            if telemetry.enabled:
                assert telemetry.trace is not None
                telemetry.trace.complete(
                    f"noc/{a[0]},{a[1]}->{b[0]},{b[1]}",
                    packet.kind.value,
                    start,
                    self.config.router_delay + flits - 1,
                    args={"flits": flits, "wait": wait},
                )
        arrival = t + flits - 1
        self.stats.packets += 1
        self.stats.flit_hops += flits * (len(path) - 1)
        self.stats.total_latency += arrival - inject_time
        return arrival

    def send_stream(self, packet: Packet, inject_time: int, count: int) -> int:
        """Send ``count`` copies of ``packet`` back to back; returns the
        last arrival.

        Identical in every observable (arrival times, link state, link
        and mesh stats) to ``for _ in range(count): t = send(packet, t)``,
        but O(path) instead of O(count * path): because each copy injects
        only when the previous one has fully arrived, copy ``i`` reaches
        every link of the path at or after the time copy ``i-1`` freed it
        (head times are non-decreasing along the path), so copies after
        the first never wait and advance at exactly the zero-load latency.
        Only the first copy can contend — with *prior* traffic — and it
        goes through the full per-link scan.

        Telemetry-enabled sends fall back to the per-packet loop so the
        trace keeps one span per packet per link.
        """
        if count < 1:
            raise NoCError(f"stream needs at least 1 packet, got {count}")
        if count == 1 or self._telemetry.enabled:
            t = inject_time
            for _ in range(count):
                t = self.send(packet, t)
            return t
        arrival = self.send(packet, inject_time)
        path = xy_route(
            packet.src, packet.dst, self.config.width, self.config.height
        )
        hops = len(path) - 1
        flits = packet.flits
        rd = self.config.router_delay
        serialization = flits - 1
        zero_load = hops * rd + serialization
        n = count - 1  # follow-on copies, all at zero-load latency
        last_inject = arrival + (n - 1) * zero_load
        for j, (a, b) in enumerate(zip(path, path[1:])):
            link = (a, b)
            self._link_free[link] = last_inject + (j + 1) * rd + serialization
            occupancy = self.link_stats[link]  # created by the first send
            occupancy.packets += n
            occupancy.busy_cycles += n * (rd + serialization)
            # Follow-on copies never wait, so max_wait is unchanged.
        self.stats.packets += n
        self.stats.flit_hops += n * flits * hops
        self.stats.total_latency += n * zero_load
        return arrival + n * zero_load

    # -- occupancy reporting -----------------------------------------------------

    @property
    def max_queue_depth(self) -> int:
        """Worst head-of-line wait (cycles) any packet saw on any link."""
        if not self.link_stats:
            return 0
        return max(s.max_wait for s in self.link_stats.values())

    def busiest_link(self) -> Optional[Tuple[Link, LinkStats]]:
        """The link that carried the most packets (ties break by coordinate)."""
        if not self.link_stats:
            return None
        link = min(self.link_stats, key=lambda k: (-self.link_stats[k].packets, k))
        return link, self.link_stats[link]

    def reset_contention(self) -> None:
        self._link_free.clear()
        self.link_stats.clear()
