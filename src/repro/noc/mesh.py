"""The mesh NoC: latency, contention, and energy accounting.

Two usage modes:

* **Closed-form** (:meth:`MeshNoC.latency`): ``hops * router_delay +
  (flits - 1)`` serialization cycles — what the streaming simulator uses
  for steady-state estimates.
* **Link-occupancy** (:meth:`MeshNoC.send`): each directed link has a
  busy-until time; a packet acquires its X-Y path links in order, modeling
  head-of-line contention without per-flit simulation.  Deterministic and
  cheap, adequate for the traffic the execution framework generates
  (neighbour-to-neighbour streams by construction of the zig-zag mapping).

Energy: 5.4 pJ per flit per hop plus 2.20 W static for the whole 16x16
mesh (paper Sec. 5, measured with dsent).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from repro.errors import NoCError
from repro.noc.packet import Packet
from repro.noc.router import hop_count, xy_route

Coord = Tuple[int, int]


@dataclass(frozen=True)
class MeshConfig:
    """Mesh geometry and constants (defaults: the paper's 16x16 chip)."""

    width: int = 16
    height: int = 16
    router_delay: int = 2  # cycles per hop (route + switch + link)
    flit_energy_pj: float = 5.4  # per flit per hop
    static_power_w: float = 2.20
    area_mm2: float = 2.61


@dataclass
class NoCStats:
    """Traffic counters for energy/thermal reporting."""

    packets: int = 0
    flit_hops: int = 0
    total_latency: int = 0

    def energy_pj(self, flit_energy_pj: float) -> float:
        return self.flit_hops * flit_energy_pj


class MeshNoC:
    """A 2D-mesh interconnect with X-Y routing."""

    def __init__(self, config: MeshConfig = MeshConfig()) -> None:
        self.config = config
        self.stats = NoCStats()
        # busy-until time per directed link ((x,y) -> (x',y')).
        self._link_free: Dict[Tuple[Coord, Coord], int] = {}

    def check_coord(self, coord: Coord) -> None:
        x, y = coord
        if not (0 <= x < self.config.width and 0 <= y < self.config.height):
            raise NoCError(
                f"{coord} outside the {self.config.width}x{self.config.height} mesh"
            )

    # -- closed-form -------------------------------------------------------------

    def latency(self, src: Coord, dst: Coord, flits: int) -> int:
        """Zero-load latency of a ``flits``-flit packet from src to dst."""
        self.check_coord(src)
        self.check_coord(dst)
        if flits < 1:
            raise NoCError(f"packet must have at least 1 flit, got {flits}")
        hops = hop_count(src, dst)
        return hops * self.config.router_delay + (flits - 1)

    def account(self, src: Coord, dst: Coord, flits: int) -> int:
        """Record traffic for energy accounting; returns zero-load latency."""
        lat = self.latency(src, dst, flits)
        self.stats.packets += 1
        self.stats.flit_hops += flits * hop_count(src, dst)
        self.stats.total_latency += lat
        return lat

    # -- contention-aware --------------------------------------------------------

    def send(self, packet: Packet, inject_time: int) -> int:
        """Send a packet at ``inject_time``; returns its arrival time.

        Wormhole-like: the head acquires each link of the X-Y path in order,
        waiting for the link to free; each link is then held for the packet's
        serialization time (``flits`` cycles).
        """
        path = xy_route(packet.src, packet.dst, self.config.width, self.config.height)
        flits = packet.flits
        t = inject_time
        for a, b in zip(path, path[1:]):
            link = (a, b)
            free_at = self._link_free.get(link, 0)
            t = max(t, free_at) + self.config.router_delay
            self._link_free[link] = t + flits - 1
        arrival = t + flits - 1
        self.stats.packets += 1
        self.stats.flit_hops += flits * (len(path) - 1)
        self.stats.total_latency += arrival - inject_time
        return arrival

    def reset_contention(self) -> None:
        self._link_free.clear()
