"""NoC packets and flit sizing.

Remote load/store primitives inject a single packet carrying 32-bit data
(Sec. 3.1); row-level operations (LoadRow.RC / StoreRow.RC) carry one
256-bit CMem row.  With 64-bit flits and a head flit of routing metadata,
a scalar remote access is 2 flits and a row transfer is 5 flits.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum, unique

FLIT_BITS = 64


@unique
class PacketKind(Enum):
    REMOTE_LOAD_REQ = "remote_load_req"
    REMOTE_LOAD_REPLY = "remote_load_reply"
    REMOTE_STORE = "remote_store"
    ROW_TRANSFER = "row_transfer"
    DRAM_READ = "dram_read"
    DRAM_WRITE = "dram_write"


_PAYLOAD_BITS = {
    PacketKind.REMOTE_LOAD_REQ: 0,
    PacketKind.REMOTE_LOAD_REPLY: 32,
    PacketKind.REMOTE_STORE: 32,
    PacketKind.ROW_TRANSFER: 256,
    PacketKind.DRAM_READ: 256,
    PacketKind.DRAM_WRITE: 256,
}


@dataclass(frozen=True)
class Packet:
    """One NoC packet between two mesh tiles."""

    src: tuple
    dst: tuple
    kind: PacketKind
    payload_bits: int = -1  # -1 = default for the kind

    @property
    def flits(self) -> int:
        """Head flit + enough body flits for the payload."""
        bits = self.payload_bits if self.payload_bits >= 0 else _PAYLOAD_BITS[self.kind]
        body = (bits + FLIT_BITS - 1) // FLIT_BITS
        return 1 + body
