"""X-Y dimension-ordered routing on a 2D mesh."""

from __future__ import annotations

from typing import List, Tuple

from repro.errors import NoCError

Coord = Tuple[int, int]


def _check(coord: Coord, width: int, height: int) -> None:
    x, y = coord
    if not (0 <= x < width and 0 <= y < height):
        raise NoCError(f"coordinate {coord} outside {width}x{height} mesh")


def xy_route(src: Coord, dst: Coord, width: int, height: int) -> List[Coord]:
    """The deterministic X-then-Y path from ``src`` to ``dst`` (inclusive)."""
    _check(src, width, height)
    _check(dst, width, height)
    path = [src]
    x, y = src
    step = 1 if dst[0] > x else -1
    while x != dst[0]:
        x += step
        path.append((x, y))
    step = 1 if dst[1] > y else -1
    while y != dst[1]:
        y += step
        path.append((x, y))
    return path


def hop_count(src: Coord, dst: Coord) -> int:
    """Manhattan distance — the number of links an X-Y packet crosses."""
    return abs(src[0] - dst[0]) + abs(src[1] - dst[1])
