"""Bit-level helpers used by the SRAM and CMem models.

The computing memory stores vectors *transposed*: bit position ``i`` of every
element of a vector lives in one physical SRAM row, and one element occupies
one bit-line (column).  These helpers convert between ordinary integer arrays
and the transposed bit matrices the array model operates on.

All bit matrices are ``numpy`` arrays of dtype ``uint8`` whose entries are 0
or 1, shaped ``(n_bits, n_elements)`` — row ``i`` holds bit ``i`` (LSB first)
of every element.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Union

import numpy as np

from repro.errors import SRAMError

IntArray = np.ndarray


def popcount(bits: np.ndarray) -> int:
    """Number of set bits in a 0/1 bit vector (the adder-tree operation)."""
    return int(np.sum(bits, dtype=np.int64))


def to_twos_complement(values: IntArray, n_bits: int) -> IntArray:
    """Encode signed integers as unsigned ``n_bits``-bit two's complement.

    Raises :class:`SRAMError` if any value is outside the representable
    signed range ``[-2^(n-1), 2^(n-1) - 1]``.
    """
    values = np.asarray(values, dtype=np.int64)
    lo, hi = -(1 << (n_bits - 1)), (1 << (n_bits - 1)) - 1
    if values.size and (values.min() < lo or values.max() > hi):
        raise SRAMError(
            f"value out of signed {n_bits}-bit range [{lo}, {hi}]: "
            f"min={values.min()}, max={values.max()}"
        )
    return np.where(values < 0, values + (1 << n_bits), values).astype(np.uint64)


def from_twos_complement(values: IntArray, n_bits: int) -> IntArray:
    """Decode unsigned ``n_bits``-bit two's complement back to signed ints."""
    values = np.asarray(values, dtype=np.int64)
    sign_bit = 1 << (n_bits - 1)
    return np.where(values & sign_bit, values - (1 << n_bits), values)


def sign_extend(value: int, n_bits: int) -> int:
    """Sign-extend an ``n_bits``-bit pattern held in a Python int."""
    value &= (1 << n_bits) - 1
    if value & (1 << (n_bits - 1)):
        value -= 1 << n_bits
    return value


def int_to_bits(values: IntArray, n_bits: int, *, signed: bool = False) -> np.ndarray:
    """Convert integers to a transposed bit matrix ``(n_bits, len(values))``.

    Row ``i`` of the result is bit ``i`` (least significant first) of every
    element.  Signed inputs are stored in two's complement.
    """
    values = np.asarray(values, dtype=np.int64)
    if signed:
        encoded = to_twos_complement(values, n_bits)
    else:
        if values.size and (values.min() < 0 or values.max() >= (1 << n_bits)):
            raise SRAMError(
                f"value out of unsigned {n_bits}-bit range: "
                f"min={values.min()}, max={values.max()}"
            )
        encoded = values.astype(np.uint64)
    shifts = np.arange(n_bits, dtype=np.uint64)[:, None]
    return ((encoded[None, :] >> shifts) & 1).astype(np.uint8)


def bits_to_int(bits: np.ndarray, *, signed: bool = False) -> IntArray:
    """Convert a transposed bit matrix back to an integer array."""
    bits = np.asarray(bits, dtype=np.int64)
    n_bits = bits.shape[0]
    weights = (1 << np.arange(n_bits, dtype=np.int64))[:, None]
    raw = np.sum(bits * weights, axis=0)
    if signed:
        return from_twos_complement(raw, n_bits)
    return raw


def pack_transposed(
    values: IntArray, n_bits: int, width: int, *, signed: bool = False
) -> np.ndarray:
    """Pack a vector into a transposed bit matrix padded to ``width`` columns.

    This mirrors how a vector shorter than the 256 bit-lines of a CMem slice
    occupies the leftmost columns, with unused bit-lines holding zeros.
    """
    values = np.asarray(values, dtype=np.int64)
    if values.ndim != 1:
        raise SRAMError(f"expected a 1-D vector, got shape {values.shape}")
    if len(values) > width:
        raise SRAMError(f"vector of {len(values)} elements exceeds width {width}")
    bits = np.zeros((n_bits, width), dtype=np.uint8)
    bits[:, : len(values)] = int_to_bits(values, n_bits, signed=signed)
    return bits


def unpack_transposed(
    bits: np.ndarray, n_elements: Union[int, None] = None, *, signed: bool = False
) -> IntArray:
    """Unpack the leftmost ``n_elements`` columns of a transposed bit matrix."""
    if n_elements is not None:
        bits = bits[:, :n_elements]
    return bits_to_int(bits, signed=signed)


def bytes_to_bitplanes(byte_values: IntArray) -> np.ndarray:
    """Explode a byte vector into an ``(8, len)`` transposed bit matrix.

    Row ``i`` holds bit ``i`` (LSB first) of every byte — the layout a
    vertical byte-store stream produces in CMem slice 0.  One
    ``np.unpackbits`` call replaces the eight-Python-calls-per-byte loop.
    """
    byte_values = np.asarray(byte_values)
    if byte_values.ndim != 1:
        raise SRAMError(f"expected a 1-D byte vector, got shape {byte_values.shape}")
    if byte_values.size and (byte_values.min() < 0 or byte_values.max() > 0xFF):
        raise SRAMError("byte values must be in [0, 255]")
    return np.unpackbits(
        byte_values.astype(np.uint8).reshape(-1, 1), axis=1, bitorder="little"
    ).T


def bitplanes_to_bytes(planes: np.ndarray) -> np.ndarray:
    """Collapse an ``(8, len)`` transposed bit matrix back to a byte vector."""
    planes = np.asarray(planes, dtype=np.uint8)
    if planes.shape[0] != 8:
        raise SRAMError(f"expected 8 bit planes, got shape {planes.shape}")
    return np.packbits(planes.T, axis=1, bitorder="little").reshape(-1)


@lru_cache(maxsize=4096)
def _pack_transposed_cached(
    key: bytes, n_values: int, n_bits: int, width: int, signed: bool
) -> np.ndarray:
    values = np.frombuffer(key, dtype=np.int64, count=n_values)
    bits = pack_transposed(values, n_bits, width, signed=signed)
    bits.setflags(write=False)  # shared across callers; must stay immutable
    return bits


def pack_transposed_cached(
    values: IntArray, n_bits: int, width: int, *, signed: bool = False
) -> np.ndarray:
    """Memoized :func:`pack_transposed` for stationary data.

    Filter weights are encoded into transposed bit matrices every time a
    node layout is staged, but the weights themselves never change during a
    run — so the encodings are cached keyed on ``(values, n_bits, width,
    signed)``.  The returned matrix is read-only; copy before mutating.
    """
    values = np.ascontiguousarray(values, dtype=np.int64)
    if values.ndim != 1:
        raise SRAMError(f"expected a 1-D vector, got shape {values.shape}")
    return _pack_transposed_cached(
        values.tobytes(), values.shape[0], n_bits, width, bool(signed)
    )


def pack_cache_info():
    """Hit/miss statistics of the transposed-weight cache (for tests)."""
    return _pack_transposed_cached.cache_info()


def pack_cache_clear() -> None:
    """Drop all memoized weight encodings (test isolation helper)."""
    _pack_transposed_cached.cache_clear()
