"""A minimal discrete-event simulation kernel.

Used by the NoC and the many-core streaming simulator.  Events carry a
timestamp, a monotonically increasing sequence number (for deterministic
FIFO ordering among simultaneous events), and an arbitrary callback.
Tagged events are surfaced to the telemetry recorder as instant events on
the ``events`` track (one counter per tag), so a queue-driven simulation
gets a timeline for free.

Hot-path notes: the heap stores plain ``(time, seq, event)`` tuples, so
ordering is resolved by tuple comparison on two floats/ints instead of a
generated dataclass ``__lt__`` (which dominated profiles of event-tier
runs), and the telemetry sink's ``enabled`` flag is read once per
dispatch (or once per batch in :meth:`EventQueue.step_batch`) so runs
against the default ``NullSink`` pay no per-event tag or formatting cost.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, List, Optional, Tuple

from repro.errors import SimulationError
from repro.telemetry import TelemetrySink, current as _current_telemetry


@dataclass
class Event:
    """A scheduled callback.  Queue ordering is (time, seq).

    ``actor``/``reads``/``writes`` are optional happens-before
    annotations consumed by :mod:`repro.analysis.determinism`: the actor
    that owns the callback and the resources it touches.  Unannotated
    events (the defaults) are invisible to the race detector; annotated
    same-timestamp events from *different* actors writing one resource
    are exactly what makes a :meth:`EventQueue.step_batch` drain
    order-sensitive.
    """

    time: float
    seq: int
    action: Callable[[], Any] = field(compare=False)
    tag: str = field(default="", compare=False)
    actor: str = field(default="", compare=False)
    reads: Tuple[str, ...] = field(default=(), compare=False)
    writes: Tuple[str, ...] = field(default=(), compare=False)

    def __lt__(self, other: "Event") -> bool:
        # Events rarely meet a comparison (the heap orders tuples), but
        # keep the historical (time, seq) ordering for external sorts.
        return (self.time, self.seq) < (other.time, other.seq)


class EventQueue:
    """Deterministic discrete-event queue.

    >>> q = EventQueue()
    >>> hits = []
    >>> _ = q.schedule(5, lambda: hits.append("b"))
    >>> _ = q.schedule(1, lambda: hits.append("a"))
    >>> q.run()
    >>> hits
    ['a', 'b']
    """

    def __init__(self, telemetry: Optional[TelemetrySink] = None) -> None:
        self._heap: list[Tuple[float, int, Event]] = []
        self._counter = itertools.count()
        self._now = 0.0
        self._processed = 0
        self._telemetry = telemetry if telemetry is not None else _current_telemetry()

    @property
    def now(self) -> float:
        """Current simulation time (time of the last dispatched event)."""
        return self._now

    @property
    def processed(self) -> int:
        """Total number of events dispatched so far."""
        return self._processed

    def __len__(self) -> int:
        return len(self._heap)

    def pending(self) -> List[Event]:
        """Undispatched events in (time, seq) dispatch order.

        A snapshot for static inspection (the determinism checker audits
        pending same-timestamp batches before a run); the heap itself is
        untouched.
        """
        return [entry[2] for entry in sorted(self._heap)]

    def schedule(
        self,
        time: float,
        action: Callable[[], Any],
        tag: str = "",
        *,
        actor: str = "",
        reads: Tuple[str, ...] = (),
        writes: Tuple[str, ...] = (),
    ) -> Event:
        """Schedule ``action`` at absolute ``time``; returns the Event.

        ``actor``/``reads``/``writes`` annotate the event for the
        determinism checker (see :class:`Event`); they cost nothing on
        the dispatch hot path.
        """
        if time < self._now:
            raise SimulationError(
                f"cannot schedule event at t={time} before current time {self._now}"
            )
        event = Event(
            time=time,
            seq=next(self._counter),
            action=action,
            tag=tag,
            actor=actor,
            reads=reads,
            writes=writes,
        )
        heapq.heappush(self._heap, (event.time, event.seq, event))
        return event

    def schedule_in(
        self,
        delay: float,
        action: Callable[[], Any],
        tag: str = "",
        *,
        actor: str = "",
        reads: Tuple[str, ...] = (),
        writes: Tuple[str, ...] = (),
    ) -> Event:
        """Schedule ``action`` ``delay`` time units from now."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay}")
        return self.schedule(
            self._now + delay, action, tag,
            actor=actor, reads=reads, writes=writes,
        )

    def _emit(self, event: Event) -> None:
        t = self._telemetry
        assert t.trace is not None and t.registry is not None
        t.trace.instant("events", event.tag, event.time, args={"seq": event.seq})
        t.registry.counter(f"events/by_tag/{event.tag}").inc()

    def step(self) -> Optional[Event]:
        """Dispatch the next event; returns it, or None when empty."""
        if not self._heap:
            return None
        _, _, event = heapq.heappop(self._heap)
        self._now = event.time
        self._processed += 1
        if self._telemetry.enabled and event.tag:
            self._emit(event)
        event.action()
        return event

    def step_batch(self) -> List[Event]:
        """Dispatch every pending event sharing the earliest timestamp.

        The batch is the set of undispatched events whose time equals the
        heap minimum *at entry*; they are dispatched in sequence-number
        order — exactly the order :meth:`step` would have used — so batch
        draining is observationally identical to per-event stepping for
        handlers that only depend on dispatch order.  Events the batch's
        handlers schedule at the same timestamp form the *next* batch
        (still at the same ``now``), preserving the global (time, seq)
        dispatch order.  Returns the dispatched events, ``[]`` when empty.
        """
        heap = self._heap
        if not heap:
            return []
        when = heap[0][0]
        batch: List[Event] = []
        while heap and heap[0][0] == when:
            batch.append(heapq.heappop(heap)[2])
        self._now = when
        self._processed += len(batch)
        if self._telemetry.enabled:  # one flag read per batch, not per event
            for event in batch:
                if event.tag:
                    self._emit(event)
        for event in batch:
            event.action()
        return batch

    def run(
        self,
        until: Optional[float] = None,
        max_events: Optional[int] = None,
        *,
        batched: bool = False,
    ) -> float:
        """Run until the queue drains, ``until`` passes, or ``max_events`` hit.

        Returns the simulation time after the run.  When an ``until``
        horizon is given and no undispatched event precedes it, time
        advances to ``until`` even if the queue drained early (or was
        empty); when ``max_events`` stops the run first, ``now`` stays at
        the last dispatched event because pending events before ``until``
        have not happened yet.

        ``batched=True`` drains same-timestamp batches through
        :meth:`step_batch` — identical dispatch order, fewer Python-level
        steps.  Batches are atomic: ``until`` and ``max_events`` are
        checked between batches, so ``max_events`` may overshoot by at
        most one batch's worth of same-timestamp events.
        """
        dispatched = 0
        while self._heap:
            if until is not None and self._heap[0][0] > until:
                break
            if max_events is not None and dispatched >= max_events:
                return self._now
            if batched:
                dispatched += len(self.step_batch())
            else:
                self.step()
                dispatched += 1
        if until is not None and until > self._now:
            self._now = until
        return self._now
