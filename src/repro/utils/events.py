"""A minimal discrete-event simulation kernel.

Used by the NoC and the many-core streaming simulator.  Events carry a
timestamp, a monotonically increasing sequence number (for deterministic
FIFO ordering among simultaneous events), and an arbitrary callback.
Tagged events are surfaced to the telemetry recorder as instant events on
the ``events`` track (one counter per tag), so a queue-driven simulation
gets a timeline for free.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Optional

from repro.errors import SimulationError
from repro.telemetry import TelemetrySink, current as _current_telemetry


@dataclass(order=True)
class Event:
    """A scheduled callback.  Ordering is (time, seq)."""

    time: float
    seq: int
    action: Callable[[], Any] = field(compare=False)
    tag: str = field(default="", compare=False)


class EventQueue:
    """Deterministic discrete-event queue.

    >>> q = EventQueue()
    >>> hits = []
    >>> _ = q.schedule(5, lambda: hits.append("b"))
    >>> _ = q.schedule(1, lambda: hits.append("a"))
    >>> q.run()
    >>> hits
    ['a', 'b']
    """

    def __init__(self, telemetry: Optional[TelemetrySink] = None) -> None:
        self._heap: list[Event] = []
        self._counter = itertools.count()
        self._now = 0.0
        self._processed = 0
        self._telemetry = telemetry if telemetry is not None else _current_telemetry()

    @property
    def now(self) -> float:
        """Current simulation time (time of the last dispatched event)."""
        return self._now

    @property
    def processed(self) -> int:
        """Total number of events dispatched so far."""
        return self._processed

    def __len__(self) -> int:
        return len(self._heap)

    def schedule(self, time: float, action: Callable[[], Any], tag: str = "") -> Event:
        """Schedule ``action`` at absolute ``time``; returns the Event."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule event at t={time} before current time {self._now}"
            )
        event = Event(time=time, seq=next(self._counter), action=action, tag=tag)
        heapq.heappush(self._heap, event)
        return event

    def schedule_in(self, delay: float, action: Callable[[], Any], tag: str = "") -> Event:
        """Schedule ``action`` ``delay`` time units from now."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay}")
        return self.schedule(self._now + delay, action, tag)

    def step(self) -> Optional[Event]:
        """Dispatch the next event; returns it, or None when empty."""
        if not self._heap:
            return None
        event = heapq.heappop(self._heap)
        self._now = event.time
        self._processed += 1
        t = self._telemetry
        if t.enabled and event.tag:
            assert t.trace is not None and t.registry is not None
            t.trace.instant("events", event.tag, event.time, args={"seq": event.seq})
            t.registry.counter(f"events/by_tag/{event.tag}").inc()
        event.action()
        return event

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> float:
        """Run until the queue drains, ``until`` passes, or ``max_events`` hit.

        Returns the simulation time after the run.  When an ``until``
        horizon is given and no undispatched event precedes it, time
        advances to ``until`` even if the queue drained early (or was
        empty); when ``max_events`` stops the run first, ``now`` stays at
        the last dispatched event because pending events before ``until``
        have not happened yet.
        """
        dispatched = 0
        while self._heap:
            if until is not None and self._heap[0].time > until:
                break
            if max_events is not None and dispatched >= max_events:
                return self._now
            self.step()
            dispatched += 1
        if until is not None and until > self._now:
            self._now = until
        return self._now
