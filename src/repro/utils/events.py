"""A minimal discrete-event simulation kernel.

Used by the NoC and the many-core streaming simulator.  Events carry a
timestamp, a monotonically increasing sequence number (for deterministic
FIFO ordering among simultaneous events), and an arbitrary callback.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Optional

from repro.errors import SimulationError


@dataclass(order=True)
class Event:
    """A scheduled callback.  Ordering is (time, seq)."""

    time: float
    seq: int
    action: Callable[[], Any] = field(compare=False)
    tag: str = field(default="", compare=False)


class EventQueue:
    """Deterministic discrete-event queue.

    >>> q = EventQueue()
    >>> hits = []
    >>> _ = q.schedule(5, lambda: hits.append("b"))
    >>> _ = q.schedule(1, lambda: hits.append("a"))
    >>> q.run()
    >>> hits
    ['a', 'b']
    """

    def __init__(self) -> None:
        self._heap: list[Event] = []
        self._counter = itertools.count()
        self._now = 0.0
        self._processed = 0

    @property
    def now(self) -> float:
        """Current simulation time (time of the last dispatched event)."""
        return self._now

    @property
    def processed(self) -> int:
        """Total number of events dispatched so far."""
        return self._processed

    def __len__(self) -> int:
        return len(self._heap)

    def schedule(self, time: float, action: Callable[[], Any], tag: str = "") -> Event:
        """Schedule ``action`` at absolute ``time``; returns the Event."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule event at t={time} before current time {self._now}"
            )
        event = Event(time=time, seq=next(self._counter), action=action, tag=tag)
        heapq.heappush(self._heap, event)
        return event

    def schedule_in(self, delay: float, action: Callable[[], Any], tag: str = "") -> Event:
        """Schedule ``action`` ``delay`` time units from now."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay}")
        return self.schedule(self._now + delay, action, tag)

    def step(self) -> Optional[Event]:
        """Dispatch the next event; returns it, or None when empty."""
        if not self._heap:
            return None
        event = heapq.heappop(self._heap)
        self._now = event.time
        self._processed += 1
        event.action()
        return event

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> float:
        """Run until the queue drains, ``until`` passes, or ``max_events`` hit.

        Returns the simulation time after the run.
        """
        dispatched = 0
        while self._heap:
            if until is not None and self._heap[0].time > until:
                self._now = until
                break
            if max_events is not None and dispatched >= max_events:
                break
            self.step()
            dispatched += 1
        return self._now
