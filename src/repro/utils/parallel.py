"""The shared process-parallel executor every sweep-shaped run sits on.

``run_sharded(fn, items, workers=N)`` is the one parallel primitive in
the repo.  It was extracted from ``repro.fleet.simulator`` (PR 9's
hand-rolled fork pool) so the fleet, the design-space exploration
engine (``repro.dse``), and the experiment drivers all shard work the
same way — and inherit the same determinism guarantee:

* ``workers=0`` (the default) runs ``[fn(x) for x in items]`` in the
  calling process — no pool, no pickling, trivially deterministic.
* ``workers=N`` forks ``min(N, len(items))`` worker processes and maps
  ``fn`` over ``items`` with :meth:`multiprocessing.pool.Pool.map`,
  which **preserves input order** regardless of completion order.

Because every ``fn`` in this repo is a pure function of its item (all
randomness is seeded per item, nothing reads the wall clock), the two
paths return element-wise identical results, and any deterministic
fold over them — :meth:`repro.telemetry.MetricsRegistry.merged`,
:meth:`repro.riscv.pipeline.PipelineStats.merge_all`, or a plain list
— produces byte-identical artifacts.  The fleet tests and the CI
``fleet-smoke`` / ``dse-smoke`` jobs pin exactly that.

Requirements on ``fn`` and ``items`` when ``workers > 0``: ``fn`` must
be importable at module top level (a bound method of a picklable object
or a :func:`functools.partial` of a top-level function also works) and
items/results must pickle.  The ``fork`` start method keeps imports and
read-only state shared with the parent for free; on platforms without
``fork`` (Windows) the executor silently degrades to the serial path
rather than changing results.
"""

from __future__ import annotations

import multiprocessing
from typing import Callable, List, Sequence, TypeVar

from repro.errors import ConfigurationError

T = TypeVar("T")
R = TypeVar("R")

#: The start method the executor uses.  ``fork`` is mandatory for the
#: determinism story: workers inherit the parent's already-imported
#: modules and constants instead of re-running import-time code.
START_METHOD = "fork"


def fork_available() -> bool:
    """True when the platform supports the ``fork`` start method."""
    return START_METHOD in multiprocessing.get_all_start_methods()


def run_sharded(
    fn: Callable[[T], R],
    items: Sequence[T],
    *,
    workers: int = 0,
) -> List[R]:
    """Map ``fn`` over ``items``, optionally sharded across processes.

    Returns results in input order on both paths.  ``workers=0`` (or a
    single item, or a fork-less platform) runs serially in-process;
    ``workers=N`` forks ``min(N, len(items))`` processes.  The caller's
    merge therefore folds results in the same order either way — the
    serial==parallel byte-identity guarantee documented in docs/DSE.md.
    """
    if workers < 0:
        raise ConfigurationError(f"workers must be >= 0, got {workers}")
    items = list(items)
    if workers and len(items) > 1 and fork_available():
        ctx = multiprocessing.get_context(START_METHOD)
        with ctx.Pool(processes=min(workers, len(items))) as pool:
            # Pool.map preserves input order, so downstream merges fold
            # shards in index order — identical to the serial path.
            return pool.map(fn, items)
    return [fn(item) for item in items]


__all__ = ["START_METHOD", "fork_available", "run_sharded"]
