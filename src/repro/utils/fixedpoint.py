"""Fixed-point helpers shared by the quantizer and the simulators."""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.errors import QuantizationError


def clamp(values: np.ndarray, lo: int, hi: int) -> np.ndarray:
    """Clamp an integer array into ``[lo, hi]``."""
    return np.clip(values, lo, hi)


def saturate(values: np.ndarray, n_bits: int, *, signed: bool = True) -> np.ndarray:
    """Saturate values to the representable ``n_bits`` fixed-point range."""
    if signed:
        lo, hi = -(1 << (n_bits - 1)), (1 << (n_bits - 1)) - 1
    else:
        lo, hi = 0, (1 << n_bits) - 1
    return clamp(np.asarray(values), lo, hi)


def choose_scale(values: np.ndarray, n_bits: int, *, signed: bool = True) -> float:
    """Pick a symmetric linear-quantization scale covering ``values``.

    The scale maps the largest magnitude onto the extreme representable
    level, i.e. ``real = scale * q``.
    """
    values = np.asarray(values, dtype=np.float64)
    max_abs = float(np.max(np.abs(values))) if values.size else 0.0
    if max_abs == 0.0:
        return 1.0
    levels = (1 << (n_bits - 1)) - 1 if signed else (1 << n_bits) - 1
    scale = max_abs / levels
    # Subnormal max_abs can underflow the division to exactly 0.0, which
    # quantize_linear rejects; the unscaled magnitude is still a valid
    # (conservative) scale there.
    return scale if scale > 0.0 else max_abs


def quantize_linear(
    values: np.ndarray, scale: float, n_bits: int, *, signed: bool = True
) -> np.ndarray:
    """Linear (affine, zero-point 0) quantization: ``q = round(x / scale)``."""
    if scale <= 0:
        raise QuantizationError(f"scale must be positive, got {scale}")
    q = np.rint(np.asarray(values, dtype=np.float64) / scale).astype(np.int64)
    return saturate(q, n_bits, signed=signed)


def dequantize_linear(q: np.ndarray, scale: float) -> np.ndarray:
    """Inverse of :func:`quantize_linear`: ``x = scale * q``."""
    if scale <= 0:
        raise QuantizationError(f"scale must be positive, got {scale}")
    return np.asarray(q, dtype=np.float64) * scale


def requantize(
    acc: np.ndarray,
    in_scale: float,
    out_scale: float,
    n_bits: int,
    *,
    signed: bool = True,
) -> np.ndarray:
    """Rescale a wide accumulator back to ``n_bits`` at a new scale.

    This is the integer-only requantization step between fused layers
    (Jacob et al., CVPR 2018): the int32 accumulator carries scale
    ``in_scale`` and is rounded into the ``out_scale`` grid.
    """
    if in_scale <= 0 or out_scale <= 0:
        raise QuantizationError("scales must be positive")
    ratio = in_scale / out_scale
    q = np.rint(np.asarray(acc, dtype=np.float64) * ratio).astype(np.int64)
    return saturate(q, n_bits, signed=signed)


def fixed_range(n_bits: int, *, signed: bool = True) -> Tuple[int, int]:
    """Return the ``(lo, hi)`` representable range for ``n_bits``."""
    if n_bits < 1:
        raise QuantizationError(f"n_bits must be >= 1, got {n_bits}")
    if signed:
        return -(1 << (n_bits - 1)), (1 << (n_bits - 1)) - 1
    return 0, (1 << n_bits) - 1
