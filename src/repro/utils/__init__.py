"""Shared low-level utilities: bit manipulation, fixed point, events."""

from repro.utils.bitops import (
    bits_to_int,
    int_to_bits,
    pack_transposed,
    popcount,
    sign_extend,
    to_twos_complement,
    from_twos_complement,
    unpack_transposed,
)
from repro.utils.fixedpoint import (
    clamp,
    quantize_linear,
    dequantize_linear,
    saturate,
)
from repro.utils.events import Event, EventQueue

__all__ = [
    "bits_to_int",
    "int_to_bits",
    "pack_transposed",
    "popcount",
    "sign_extend",
    "to_twos_complement",
    "from_twos_complement",
    "unpack_transposed",
    "clamp",
    "quantize_linear",
    "dequantize_linear",
    "saturate",
    "Event",
    "EventQueue",
]
