"""A bank-state DRAM timing and energy model with sparse functional storage.

The 2 GB many-core DRAM is uniformly divided into 32 channels, each wired
to one LLC tile (Table 1).  Timing follows the classic three-phase model:
row activate (tRCD), column access (tCAS), and precharge (tRP) on a row
miss; an open-row hit pays only tCAS.  Numbers are in core cycles at 1 GHz
and default to DDR4-2400-like values.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import DRAMError
from repro.riscv.memory import DRAM_BASE, DRAM_CHANNELS, DRAM_END
from repro.telemetry import TelemetrySink, current as _current_telemetry
from repro.telemetry.hooks import publish_dram_stats


@dataclass(frozen=True)
class DRAMConfig:
    channels: int = DRAM_CHANNELS
    banks_per_channel: int = 8
    row_bytes: int = 2048
    trcd: int = 15  # activate -> column command
    tcas: int = 15  # column command -> data
    trp: int = 15   # precharge
    tburst: int = 4  # data burst (64 B line)
    line_bytes: int = 64
    # Energy per operation (pJ), DDR4-class: dominated by I/O + array access.
    activate_pj: float = 909.0
    read_pj: float = 467.0
    write_pj: float = 467.0
    background_mw_per_channel: float = 60.0


@dataclass
class DRAMStats:
    reads: int = 0
    writes: int = 0
    row_hits: int = 0
    row_misses: int = 0
    energy_pj: float = 0.0

    @property
    def accesses(self) -> int:
        return self.reads + self.writes

    @property
    def row_hit_rate(self) -> float:
        total = self.row_hits + self.row_misses
        return self.row_hits / total if total else 0.0


class DRAMController:
    """All 32 channels of the many-core DRAM behind one interface."""

    def __init__(
        self,
        config: DRAMConfig = DRAMConfig(),
        telemetry: Optional[TelemetrySink] = None,
    ) -> None:
        self.config = config
        self.stats = DRAMStats()
        self._telemetry = telemetry if telemetry is not None else _current_telemetry()
        # (channel, bank) -> open row id, or -1 when precharged.
        self._open_row: Dict[Tuple[int, int], int] = {}
        # (channel, bank) -> busy-until time.
        self._bank_free: Dict[Tuple[int, int], int] = {}
        # Sparse functional storage: line-aligned blocks.
        self._blocks: Dict[int, bytearray] = {}
        self._channel_span = (DRAM_END - DRAM_BASE) // config.channels

    # -- address mapping -----------------------------------------------------

    def locate(self, addr: int) -> Tuple[int, int, int]:
        """Map an address to (channel, bank, row)."""
        if not DRAM_BASE <= addr < DRAM_END:
            raise DRAMError(f"{addr:#010x} outside DRAM")
        offset = addr - DRAM_BASE
        channel = offset // self._channel_span
        within = offset % self._channel_span
        row_id = within // self.config.row_bytes
        bank = row_id % self.config.banks_per_channel
        row = row_id // self.config.banks_per_channel
        return channel, bank, row

    # -- timing ----------------------------------------------------------------

    def access_latency(self, addr: int, is_write: bool, time: int) -> int:
        """Latency (cycles) of one line access starting at ``time``.

        Updates bank state; subsequent accesses observe the open row.
        """
        cfg = self.config
        channel, bank, row = self.locate(addr)
        key = (channel, bank)
        start = max(time, self._bank_free.get(key, 0))
        open_row = self._open_row.get(key, -1)
        if open_row == row:
            self.stats.row_hits += 1
            latency = cfg.tcas + cfg.tburst
        else:
            self.stats.row_misses += 1
            precharge = cfg.trp if open_row != -1 else 0
            latency = precharge + cfg.trcd + cfg.tcas + cfg.tburst
            self._open_row[key] = row
            self.stats.energy_pj += cfg.activate_pj
        self._bank_free[key] = start + latency
        if is_write:
            self.stats.writes += 1
            self.stats.energy_pj += cfg.write_pj
        else:
            self.stats.reads += 1
            self.stats.energy_pj += cfg.read_pj
        if self._telemetry.enabled:
            # One span per access on the bank's track; ``start`` is gated
            # on the bank's busy-until time, so each track stays monotone.
            assert self._telemetry.trace is not None
            self._telemetry.trace.complete(
                f"dram/ch{channel}/bank{bank}",
                "write" if is_write else "read",
                start,
                latency,
                args={"row": row, "hit": open_row == row},
            )
        return (start - time) + latency

    def access_latency_batch(
        self, addrs: Sequence[int], is_write: bool, time: int = 0
    ) -> List[int]:
        """Latencies of many line accesses all issued at ``time``, in order.

        Observably identical (per-access latencies, bank state, stats,
        energy) to calling :meth:`access_latency` per address, but the
        address mapping is vectorized and consecutive accesses to the
        same (channel, bank, row) — the common case for streamed weight
        loads and LLC flushes — collapse into one run: the first access
        resolves the row, the rest are open-row hits chained on the
        bank's busy-until time, so their latencies form an arithmetic
        progression computed without touching the bank dicts per access.
        Energy constants are integer-valued picojoules, so the reordered
        float accumulation is exact.

        Telemetry-enabled runs fall back to the per-access path so the
        trace keeps one span per access.
        """
        if self._telemetry.enabled:
            return [self.access_latency(a, is_write, time) for a in addrs]
        cfg = self.config
        flat = np.asarray(addrs, dtype=np.int64)
        if flat.size == 0:
            return []
        if bool(np.any((flat < DRAM_BASE) | (flat >= DRAM_END))):
            bad = int(flat[(flat < DRAM_BASE) | (flat >= DRAM_END)][0])
            raise DRAMError(f"{bad:#010x} outside DRAM")
        offset = flat - DRAM_BASE
        channel = offset // self._channel_span
        row_id = (offset % self._channel_span) // cfg.row_bytes
        bank = row_id % cfg.banks_per_channel
        row = row_id // cfg.banks_per_channel
        # Run-length boundaries of consecutive identical (channel, bank, row).
        same = (
            (np.diff(channel) == 0) & (np.diff(bank) == 0) & (np.diff(row) == 0)
        )
        cuts = np.flatnonzero(~same) + 1
        starts = np.concatenate(([0], cuts))
        ends = np.concatenate((cuts, [flat.size]))
        hit_latency = cfg.tcas + cfg.tburst
        out = np.empty(flat.size, dtype=np.int64)
        for s, e in zip(starts, ends):
            key = (int(channel[s]), int(bank[s]))
            this_row = int(row[s])
            begin = max(time, self._bank_free.get(key, 0))
            open_row = self._open_row.get(key, -1)
            if open_row == this_row:
                self.stats.row_hits += 1
                latency = hit_latency
            else:
                self.stats.row_misses += 1
                precharge = cfg.trp if open_row != -1 else 0
                latency = precharge + cfg.trcd + cfg.tcas + cfg.tburst
                self._open_row[key] = this_row
                self.stats.energy_pj += cfg.activate_pj
            first_done = begin + latency
            n = int(e - s)
            out[s] = (begin - time) + latency
            if n > 1:
                # The rest of the run: open-row hits back to back on the
                # now-busy bank — an arithmetic progression.
                self.stats.row_hits += n - 1
                out[s + 1 : e] = (first_done - time) + hit_latency * np.arange(
                    1, n, dtype=np.int64
                )
            self._bank_free[key] = first_done + (n - 1) * hit_latency
        if is_write:
            self.stats.writes += flat.size
            self.stats.energy_pj += cfg.write_pj * flat.size
        else:
            self.stats.reads += flat.size
            self.stats.energy_pj += cfg.read_pj * flat.size
        return out.tolist()

    def publish_stats(self, prefix: str = "dram") -> None:
        """Publish access/row/energy counters into the metrics registry."""
        publish_dram_stats(self._telemetry, prefix, self.stats)

    # -- functional storage ---------------------------------------------------

    def _block(self, addr: int) -> Tuple[bytearray, int]:
        base = addr & ~(self.config.line_bytes - 1)
        block = self._blocks.get(base)
        if block is None:
            block = bytearray(self.config.line_bytes)
            self._blocks[base] = block
        return block, addr - base

    def read_bytes(self, addr: int, size: int) -> bytes:
        out = bytearray(size)
        for i in range(size):
            block, off = self._block(addr + i)
            out[i] = block[off]
        return bytes(out)

    def write_bytes(self, addr: int, data: bytes) -> None:
        for i, byte in enumerate(data):
            block, off = self._block(addr + i)
            block[off] = byte

    def read_word(self, addr: int) -> int:
        return int.from_bytes(self.read_bytes(addr, 4), "little")

    def write_word(self, addr: int, value: int) -> None:
        self.write_bytes(addr, (value & 0xFFFFFFFF).to_bytes(4, "little"))
