"""Last-level cache tiles bridging the mesh to the striped DRAM.

Two rows of 16 LLC tiles sit at the top and bottom of the array
(Fig. 3(a)), one per DRAM channel.  The model is a set-associative,
write-back, write-allocate cache with LRU replacement; capacity per tile
is a documented assumption (the paper reports only the aggregate "LL
Cache" area share), defaulting to 64 KB.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.dram.controller import DRAMController
from repro.errors import ConfigurationError


@dataclass(frozen=True)
class LLCConfig:
    capacity_bytes: int = 64 * 1024
    line_bytes: int = 64
    ways: int = 8
    hit_latency: int = 4
    # Energy per access (pJ), SRAM macro of this size at 28 nm.
    access_pj: float = 20.0

    def __post_init__(self) -> None:
        lines = self.capacity_bytes // self.line_bytes
        if lines % self.ways:
            raise ConfigurationError("LLC lines must divide evenly into ways")

    @property
    def num_sets(self) -> int:
        return self.capacity_bytes // self.line_bytes // self.ways


@dataclass
class LLCStats:
    hits: int = 0
    misses: int = 0
    writebacks: int = 0
    energy_pj: float = 0.0

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.accesses if self.accesses else 0.0


class LLCache:
    """One LLC tile in front of its DRAM channel."""

    def __init__(
        self,
        config: LLCConfig = LLCConfig(),
        dram: Optional[DRAMController] = None,
        channel: int = 0,
    ) -> None:
        self.config = config
        self.dram = dram
        self.channel = channel
        self.stats = LLCStats()
        # set index -> OrderedDict(tag -> dirty flag), LRU order (old first).
        self._sets: Dict[int, OrderedDict] = {}

    def _locate(self, addr: int) -> Tuple[int, int]:
        line = addr // self.config.line_bytes
        return line % self.config.num_sets, line // self.config.num_sets

    def access(self, addr: int, is_write: bool, time: int = 0) -> int:
        """Look up one address; returns the latency including DRAM on miss."""
        set_index, tag = self._locate(addr)
        ways = self._sets.setdefault(set_index, OrderedDict())
        self.stats.energy_pj += self.config.access_pj
        if tag in ways:
            self.stats.hits += 1
            ways.move_to_end(tag)
            if is_write:
                ways[tag] = True
            return self.config.hit_latency
        self.stats.misses += 1
        latency = self.config.hit_latency
        if self.dram is not None:
            latency += self.dram.access_latency(addr, False, time)
        if len(ways) >= self.config.ways:
            _victim_tag, dirty = ways.popitem(last=False)
            if dirty:
                self.stats.writebacks += 1
                if self.dram is not None:
                    self.dram.access_latency(addr, True, time + latency)
        ways[tag] = is_write
        return latency

    def flush(self, time: int = 0) -> int:
        """Write every dirty line back; returns the number of writebacks.

        The writebacks issue as one batch to the DRAM controller — same
        bank-state evolution as one access per dirty line, without a
        controller round-trip each.
        """
        count = 0
        for ways in self._sets.values():
            for tag, dirty in list(ways.items()):
                if dirty:
                    count += 1
                    ways[tag] = False
        self.stats.writebacks += count
        if count and self.dram is not None:
            self.dram.access_latency_batch([0x8000_0000] * count, True, time)
        return count
