"""Off-chip memory system: striped multi-channel DRAM and the LLC rows.

A DRAMsim3 substitute: bank-state timing (activate / column access /
precharge), per-access energy, and a sparse functional backing store,
behind 32 last-level-cache tiles that form the top and bottom rows of the
mesh (Fig. 3(a)).
"""

from repro.dram.controller import DRAMConfig, DRAMController, DRAMStats
from repro.dram.llc import LLCConfig, LLCache, LLCStats

__all__ = [
    "DRAMConfig",
    "DRAMController",
    "DRAMStats",
    "LLCConfig",
    "LLCache",
    "LLCStats",
]
