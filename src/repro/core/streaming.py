"""Iteration-granularity simulation of a mapped segment (Sec. 4.2).

Each layer is a pipelined station: a data-collection core feeding a chain
of computing cores.  Vectors flow station to station; station ``l+1``'s
vector ``v`` becomes available when station ``l`` has pushed the ifmap
vector that *completes* the corresponding ofmap pixel through its whole
chain (all output channels live on different cores of the chain).

The simulator advances one vector at a time per layer with a tandem-queue
recurrence — capturing pipeline fill, inter-layer rate mismatches (the
greedy strategy's failure mode), and the per-iteration waiting that
Fig. 9 visualizes — while per-iteration *work* comes from the Eq. (1)
breakdown of :mod:`repro.core.perfmodel`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.core.perfmodel import LayerTiming
from repro.errors import SimulationError
from repro.nn.workloads import ConvLayerSpec


@dataclass
class CoreBreakdown:
    """Per-iteration cycle breakdown of an intermediate computing core."""

    layer_index: int
    compute: float        # CMem-visible compute (or scalar, whichever binds)
    send_ifmap: float
    send_ofmap: float
    wait_ifmap: float
    other: float

    def as_dict(self) -> Dict[str, float]:
        return {
            "compute": self.compute,
            "send_ifmap": self.send_ifmap,
            "send_ofmap": self.send_ofmap,
            "wait_ifmap": self.wait_ifmap,
            "other": self.other,
        }

    @property
    def total(self) -> float:
        return sum(self.as_dict().values())


@dataclass
class LayerFlow:
    """Observed flow of one layer during a segment run."""

    spec: ConvLayerSpec
    start: float
    finish: float
    iterations: int
    total_wait: float
    interval_work: float  # per-iteration busy time from the model

    @property
    def observed_interval(self) -> float:
        return (self.finish - self.start) / max(1, self.iterations)

    @property
    def mean_wait(self) -> float:
        return self.total_wait / max(1, self.iterations)


@dataclass
class SegmentResult:
    total_cycles: float
    flows: List[LayerFlow] = field(default_factory=list)

    def flow_of(self, layer_index: int) -> LayerFlow:
        for flow in self.flows:
            if flow.spec.index == layer_index:
                return flow
        raise SimulationError(f"no flow recorded for layer {layer_index}")


def completion_source_index(
    producer: ConvLayerSpec, oy: int, ox: int
) -> int:
    """Producer ifmap-vector index that completes ofmap pixel ``(oy, ox)``.

    An ofmap pixel of a stride/padding convolution is computable as soon
    as the *last* ifmap vector its receptive field touches has arrived —
    the bottom-right corner of the ``r x s`` window, clamped to the ifmap
    edge when padding hangs the window past it.  Vectors arrive in raster
    order, so the returned flat index (``y * w + x``) is also the arrival
    rank of that vector.

    This is the producer→consumer dependence both streaming tiers key
    on: the tandem-queue :class:`SegmentSimulator` uses it to compute
    per-vector readiness times, and the event-driven tier
    (:mod:`repro.core.event_streaming`) uses it to decide which forwarded
    vector unblocks each downstream compute.  Keeping them on one helper
    is what makes their agreement (``repro.sim.xcheck``) evidence about
    the *queueing* models, not about dependence bookkeeping.
    """
    y = min(producer.h - 1, oy * producer.stride - producer.padding + producer.r - 1)
    x = min(producer.w - 1, ox * producer.stride - producer.padding + producer.s - 1)
    return y * producer.w + x


#: Historical (pre-public) name, kept for back-compat.
_completion_source_index = completion_source_index


class SegmentSimulator:
    """Simulates one segment of chained node groups."""

    def __init__(
        self,
        timings: Sequence[LayerTiming],
        *,
        first_from_dram: bool = True,
        requests: int = 1,
    ) -> None:
        if not timings:
            raise SimulationError("empty segment")
        if requests < 1:
            raise SimulationError(f"requests must be >= 1, got {requests}")
        self.timings = list(timings)
        self.first_from_dram = first_from_dram
        #: Weight-stationary request batching: stream this many request
        #: copies back to back through the resident weights.  Vector ids
        #: are request-major (request ``r``'s vector ``v`` is
        #: ``r * iterations + v``); every station serves all requests
        #: with no re-staging between them, so ``requests=1`` is the
        #: historical single-sample run, bit for bit.
        self.requests = requests

    def _find_producer(
        self,
        spec: ConvLayerSpec,
        history: List,
    ) -> Optional[tuple]:
        """Nearest preceding layer whose ofmap matches this ifmap.

        Segments are stored as layer lists but the underlying graph is a
        DAG (downsample shortcuts consume the block input, not the previous
        list entry), so the producer is matched by feature-map geometry.
        """
        for prev_spec, departures in reversed(history):
            if prev_spec.ofmap_hw == (spec.h, spec.w):
                return prev_spec, departures
        return None

    def run(self) -> SegmentResult:
        result = SegmentResult(total_cycles=0.0)
        # (spec, per-vector chain-departure times) of every finished layer.
        history: List = []
        requests = self.requests
        for lt in self.timings:
            spec = lt.spec
            iterations = lt.iterations
            total = iterations * requests
            interval = lt.interval
            producer = self._find_producer(spec, history)
            # Arrival times of this layer's vectors at its DC
            # (request-major when streaming a request batch).
            if producer is None:
                arrivals = np.zeros(total)
            else:
                prev_spec, prev_departures = producer
                prev_iterations = len(prev_departures) // requests
                oh, ow = prev_spec.ofmap_hw
                # Consumer vector v corresponds to producer ofmap pixel v
                # (identical tensor raster); it departs the producer once
                # the completing ifmap vector has cleared the whole chain.
                arrivals = np.empty(total)
                # Consumers with stride-subsampled input (1x1 shortcuts)
                # read a regular subgrid of the producer's ofmap.
                step = int(round(math.sqrt(oh * ow / iterations))) or 1
                for r in range(requests):
                    base = r * iterations
                    offset = r * prev_iterations
                    v = 0
                    for oy in range(0, oh, step):
                        for ox in range(0, ow, step):
                            if v >= iterations:
                                break
                            src = completion_source_index(prev_spec, oy, ox)
                            # Guard for producers that streamed a subgrid
                            # of their ifmap (1x1 stride-2 shortcuts).
                            src = min(src, prev_iterations - 1)
                            arrivals[base + v] = (
                                prev_departures[offset + src] + lt.fill_per_hop
                            )
                            v += 1
                    if v < iterations:
                        arrivals[base + v:base + iterations] = (
                            arrivals[base + v - 1] if v else 0.0
                        )
            # Tandem queue through this layer: DC + chain.  The station
            # stays busy across request boundaries (weights resident).
            departures = np.empty(total)
            t = 0.0
            wait = 0.0
            for v in range(total):
                ready = arrivals[v]
                start = max(ready, t)
                wait += max(0.0, ready - t)
                t = start + interval
                departures[v] = t + lt.fill  # clears the whole chain
            flow = LayerFlow(
                spec=spec,
                start=float(arrivals[0]),
                finish=float(departures[-1]),
                iterations=total,
                total_wait=float(wait),
                interval_work=interval,
            )
            result.flows.append(flow)
            history.append((spec, departures))
        result.total_cycles = max(flow.finish for flow in result.flows)
        return result

    # -- Fig. 9 --------------------------------------------------------------

    def core_breakdown(
        self, layer_index: int, result: Optional[SegmentResult] = None
    ) -> CoreBreakdown:
        """Per-iteration breakdown of an intermediate core of one layer."""
        if result is None:
            result = self.run()
        lt = next(t for t in self.timings if t.spec.index == layer_index)
        flow = result.flow_of(layer_index)
        it = lt.iteration
        compute = max(it.t_cmem, it.t_issue + it.t_acc)
        observed = flow.observed_interval
        accounted = compute + it.t_forward + it.t_ofmap_send + it.t_aux + it.t_loop
        wait = flow.mean_wait + max(0.0, observed - accounted - flow.mean_wait)
        return CoreBreakdown(
            layer_index=layer_index,
            compute=compute,
            send_ifmap=it.t_forward,
            send_ofmap=it.t_ofmap_send,
            wait_ifmap=wait,
            other=it.t_aux + it.t_loop,
        )
