"""NoC traffic replay for a placed segment.

Quantifies what the zig-zag mapping buys (Fig. 7(c)): for one steady-state
iteration wave of a segment — every layer's DC feeding its chain, every
core forwarding the ifmap vector to its successor, and finished ofmap
values flowing to the next layer's DC — the packets are replayed on the
contention-aware mesh model, producing the wave's completion time and the
flit-hop count that drives NoC energy.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

from repro.mapping.placement import NodePlacement
from repro.mapping.segmentation import Segment
from repro.noc.mesh import MeshConfig, MeshNoC
from repro.noc.packet import Packet, PacketKind


@dataclass(frozen=True)
class TrafficResult:
    """One iteration wave's communication cost."""

    completion_cycles: int
    packets: int
    flit_hops: int

    def energy_pj(self, flit_energy_pj: float = 5.4) -> float:
        return self.flit_hops * flit_energy_pj


def simulate_segment_traffic(
    segment: Segment,
    placement: NodePlacement,
    *,
    noc: Optional[MeshNoC] = None,
    n_bits: int = 8,
) -> TrafficResult:
    """Replay one iteration wave of a placed segment on the mesh.

    Per layer: ``n_bits`` row packets from the DC into the first core and
    between successive chain cores (LoadRow/StoreRow.RC), plus one scalar
    ofmap store from each computing core to the next layer's DC.
    """
    noc = noc or MeshNoC(MeshConfig())
    start_packets = noc.stats.packets
    start_hops = noc.stats.flit_hops
    completion = 0
    indices = [spec.index for spec in segment.layers]
    sub = {
        spec.index: max(1, math.ceil(spec.c / 256)) for spec in segment.layers
    }
    for pos, spec in enumerate(segment.layers):
        chain = [placement.dc[spec.index]] + placement.computing[spec.index]
        # Ifmap vector rows ripple down the chain: one back-to-back
        # stream per link, collapsed to O(hops) by ``send_stream``.
        t = 0
        for src, dst in zip(chain, chain[1:]):
            t = noc.send_stream(
                Packet(src=src, dst=dst, kind=PacketKind.ROW_TRANSFER),
                t,
                n_bits * sub[spec.index],
            )
            completion = max(completion, t)
        # Finished ofmap values flow to the next layer's DC.
        if pos + 1 < len(segment.layers):
            target = placement.dc[indices[pos + 1]]
            for core in placement.computing[spec.index]:
                arrival = noc.send(
                    Packet(src=core, dst=target, kind=PacketKind.REMOTE_STORE), 0
                )
                completion = max(completion, arrival)
    return TrafficResult(
        completion_cycles=completion,
        packets=noc.stats.packets - start_packets,
        flit_hops=noc.stats.flit_hops - start_hops,
    )
