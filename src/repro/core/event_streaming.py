"""Event-driven segment simulation at (core, vector) granularity.

The production streaming model (:mod:`repro.core.streaming`) collapses
each layer's chain into a single pipelined station — fast, but an
approximation.  This module simulates every core of every chain as its
own actor on the discrete-event kernel, serving two purposes:

* **validation** — the tandem-queue model's totals are cross-checked
  against a faithful per-core simulation (see
  ``tests/core/test_event_streaming.py``);
* **policy exploration** — Algorithm 1 forwards the ifmap vector *after*
  computing with it (lines 9-13 follow lines 4-8); hardware would also
  permit forwarding *eagerly* (StoreRow.RC only reads slice 0).  The
  policies differ exactly by the chain-fill term, which dominates the
  single-layer strategy's long chains.

Two engines produce byte-identical results:

* **vectorized** (default) — one batched :class:`~repro.utils.events.EventQueue`
  event per layer whose handler advances *all* of the layer's
  (core, vector) hops with NumPy scans.  The per-event heap is collapsed
  into per-station recurrences; see :func:`_station_scan` for why the
  float evaluation order (and hence every timestamp) is unchanged.
* **reference** — the historical per-event engine: one heap callback per
  (core, vector) hop.  Kept as the differential oracle
  (``tests/core/test_event_vectorized.py`` pins the two equal) and as the
  fallback for degenerate timings (zero-cycle stations) where heap
  tie-breaking is the only defined order.

Why the decomposition is exact: layers share no stations — a layer's DC
and chain cores are touched only by that layer's events — so the global
heap interleaving across layers cannot affect any timestamp.  Within a
layer, every station serves vectors in (arrival time, schedule seq)
order; with strictly positive per-vector service times the chain
preserves strict arrival order, so the heap's dispatch order is exactly
reproduced by a stable sort on (arrival, enqueue rank), where the
enqueue rank of a consumer vector is (producer's service position of its
source vector, consumer vector index) — the order ``chain_complete``
walks the waiter lists.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.perfmodel import LayerTiming
from repro.core.streaming import completion_source_index
from repro.errors import SimulationError
from repro.nn.workloads import ConvLayerSpec
from repro.utils.events import EventQueue

#: Engine selection values accepted by :class:`EventDrivenSegmentSimulator`.
ENGINES = ("auto", "vectorized", "reference")


@dataclass
class EventSegmentResult:
    """Outcome of one event-driven segment run."""

    total_cycles: float
    layer_finish: Dict[int, float] = field(default_factory=dict)
    events_processed: int = 0
    #: Back-to-back request streams simulated (weight-stationary batching).
    requests: int = 1


def _consumer_wiring(
    timings: Sequence[LayerTiming],
) -> Tuple[List[Optional[int]], List[Optional[List[int]]]]:
    """Producer index and per-vector source mapping of every layer.

    Shared by both engines so their dependence bookkeeping cannot drift:
    ``producer_of[li]`` is the nearest preceding layer whose ofmap
    geometry matches layer ``li``'s ifmap, and ``sources[li][v]`` is the
    producer vector whose chain completion makes consumer vector ``v``
    available (see :func:`repro.core.streaming.completion_source_index`).
    """
    n_layers = len(timings)
    producer_of: List[Optional[int]] = [None] * n_layers
    consumer_sources: List[Optional[List[int]]] = [None] * n_layers
    for li, lt in enumerate(timings):
        spec = lt.spec
        for pj in range(li - 1, -1, -1):
            if timings[pj].spec.ofmap_hw == (spec.h, spec.w):
                producer_of[li] = pj
                break
        if producer_of[li] is not None:
            prev_spec = timings[producer_of[li]].spec
            oh, ow = prev_spec.ofmap_hw
            step = int(round(math.sqrt(oh * ow / lt.iterations))) or 1
            sources = []
            for oy in range(0, oh, step):
                for ox in range(0, ow, step):
                    if len(sources) >= lt.iterations:
                        break
                    src = completion_source_index(prev_spec, oy, ox)
                    sources.append(
                        min(src, timings[producer_of[li]].iterations - 1)
                    )
            while len(sources) < lt.iterations:
                sources.append(sources[-1] if sources else 0)
            consumer_sources[li] = sources
    return producer_of, consumer_sources


def _station_scan(arrivals: np.ndarray, service: float) -> np.ndarray:
    """Service-start times of a FIFO station with a fixed per-vector cost.

    Computes ``start[v] = max(arrivals[v], start[v-1] + service)`` — the
    exact recurrence each per-event callback evaluated — with a
    vectorized fast path: when every gap ``arrivals[v] - arrivals[v-1]``
    covers the service time, the station never queues and ``start`` is
    just ``arrivals``.  The gap test uses the same IEEE add/compare the
    scalar recurrence would (induction: ``start[v-1] == arrivals[v-1]``
    and ``arrivals[v] >= arrivals[v-1] + service`` make the ``max`` pick
    ``arrivals[v]``), so the returned floats are bit-identical to the
    serial scan whichever path runs.
    """
    n = len(arrivals)
    if n <= 1 or bool(np.all(arrivals[1:] >= arrivals[:-1] + service)):
        return arrivals
    starts = arrivals.tolist()  # scalar float loop beats ndarray indexing
    busy = -math.inf
    for v, a in enumerate(starts):
        if busy > a:
            starts[v] = busy
            busy += service
        else:
            busy = a + service
    return np.asarray(starts)


class EventDrivenSegmentSimulator:
    """Per-core, per-vector discrete-event simulation of one segment.

    ``requests`` streams that many back-to-back input samples through the
    same stationary weights (weight-stationary request batching): every
    layer processes ``requests * iterations`` vectors, with request ``r``'s
    consumer vectors depending on request ``r``'s producer vectors.  The
    default ``requests=1`` path is byte-identical to the historical
    single-request engine.
    """

    def __init__(
        self,
        timings: Sequence[LayerTiming],
        *,
        forward_policy: str = "eager",
        requests: int = 1,
        engine: str = "auto",
    ) -> None:
        if not timings:
            raise SimulationError("empty segment")
        if forward_policy not in ("eager", "after_compute"):
            raise SimulationError(f"unknown forward policy {forward_policy!r}")
        if requests < 1:
            raise SimulationError(f"requests must be >= 1, got {requests}")
        if engine not in ENGINES:
            raise SimulationError(
                f"unknown engine {engine!r}; choose from {ENGINES}"
            )
        self.timings = list(timings)
        self.forward_policy = forward_policy
        self.requests = requests
        self.engine = engine

    # -- engine selection ------------------------------------------------------

    def _vectorizable(self) -> bool:
        """True when strict service ordering makes the sort-based engine
        provably equal to heap dispatch (see module docstring)."""
        for lt in self.timings:
            if lt.dc.total <= 0.0:
                return False
            if lt.computing_nodes and lt.iteration.total <= 0.0:
                return False
        return True

    def run(self) -> EventSegmentResult:
        if self.engine == "reference":
            return self.run_reference()
        if self.engine == "vectorized" or self._vectorizable():
            return self.run_vectorized()
        return self.run_reference()

    # -- vectorized engine -----------------------------------------------------

    def run_vectorized(self) -> EventSegmentResult:
        """Batched engine: one queue event per layer, NumPy per-vector math."""
        timings = self.timings
        n_layers = len(timings)
        requests = self.requests
        hop = timings[0].fill_per_hop
        eager = self.forward_policy == "eager"

        producer_of, consumer_sources = _consumer_wiring(timings)
        consumers_of: List[List[int]] = [[] for _ in timings]
        for li, pj in enumerate(producer_of):
            if pj is not None:
                consumers_of[pj].append(li)

        # Per-layer outputs, indexed by vector id (request-major).
        chain_done: List[Optional[np.ndarray]] = [None] * n_layers
        # Service position of each producer vector at its DC — the seq
        # component of the heap order consumers inherit.
        dc_position: List[Optional[np.ndarray]] = [None] * n_layers
        finish = [0.0] * n_layers
        vector_events = 0

        def process_layer(li: int) -> None:
            """Vectorized handler: every (core, vector) hop of one layer."""
            nonlocal vector_events
            lt = timings[li]
            per_request = lt.iterations
            total = per_request * requests
            pj = producer_of[li]
            if pj is None:
                # Source layer: all vectors stream from DRAM at t=0 and
                # enter the DC heap in (request, vector) order.
                arrivals = np.zeros(total)
                order = np.arange(total)
            else:
                src = np.asarray(consumer_sources[li], dtype=np.intp)
                if requests > 1:
                    prod_per_request = timings[pj].iterations
                    offs = np.arange(requests, dtype=np.intp) * prod_per_request
                    src = (src[None, :] + offs[:, None]).reshape(-1)
                prod_done = chain_done[pj]
                assert prod_done is not None and dc_position[pj] is not None
                # Same float op the per-event engine applied per waiter.
                arrivals = prod_done[src] + hop
                # Heap order among same-time arrivals: producers complete
                # their chains in DC-service order, and each completion
                # enqueues its waiters in consumer-vector order.
                enqueue = np.argsort(dc_position[pj][src], kind="stable")
                order = enqueue[np.argsort(arrivals[enqueue], kind="stable")]
            # DC: a serial FIFO station over the heap-ordered arrivals.
            dc_start = _station_scan(arrivals[order], lt.dc.total)
            dc_done = dc_start + lt.dc.total
            nodes = lt.computing_nodes
            if nodes:
                t_iter = lt.iteration.total
                t_forward = lt.iteration.t_forward
                incoming = dc_done + hop
                for k in range(nodes):
                    starts = _station_scan(incoming, t_iter)
                    if k + 1 < nodes:
                        forward = starts + (t_forward if eager else t_iter)
                        incoming = forward + hop
                layer_done = starts + t_iter
            else:
                layer_done = dc_done
            # Map service order back to vector ids.
            by_vector = np.empty(total)
            by_vector[order] = layer_done
            position = np.empty(total, dtype=np.intp)
            position[order] = np.arange(total, dtype=np.intp)
            chain_done[li] = by_vector
            dc_position[li] = position
            finish[li] = float(np.max(layer_done))
            vector_events += total * (1 + nodes)
            # Ready consumers ride the batched queue: each gets one event
            # at its first-arrival time, whose handler is fully vectorized.
            for cl in consumers_of[li]:
                first = float(np.min(layer_done)) + hop
                queue.schedule(
                    max(first, queue.now),
                    lambda cl=cl: process_layer(cl),
                    tag="layer-batch",
                )

        # One queue event per layer; source layers drain together from the
        # t=0 same-timestamp batch.
        queue = EventQueue()
        for li, pj in enumerate(producer_of):
            if pj is None:
                queue.schedule(0.0, lambda li=li: process_layer(li), tag="layer-batch")
        queue.run(batched=True)
        return EventSegmentResult(
            total_cycles=max(finish),
            layer_finish={
                lt.spec.index: finish[li] for li, lt in enumerate(timings)
            },
            events_processed=vector_events,
            requests=requests,
        )

    # -- reference engine ------------------------------------------------------

    def run_reference(self) -> EventSegmentResult:
        """The historical per-event engine: one heap callback per hop."""
        queue = EventQueue()
        timings = self.timings
        n_layers = len(timings)
        requests = self.requests

        # Per-layer mutable state.
        dc_free = [0.0] * n_layers
        core_free = [[0.0] * lt.computing_nodes for lt in timings]
        chain_done: List[Dict[int, float]] = [dict() for _ in timings]
        finish = [0.0] * n_layers

        producer_of, consumer_sources = _consumer_wiring(timings)
        totals = [lt.iterations * requests for lt in timings]

        # Reverse index: producer layer -> {producer vector: [consumer vectors]}
        # with vector ids request-major, mirroring the vectorized engine.
        waiters: List[Dict[int, List[Tuple[int, int]]]] = [
            dict() for _ in timings
        ]
        for li, sources in enumerate(consumer_sources):
            if sources is None:
                continue
            pj = producer_of[li]
            assert pj is not None
            prod_per_request = timings[pj].iterations
            per_request = timings[li].iterations
            for r in range(requests):
                for v, src in enumerate(sources):
                    waiters[pj].setdefault(r * prod_per_request + src, []).append(
                        (li, r * per_request + v)
                    )

        hop = timings[0].fill_per_hop

        def core_receive(li: int, k: int, v: int, t: float) -> None:
            lt = timings[li]
            start = max(t, core_free[li][k])
            compute_done = start + lt.iteration.total
            core_free[li][k] = compute_done
            if self.forward_policy == "eager":
                forward_at = start + lt.iteration.t_forward
            else:
                forward_at = compute_done
            if k + 1 < lt.computing_nodes:
                queue.schedule(
                    max(forward_at + hop, queue.now),
                    lambda: core_receive(li, k + 1, v, forward_at + hop),
                )
            # The vector's results exist once the last core computed it.
            if k == lt.computing_nodes - 1:
                chain_complete(li, v, compute_done)

        def chain_complete(li: int, v: int, t: float) -> None:
            chain_done[li][v] = t
            finish[li] = max(finish[li], t)
            for (cl, cv) in waiters[li].get(v, ()):
                queue.schedule(
                    max(t + hop, queue.now),
                    lambda cl=cl, cv=cv, t=t: dc_receive(cl, cv, t + hop),
                )

        def dc_receive(li: int, v: int, t: float) -> None:
            lt = timings[li]
            start = max(t, dc_free[li])
            done = start + lt.dc.total
            dc_free[li] = done
            if lt.computing_nodes:
                queue.schedule(
                    max(done + hop, queue.now),
                    lambda: core_receive(li, 0, v, done + hop),
                )
            else:
                chain_complete(li, v, done)

        # Source layers (no in-segment producer) stream from DRAM at t=0,
        # request-major so batched requests follow each other back to back.
        for li, lt in enumerate(timings):
            if producer_of[li] is None:
                for v in range(totals[li]):
                    queue.schedule(0.0, lambda li=li, v=v: dc_receive(li, v, 0.0))

        queue.run()
        for li, lt in enumerate(timings):
            if len(chain_done[li]) != totals[li]:
                raise SimulationError(
                    f"layer {lt.spec.name}: only {len(chain_done[li])} of "
                    f"{totals[li]} vectors completed (deadlock?)"
                )
        return EventSegmentResult(
            total_cycles=max(finish),
            layer_finish={
                lt.spec.index: finish[li] for li, lt in enumerate(timings)
            },
            events_processed=queue.processed,
            requests=requests,
        )
