"""Event-driven segment simulation at (core, vector) granularity.

The production streaming model (:mod:`repro.core.streaming`) collapses
each layer's chain into a single pipelined station — fast, but an
approximation.  This module simulates every core of every chain as its
own actor on the discrete-event kernel, serving two purposes:

* **validation** — the tandem-queue model's totals are cross-checked
  against a faithful per-core simulation (see
  ``tests/core/test_event_streaming.py``);
* **policy exploration** — Algorithm 1 forwards the ifmap vector *after*
  computing with it (lines 9-13 follow lines 4-8); hardware would also
  permit forwarding *eagerly* (StoreRow.RC only reads slice 0).  The
  policies differ exactly by the chain-fill term, which dominates the
  single-layer strategy's long chains.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.core.perfmodel import LayerTiming
from repro.core.streaming import completion_source_index
from repro.errors import SimulationError
from repro.nn.workloads import ConvLayerSpec
from repro.utils.events import EventQueue


@dataclass
class EventSegmentResult:
    """Outcome of one event-driven segment run."""

    total_cycles: float
    layer_finish: Dict[int, float] = field(default_factory=dict)
    events_processed: int = 0


class EventDrivenSegmentSimulator:
    """Per-core, per-vector discrete-event simulation of one segment."""

    def __init__(
        self,
        timings: Sequence[LayerTiming],
        *,
        forward_policy: str = "eager",
    ) -> None:
        if not timings:
            raise SimulationError("empty segment")
        if forward_policy not in ("eager", "after_compute"):
            raise SimulationError(f"unknown forward policy {forward_policy!r}")
        self.timings = list(timings)
        self.forward_policy = forward_policy

    def run(self) -> EventSegmentResult:
        queue = EventQueue()
        timings = self.timings
        n_layers = len(timings)

        # Per-layer mutable state.
        dc_free = [0.0] * n_layers
        core_free = [[0.0] * lt.computing_nodes for lt in timings]
        chain_done: List[Dict[int, float]] = [dict() for _ in timings]
        finish = [0.0] * n_layers

        # Consumer wiring: consumer vector index -> producer vector index.
        producer_of = [None] * n_layers
        consumer_sources: List[Optional[List[int]]] = [None] * n_layers
        history: List[ConvLayerSpec] = []
        for li, lt in enumerate(timings):
            spec = lt.spec
            for pj in range(li - 1, -1, -1):
                if timings[pj].spec.ofmap_hw == (spec.h, spec.w):
                    producer_of[li] = pj
                    break
            if producer_of[li] is not None:
                prev_spec = timings[producer_of[li]].spec
                oh, ow = prev_spec.ofmap_hw
                step = int(round(math.sqrt(oh * ow / lt.iterations))) or 1
                sources = []
                for oy in range(0, oh, step):
                    for ox in range(0, ow, step):
                        if len(sources) >= lt.iterations:
                            break
                        src = completion_source_index(prev_spec, oy, ox)
                        sources.append(min(src, timings[producer_of[li]].iterations - 1))
                while len(sources) < lt.iterations:
                    sources.append(sources[-1] if sources else 0)
                consumer_sources[li] = sources
            history.append(spec)

        # Reverse index: producer layer -> {producer vector: [consumer vectors]}.
        waiters: List[Dict[int, List[int]]] = [dict() for _ in timings]
        for li, sources in enumerate(consumer_sources):
            if sources is None:
                continue
            pj = producer_of[li]
            for v, src in enumerate(sources):
                waiters[pj].setdefault(src, []).append((li, v))

        hop = timings[0].fill_per_hop

        def core_receive(li: int, k: int, v: int, t: float) -> None:
            lt = timings[li]
            start = max(t, core_free[li][k])
            compute_done = start + lt.iteration.total
            core_free[li][k] = compute_done
            if self.forward_policy == "eager":
                forward_at = start + lt.iteration.t_forward
            else:
                forward_at = compute_done
            if k + 1 < lt.computing_nodes:
                queue.schedule(
                    max(forward_at + hop, queue.now),
                    lambda: core_receive(li, k + 1, v, forward_at + hop),
                )
            # The vector's results exist once the last core computed it.
            if k == lt.computing_nodes - 1:
                chain_complete(li, v, compute_done)

        def chain_complete(li: int, v: int, t: float) -> None:
            chain_done[li][v] = t
            finish[li] = max(finish[li], t)
            for (cl, cv) in waiters[li].get(v, ()):
                queue.schedule(
                    max(t + hop, queue.now), lambda cl=cl, cv=cv, t=t: dc_receive(cl, cv, t + hop)
                )

        def dc_receive(li: int, v: int, t: float) -> None:
            lt = timings[li]
            start = max(t, dc_free[li])
            done = start + lt.dc.total
            dc_free[li] = done
            if lt.computing_nodes:
                queue.schedule(max(done + hop, queue.now),
                               lambda: core_receive(li, 0, v, done + hop))
            else:
                chain_complete(li, v, done)

        # Source layers (no in-segment producer) stream from DRAM at t=0.
        for li, lt in enumerate(timings):
            if producer_of[li] is None:
                for v in range(lt.iterations):
                    queue.schedule(0.0, lambda li=li, v=v: dc_receive(li, v, 0.0))

        queue.run()
        for li, lt in enumerate(timings):
            if len(chain_done[li]) != lt.iterations:
                raise SimulationError(
                    f"layer {lt.spec.name}: only {len(chain_done[li])} of "
                    f"{lt.iterations} vectors completed (deadlock?)"
                )
        return EventSegmentResult(
            total_cycles=max(finish),
            layer_finish={lt.spec.index: finish[li] for li, lt in enumerate(timings)},
            events_processed=queue.processed,
        )
