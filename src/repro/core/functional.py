"""Functional multi-node execution of layers and whole networks.

Two fidelity levels, selected per layer:

* **bit-true** — every computing core owns a real :class:`~repro.cmem.cmem.CMem`;
  the DC transposes each ifmap vector through slice 0, rows are forwarded
  core-to-core exactly as LoadRow.RC/StoreRow.RC would, and every MAC is a
  real bit-line computation.  Tractable for small layers; used by the
  end-to-end correctness tests.
* **fast** — identical data placement, filter splitting, sub-vector
  handling and accumulation order, but the per-vector dot products are
  computed with NumPy.  Used for ResNet18-scale functional runs.

Either way the result must equal the quantized reference engine exactly.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from typing import Dict, List, Optional

import numpy as np

from repro.cmem.cmem import CMem, CMemStats
from repro.core.datalayout import (
    load_filters_into_cmem,
    plan_node_layout,
    split_filters_across_nodes,
)
from repro.errors import ConfigurationError
from repro.mapping.capacity import CapacityModel
from repro.nn.quantize import QConv2d, QLinear, QuantizedGraph, QInput
from repro.nn.workloads import ConvLayerSpec
from repro.telemetry import TelemetrySink, current as _current_telemetry
from repro.telemetry.hooks import publish_cmem_stats, publish_group_stats


@dataclass
class GroupRunStats:
    """Operation counts of one layer's node-group execution."""

    vectors_streamed: int = 0
    row_transfers: int = 0
    macs: int = 0
    cmem_energy_pj: float = 0.0


def bit_true_min_nodes(spec: ConvLayerSpec, capacity: CapacityModel) -> int:
    """Minimum computing cores for the unpacked (bit-true) layout.

    Whole filters per node (no lane packing, no filter splitting), so each
    node's slot demand is guaranteed to fit its CMem.
    """
    sub_vectors = max(1, math.ceil(spec.c / capacity.cols))
    slots_per_filter = spec.r * spec.s * sub_vectors
    fpn = capacity.total_vector_slots(spec.n_bits) // slots_per_filter
    if fpn < 1:
        raise ConfigurationError(
            f"{spec.name}: one filter does not fit a node without packing"
        )
    return max(1, math.ceil(spec.m / fpn))


def _spec_of_qconv(name: str, layer: QConv2d, in_shape) -> ConvLayerSpec:
    m, c, r, s = layer.weight_q.shape
    return ConvLayerSpec(
        index=0, name=name, h=in_shape[1], w=in_shape[2], c=c, m=m,
        r=r, s=s, stride=layer.stride, padding=layer.padding,
        n_bits=layer.n_bits,
    )


class FunctionalNodeGroup:
    """One layer on a DC + chain of computing cores."""

    def __init__(
        self,
        spec: ConvLayerSpec,
        weights: np.ndarray,
        bias: np.ndarray,
        num_computing: int,
        *,
        bit_true: bool = False,
        capacity: Optional[CapacityModel] = None,
        fast_path: bool = True,
        telemetry: Optional[TelemetrySink] = None,
    ) -> None:
        self.spec = spec
        self.weights = np.asarray(weights, dtype=np.int64)
        self.bias = np.asarray(bias, dtype=np.int64)
        self.num_computing = num_computing
        self.bit_true = bit_true
        self.fast_path = fast_path
        self.capacity = capacity or CapacityModel()
        self.stats = GroupRunStats()
        self.telemetry = telemetry if telemetry is not None else _current_telemetry()
        # Per-node MAC tally (both paths), for per-core telemetry tracks.
        self._node_macs: List[int] = [0] * num_computing
        self.ranges = split_filters_across_nodes(spec.m, num_computing)
        if bit_true:
            if spec.c > self.capacity.cols:
                raise ConfigurationError(
                    "bit-true groups support C <= 256; use fast mode above"
                )
            self._nodes = []
            for k, (start, count) in enumerate(self.ranges):
                if count == 0:
                    self._nodes.append(None)
                    continue
                node_spec = ConvLayerSpec(
                    index=spec.index, name=spec.name, h=spec.h, w=spec.w,
                    c=spec.c, m=count, r=spec.r, s=spec.s,
                    stride=spec.stride, padding=spec.padding, n_bits=spec.n_bits,
                )
                layout = plan_node_layout(node_spec, count, self.capacity)
                cmem = CMem(
                    fast_path=fast_path,
                    telemetry=self.telemetry,
                    track=f"core/{k}/cmem",
                )
                load_filters_into_cmem(
                    cmem, layout, self.weights[start : start + count]
                )
                for s_idx in layout.slices_used:
                    cmem.slice(s_idx).csr_mask = layout.csr_mask
                self._nodes.append((node_spec, layout, cmem))

    # -- bit-true path ------------------------------------------------------------

    def _run_bit_true(self, q_in: np.ndarray) -> np.ndarray:
        spec = self.spec
        n = spec.n_bits
        oh, ow = spec.ofmap_hw
        acc = np.zeros((spec.m, oh, ow), dtype=np.int64)
        acc += self.bias[:, None, None]
        # DC CMem: slice 0 transposes.
        dc_buffer = CMem(fast_path=self.fast_path, telemetry=self.telemetry, track="dc/slice0")
        for y in range(spec.h):
            for x in range(spec.w):
                vector = q_in[:, y, x]
                # DC: vertical byte writes into slice 0, then row reads.
                dc_buffer.slice0.store_vector(0, [int(v) & 0xFF for v in vector], n)
                rows = [dc_buffer.slice0.read_row(r) for r in range(n)]
                self.stats.vectors_streamed += 1
                for k, (node, (start, count)) in enumerate(
                    zip(self._nodes, self.ranges)
                ):
                    if node is None:
                        continue
                    node_spec, layout, cmem = node
                    # LoadRow.RC x N: the vector lands in slice 0.
                    for r, row_bits in enumerate(rows):
                        cmem.write_row(0, r, row_bits)
                        self.stats.row_transfers += 1
                    # Broadcast and MAC (Algorithm 1).  Entries that fire at
                    # this pixel are grouped per slice so the whole slice's
                    # filters go through one batched ``mac_many`` — the
                    # cycle/energy charges are per weight row either way.
                    for s_idx in layout.slices_used:
                        cmem.move(0, 0, s_idx, 0, n)
                    by_slice: Dict[int, list] = {}
                    for entry in layout.entries:
                        oy_num = y + spec.padding - entry.fr
                        ox_num = x + spec.padding - entry.fs
                        if oy_num % spec.stride or ox_num % spec.stride:
                            continue
                        oy, ox = oy_num // spec.stride, ox_num // spec.stride
                        if not (0 <= oy < oh and 0 <= ox < ow):
                            continue
                        by_slice.setdefault(entry.slice_index, []).append(
                            (entry, oy, ox)
                        )
                    for s_idx, fired in by_slice.items():
                        psums = cmem.mac_many(
                            s_idx, 0, [e.row for e, _, _ in fired], n, signed=True
                        )
                        self.stats.macs += len(fired)
                        self._node_macs[k] += len(fired)
                        for (entry, oy, ox), psum in zip(fired, psums):
                            acc[start + entry.filter_index, oy, ox] += int(psum)
        for node in self._nodes:
            if node is not None:
                self.stats.cmem_energy_pj += node[2].energy.total_pj
        return acc

    # -- fast path -------------------------------------------------------------------

    def _run_fast(self, q_in: np.ndarray) -> np.ndarray:
        spec = self.spec
        oh, ow = spec.ofmap_hw
        cols = self.capacity.cols
        sub_vectors = max(1, math.ceil(spec.c / cols))
        acc = np.zeros((spec.m, oh, ow), dtype=np.int64)
        acc += self.bias[:, None, None]
        padded_c = sub_vectors * cols
        padded = np.zeros((padded_c, spec.h, spec.w), dtype=np.int64)
        padded[: spec.c] = q_in
        for y in range(spec.h):
            for x in range(spec.w):
                self.stats.vectors_streamed += 1
                vector = padded[:, y, x]
                for k, (start, count) in enumerate(self.ranges):
                    if count == 0:
                        continue
                    self.stats.row_transfers += spec.n_bits * sub_vectors
                    for fr in range(spec.r):
                        oy_num = y + spec.padding - fr
                        if oy_num % spec.stride:
                            continue
                        oy = oy_num // spec.stride
                        if not 0 <= oy < oh:
                            continue
                        for fs in range(spec.s):
                            ox_num = x + spec.padding - fs
                            if ox_num % spec.stride:
                                continue
                            ox = ox_num // spec.stride
                            if not 0 <= ox < ow:
                                continue
                            w_slab = np.zeros((count, padded_c), dtype=np.int64)
                            w_slab[:, : spec.c] = self.weights[
                                start : start + count, :, fr, fs
                            ]
                            # One MAC.C per held filter per 256-lane
                            # sub-vector, exactly as the CMem would issue.
                            for sub in range(sub_vectors):
                                lo, hi = sub * cols, (sub + 1) * cols
                                psums = w_slab[:, lo:hi] @ vector[lo:hi]
                                self.stats.macs += count
                                self._node_macs[k] += count
                                acc[start : start + count, oy, ox] += psums
        return acc

    def run(self, q_in: np.ndarray) -> np.ndarray:
        """Stream the quantized ifmap through the group; returns int32 acc."""
        q_in = np.asarray(q_in, dtype=np.int64)
        if q_in.shape != (self.spec.c, self.spec.h, self.spec.w):
            raise ConfigurationError(
                f"ifmap shape {q_in.shape} != "
                f"({self.spec.c}, {self.spec.h}, {self.spec.w})"
            )
        telemetry = self.telemetry
        if not telemetry.enabled:
            if self.bit_true:
                return self._run_bit_true(q_in)
            return self._run_fast(q_in)
        # Snapshot cumulative tallies so only *this* run is published.
        group_before = replace(self.stats)
        node_macs_before = list(self._node_macs)
        cmem_before = [
            replace(node[2].stats) if node is not None else None
            for node in (self._nodes if self.bit_true else [])
        ]
        acc = self._run_bit_true(q_in) if self.bit_true else self._run_fast(q_in)
        self._publish_run(group_before, node_macs_before, cmem_before)
        return acc

    def _publish_run(
        self,
        group_before: GroupRunStats,
        node_macs_before: List[int],
        cmem_before: List[Optional[CMemStats]],
    ) -> None:
        """Publish this run's deltas: registry counters + layer/core spans.

        The trace clock is simulation-derived and deterministic: CMem busy
        cycles in bit-true mode, MAC counts (one logical tick per MAC.C
        the hardware would issue) in fast mode.  Spans start at each
        track's cursor so consecutive layers stack sequentially.
        """
        telemetry = self.telemetry
        assert telemetry.registry is not None and telemetry.trace is not None
        trace = telemetry.trace
        spec = self.spec
        stats = self.stats
        delta = GroupRunStats(
            vectors_streamed=stats.vectors_streamed - group_before.vectors_streamed,
            row_transfers=stats.row_transfers - group_before.row_transfers,
            macs=stats.macs - group_before.macs,
            cmem_energy_pj=stats.cmem_energy_pj - group_before.cmem_energy_pj,
        )
        publish_group_stats(telemetry, f"group/{spec.name}", delta)
        durations: List[int] = []
        for k in range(self.num_computing):
            if self.bit_true:
                node = self._nodes[k]
                if node is None:
                    continue
                before = cmem_before[k]
                assert before is not None
                after = node[2].stats
                dur = after.busy_cycles - before.busy_cycles
                cmem_delta = CMemStats(
                    macs=after.macs - before.macs,
                    moves=after.moves - before.moves,
                    set_rows=after.set_rows - before.set_rows,
                    shift_rows=after.shift_rows - before.shift_rows,
                    remote_rows=after.remote_rows - before.remote_rows,
                    vertical_writes=after.vertical_writes - before.vertical_writes,
                    busy_cycles=dur,
                )
                publish_cmem_stats(telemetry, f"core/{k}/cmem", cmem_delta)
            else:
                dur = self._node_macs[k] - node_macs_before[k]
                if dur == 0:
                    continue
            durations.append(dur)
            track = f"core/{k}"
            trace.complete(
                track, spec.name, trace.cursor(track), dur,
                args={"macs": self._node_macs[k] - node_macs_before[k]},
            )
        layer_track = f"layer/{spec.name}"
        trace.complete(
            layer_track,
            spec.name,
            trace.cursor(layer_track),
            max(durations, default=0),
            args={
                "vectors": delta.vectors_streamed,
                "row_transfers": delta.row_transfers,
                "macs": delta.macs,
                "nodes": self.num_computing,
                "clock": "cmem_busy_cycles" if self.bit_true else "macs",
            },
        )


def simulate_quantized_graph(
    qgraph: QuantizedGraph,
    x: np.ndarray,
    *,
    nodes_per_layer: Optional[Dict[str, int]] = None,
    bit_true: bool = False,
    capacity: Optional[CapacityModel] = None,
    fast_path: bool = True,
    telemetry: Optional[TelemetrySink] = None,
) -> Dict[str, np.ndarray]:
    """Run a quantized network with every conv/FC on a functional node group.

    Auxiliary layers (ReLU, pooling, residual add, requantization) execute
    through the same integer routines the scalar cores implement.  The
    returned activations must equal ``qgraph.forward(x)`` exactly.
    """
    capacity = capacity or CapacityModel()
    nodes_per_layer = nodes_per_layer or {}
    telemetry = telemetry if telemetry is not None else _current_telemetry()
    acts: Dict[str, np.ndarray] = {}
    for name in qgraph.order:
        node = qgraph.nodes[name]
        layer = node.layer
        if isinstance(layer, QInput):
            acts[name] = layer.forward(x)
        elif isinstance(layer, QConv2d):
            q_in = acts[node.inputs[0]]
            spec = _spec_of_qconv(name, layer, q_in.shape)
            default = (
                bit_true_min_nodes(spec, capacity)
                if bit_true
                else capacity.min_nodes(spec, max_nodes=spec.m)
            )
            num = nodes_per_layer.get(name, default)
            group = FunctionalNodeGroup(
                spec, layer.weight_q, layer.bias_q, num,
                bit_true=bit_true, capacity=capacity, fast_path=fast_path,
                telemetry=telemetry,
            )
            acc = group.run(q_in)
            from repro.nn.quantize import _requant

            acts[name] = _requant(acc, layer.requant_ratio, layer.n_bits)
        elif isinstance(layer, QLinear):
            q_in = acts[node.inputs[0]].reshape(-1)
            spec = ConvLayerSpec(
                index=0, name=name, h=1, w=1, c=q_in.shape[0],
                m=layer.weight_q.shape[0], r=1, s=1, stride=1, padding=0,
                n_bits=layer.n_bits,
            )
            default = (
                bit_true_min_nodes(spec, capacity)
                if bit_true
                else capacity.min_nodes(spec, max_nodes=spec.m)
            )
            num = nodes_per_layer.get(name, default)
            group = FunctionalNodeGroup(
                spec,
                layer.weight_q.reshape(spec.m, spec.c, 1, 1),
                layer.bias_q,
                num,
                bit_true=bit_true,
                capacity=capacity,
                fast_path=fast_path,
                telemetry=telemetry,
            )
            acc = group.run(q_in.reshape(spec.c, 1, 1)).reshape(spec.m)
            from repro.nn.quantize import _requant

            acts[name] = _requant(acc, layer.requant_ratio, layer.n_bits)
        else:
            acts[name] = layer.forward(*[acts[i] for i in node.inputs])
    return acts
