"""Arrival-driven multi-DNN serving: the autonomous-driving workload.

The paper motivates MAICC with sensor stacks where cameras, radars, and
LiDARs produce frames at *different rates* that feed different networks
simultaneously (Sec. 1).  This module closes that loop: periodic frame
arrivals are replayed on the discrete-event kernel against either

* **spatial partitions** — each model owns a slice of the array and
  serves its own frames (MAICC's MIMD mode), or
* **a time-shared array** — one queue, frames of all models served FIFO
  by the whole chip, reloading weights between models,

reporting per-stream queueing + service latency and deadline behaviour.

Since the :mod:`repro.serving` subsystem landed, this module is a thin
periodic-arrival front-end over the shared
:class:`~repro.serving.policies.ServingPolicy` interface:

* ``policy="spatial"`` runs
  :class:`~repro.serving.policies.StaticPartitionPolicy` — partitions
  and per-partition service times from the same offline
  :class:`~repro.core.multi_dnn.MultiDNNScheduler` run as before;
* ``policy="time-shared"`` runs
  :class:`~repro.serving.policies.TimeSharedPolicy`.

Both paths produce *bit-identical* latencies to the pre-serving
implementation (pinned by differential tests in
``tests/core/test_sensor_stream.py``); the serving layer adds bounded
queues, Poisson/trace arrivals, EDF, and elastic partitions on top — see
``docs/SERVING.md``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.core.multi_dnn import MultiDNNScheduler
from repro.errors import SimulationError
from repro.nn.workloads import NetworkSpec


@dataclass(frozen=True)
class StreamSpec:
    """One periodic sensor stream feeding one network."""

    network: NetworkSpec
    period_ms: float
    name: Optional[str] = None

    @property
    def label(self) -> str:
        return self.name or self.network.name

    @property
    def rate_hz(self) -> float:
        return 1000.0 / self.period_ms


@dataclass
class StreamReport:
    """Latency statistics of one stream over the simulated window."""

    label: str
    frames: int = 0
    completed: int = 0
    latencies_ms: List[float] = field(default_factory=list)

    @property
    def mean_latency_ms(self) -> float:
        return sum(self.latencies_ms) / len(self.latencies_ms) if self.latencies_ms else 0.0

    @property
    def max_latency_ms(self) -> float:
        return max(self.latencies_ms) if self.latencies_ms else 0.0

    def deadline_misses(self, deadline_ms: float) -> int:
        return sum(1 for lat in self.latencies_ms if lat > deadline_ms)


@dataclass
class ServingResult:
    reports: Dict[str, StreamReport]

    @property
    def worst_mean_latency_ms(self) -> float:
        return max(r.mean_latency_ms for r in self.reports.values())

    @property
    def total_completed(self) -> int:
        return sum(r.completed for r in self.reports.values())


class SensorStreamSimulator:
    """Replays periodic arrivals against a serving policy."""

    def __init__(self, scheduler: Optional[MultiDNNScheduler] = None) -> None:
        self.scheduler = scheduler or MultiDNNScheduler()

    def run(
        self,
        streams: Sequence[StreamSpec],
        duration_ms: float,
        *,
        policy: str = "spatial",
    ) -> ServingResult:
        """Serve ``duration_ms`` of arrivals under a policy.

        ``spatial``: one deterministic server per stream, service time =
        the model's latency in its partition.  ``time-shared``: a single
        server; service time = the model's whole-array latency (weights
        reload between frames of different models, which the whole-array
        latency already includes via its filter-load phase).
        """
        from repro.serving.arrivals import PeriodicArrivals
        from repro.serving.policies import StaticPartitionPolicy, TimeSharedPolicy
        from repro.serving.simulator import ServingSimulator
        from repro.serving.tenancy import TenantSpec

        if policy == "spatial":
            serving_policy = StaticPartitionPolicy(self.scheduler)
        elif policy == "time-shared":
            serving_policy = TimeSharedPolicy(self.scheduler)
        else:
            raise SimulationError(f"unknown serving policy {policy!r}")

        tenants = [
            TenantSpec(
                name=stream.label,
                network=stream.network,
                arrivals=PeriodicArrivals(stream.period_ms),
            )
            for stream in streams
        ]
        result = ServingSimulator(serving_policy, discipline="fifo").run(
            tenants, duration_ms
        )
        reports = {
            name: StreamReport(
                label=name,
                frames=report.arrivals,
                completed=report.completed,
                latencies_ms=list(report.latencies_ms),
            )
            for name, report in result.reports.items()
        }
        return ServingResult(reports=reports)
