"""Arrival-driven multi-DNN serving: the autonomous-driving workload.

The paper motivates MAICC with sensor stacks where cameras, radars, and
LiDARs produce frames at *different rates* that feed different networks
simultaneously (Sec. 1).  This module closes that loop: periodic frame
arrivals are replayed on the discrete-event kernel against either

* **spatial partitions** — each model owns a slice of the array and
  serves its own frames (MAICC's MIMD mode), or
* **a time-shared array** — one queue, frames of all models served FIFO
  by the whole chip, reloading weights between models,

reporting per-stream queueing + service latency and deadline behaviour.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.core.multi_dnn import MultiDNNScheduler
from repro.errors import SimulationError
from repro.nn.workloads import NetworkSpec
from repro.utils.events import EventQueue


@dataclass(frozen=True)
class StreamSpec:
    """One periodic sensor stream feeding one network."""

    network: NetworkSpec
    period_ms: float
    name: Optional[str] = None

    @property
    def label(self) -> str:
        return self.name or self.network.name

    @property
    def rate_hz(self) -> float:
        return 1000.0 / self.period_ms


@dataclass
class StreamReport:
    """Latency statistics of one stream over the simulated window."""

    label: str
    frames: int = 0
    completed: int = 0
    latencies_ms: List[float] = field(default_factory=list)

    @property
    def mean_latency_ms(self) -> float:
        return sum(self.latencies_ms) / len(self.latencies_ms) if self.latencies_ms else 0.0

    @property
    def max_latency_ms(self) -> float:
        return max(self.latencies_ms) if self.latencies_ms else 0.0

    def deadline_misses(self, deadline_ms: float) -> int:
        return sum(1 for lat in self.latencies_ms if lat > deadline_ms)


@dataclass
class ServingResult:
    reports: Dict[str, StreamReport]

    @property
    def worst_mean_latency_ms(self) -> float:
        return max(r.mean_latency_ms for r in self.reports.values())

    @property
    def total_completed(self) -> int:
        return sum(r.completed for r in self.reports.values())


class SensorStreamSimulator:
    """Replays periodic arrivals against a serving policy."""

    def __init__(self, scheduler: Optional[MultiDNNScheduler] = None) -> None:
        self.scheduler = scheduler or MultiDNNScheduler()

    # -- service-time derivation -------------------------------------------------

    def _partition_service_ms(self, streams: Sequence[StreamSpec]) -> Dict[str, float]:
        networks = [s.network for s in streams]
        run = self.scheduler.run(networks)
        return {
            stream.label: model_run.latency_ms
            for stream, model_run in zip(streams, run.runs)
        }

    def _shared_service_ms(self, streams: Sequence[StreamSpec]) -> Dict[str, float]:
        return {
            stream.label: self.scheduler.simulator.run(
                stream.network, "heuristic"
            ).latency_ms
            for stream in streams
        }

    # -- event-driven serving -----------------------------------------------------

    def run(
        self,
        streams: Sequence[StreamSpec],
        duration_ms: float,
        *,
        policy: str = "spatial",
    ) -> ServingResult:
        """Serve ``duration_ms`` of arrivals under a policy.

        ``spatial``: one deterministic server per stream, service time =
        the model's latency in its partition.  ``time-shared``: a single
        server; service time = the model's whole-array latency (weights
        reload between frames of different models, which the whole-array
        latency already includes via its filter-load phase).
        """
        if policy == "spatial":
            service = self._partition_service_ms(streams)
            servers = {stream.label: stream.label for stream in streams}
        elif policy == "time-shared":
            service = self._shared_service_ms(streams)
            servers = {stream.label: "chip" for stream in streams}
        else:
            raise SimulationError(f"unknown serving policy {policy!r}")

        queue = EventQueue()
        server_free: Dict[str, float] = {}
        reports = {s.label: StreamReport(label=s.label) for s in streams}

        def arrive(stream: StreamSpec, t: float) -> None:
            report = reports[stream.label]
            report.frames += 1
            server = servers[stream.label]
            start = max(t, server_free.get(server, 0.0))
            done = start + service[stream.label]
            server_free[server] = done
            if done <= duration_ms:
                report.completed += 1
                report.latencies_ms.append(done - t)
            next_t = t + stream.period_ms
            if next_t < duration_ms:
                queue.schedule(next_t, lambda: arrive(stream, next_t))

        for stream in streams:
            queue.schedule(0.0, lambda s=stream: arrive(s, 0.0))
        queue.run()
        return ServingResult(reports=reports)
