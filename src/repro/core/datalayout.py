"""Data layout of filters and ifmap vectors inside one node's CMem (Fig. 6).

Every filter pixel (one ``r, s`` position, one 256-channel sub-vector) is a
transposed vector occupying ``N`` rows of one compute slice.  Each slice
reserves its first ``N`` rows for the broadcast ifmap vector; the remaining
``Q = 64/N - 1`` row groups hold filter vectors.  Filter vectors of one
filter may scatter across slices because the R*S partial sums are combined
in the pipeline, not in-situ (Sec. 4.1).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Tuple

import numpy as np

from repro.errors import CapacityError
from repro.mapping.capacity import CapacityModel
from repro.nn.workloads import ConvLayerSpec


@dataclass(frozen=True)
class LayoutEntry:
    """Where one filter pixel's sub-vector lives."""

    filter_index: int  # local index on this node
    fr: int            # kernel row
    fs: int            # kernel column
    sub: int           # 256-channel sub-vector index (C > 256)
    slice_index: int   # compute slice (1..7)
    row: int           # first of the N rows


@dataclass
class NodeLayout:
    """Complete CMem placement for one computing core."""

    spec: ConvLayerSpec
    n_bits: int
    num_filters: int
    entries: List[LayoutEntry] = field(default_factory=list)
    ifmap_row: int = 0  # ifmap vectors sit at the top of every slice

    @property
    def slices_used(self) -> List[int]:
        return sorted({e.slice_index for e in self.entries})

    @property
    def csr_mask(self) -> int:
        """CSR lane mask covering the layer's channel count."""
        lanes = min(8, max(1, math.ceil(min(self.spec.c, 256) / 32)))
        return (1 << lanes) - 1

    def entries_in_slice(self, slice_index: int) -> List[LayoutEntry]:
        return [e for e in self.entries if e.slice_index == slice_index]

    def entry_for(self, filter_index: int, fr: int, fs: int, sub: int = 0) -> LayoutEntry:
        for e in self.entries:
            if (e.filter_index, e.fr, e.fs, e.sub) == (filter_index, fr, fs, sub):
                return e
        raise CapacityError(
            f"no layout entry for filter {filter_index} pixel ({fr},{fs},{sub})"
        )


def plan_node_layout(
    spec: ConvLayerSpec,
    num_filters: int,
    capacity: CapacityModel = CapacityModel(),
) -> NodeLayout:
    """Assign every filter pixel of ``num_filters`` filters to a CMem slot.

    This is the *bit-true* layout (no lane packing): each sub-vector gets a
    private row group, so functional simulation can drive it directly.
    """
    n = spec.n_bits
    q = capacity.vector_slots_per_slice(n)
    sub_vectors = max(1, math.ceil(spec.c / capacity.cols))
    total_slots = num_filters * spec.r * spec.s * sub_vectors
    available = capacity.compute_slices * q
    if total_slots > available:
        raise CapacityError(
            f"{spec.name}: {num_filters} filters need {total_slots} vector "
            f"slots but a node has {available}"
        )
    layout = NodeLayout(spec=spec, n_bits=n, num_filters=num_filters)
    slot = 0
    for f in range(num_filters):
        for fr in range(spec.r):
            for fs in range(spec.s):
                for sub in range(sub_vectors):
                    slice_index = 1 + slot // q
                    slot_in_slice = slot % q
                    layout.entries.append(
                        LayoutEntry(
                            filter_index=f,
                            fr=fr,
                            fs=fs,
                            sub=sub,
                            slice_index=slice_index,
                            row=n * (1 + slot_in_slice),
                        )
                    )
                    slot += 1
    return layout


def load_filters_into_cmem(
    cmem,
    layout: NodeLayout,
    weights: np.ndarray,
) -> None:
    """Stage quantized filter weights into a CMem per the layout.

    ``weights`` has shape (num_filters, C, R, S) in signed integers.  In
    hardware the (pre-transposed) weights stream in from DRAM through
    LoadRow.RC; here they are placed directly, charging vertical-write
    energy, which is the staging path's dominant cost.
    """
    cols = cmem.config.cols
    for entry in layout.entries:
        channels = weights[entry.filter_index, :, entry.fr, entry.fs]
        lo = entry.sub * cols
        hi = min(channels.shape[0], lo + cols)
        if lo >= channels.shape[0]:
            raise CapacityError(
                f"sub-vector {entry.sub} exceeds {channels.shape[0]} channels"
            )
        cmem.store_vector_transposed(
            entry.slice_index, entry.row, channels[lo:hi], layout.n_bits, signed=True
        )


def split_filters_across_nodes(m: int, num_nodes: int) -> List[Tuple[int, int]]:
    """Partition ``m`` filters over ``num_nodes`` as (start, count) ranges.

    Earlier nodes take the remainder, matching the paper's chain order
    (the first computing cores sit next to the DC).
    """
    base, extra = divmod(m, num_nodes)
    ranges: List[Tuple[int, int]] = []
    start = 0
    for i in range(num_nodes):
        count = base + (1 if i < extra else 0)
        ranges.append((start, count))
        start += count
    return ranges
