"""A single MAICC node driving a CONV workload end-to-end (bit-true).

Used for the node-level evaluation (Tables 4 and 5): stage quantized
filters into the CMem, generate the Algorithm-1 kernel, stream ifmap
vectors from a virtual data-collection core (the remote handler), run the
cycle-level pipeline, and read back the int32 accumulators for comparison
with the NumPy reference.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.core.conv_kernel import (
    ConvKernelGenerator,
    KernelPlan,
    RequantParams,
    _IFMAP_ROW_STRIDE,
)
from repro.core.datalayout import NodeLayout, load_filters_into_cmem, plan_node_layout
from repro.core.scheduler import static_schedule
from repro.errors import ConfigurationError
from repro.nn.layers import _im2col
from repro.nn.workloads import ConvLayerSpec
from repro.riscv.core import Core, CoreConfig
from repro.riscv.isa import Instruction
from repro.riscv.pipeline import PipelineConfig, PipelineStats
from repro.riscv.replay import ReplayCache
from repro.telemetry import TelemetrySink, current as _current_telemetry
from repro.utils.bitops import to_twos_complement


def table4_workload() -> ConvLayerSpec:
    """The paper's single-node workload: 5 filters of 3x3x256 on 9x9x256."""
    return ConvLayerSpec(
        index=0, name="table4", h=9, w=9, c=256, m=5, r=3, s=3,
        stride=1, padding=0,
    )


def reference_accumulators(
    spec: ConvLayerSpec,
    weights: np.ndarray,
    bias: np.ndarray,
    ifmap: np.ndarray,
) -> np.ndarray:
    """Int32 conv accumulators: the oracle for the node simulation."""
    m, c = weights.shape[0], weights.shape[1]
    cols = _im2col(ifmap.astype(np.int64), spec.r, spec.s, spec.stride, spec.padding)
    acc = weights.reshape(m, c * spec.r * spec.s).astype(np.int64) @ cols
    acc += np.asarray(bias, dtype=np.int64)[:, None]
    oh, ow = spec.ofmap_hw
    return acc.reshape(m, oh, ow)


@dataclass
class NodeRunResult:
    """Outputs of one node-level run."""

    stats: PipelineStats
    psums: np.ndarray
    outputs: np.ndarray
    forwarded_rows: int
    cmem_busy_cycles: int
    cmem_energy_pj: float


class _VirtualDC:
    """Remote handler acting as data-collection core and downstream sink.

    Serves transposed ifmap rows on LoadRow.RC and swallows (counting)
    forwarded rows on StoreRow.RC.
    """

    def __init__(self, spec: ConvLayerSpec, ifmap: np.ndarray, n_bits: int) -> None:
        c, h, w = ifmap.shape
        if (h, w) != (spec.h, spec.w) or c != spec.c:
            raise ConfigurationError(
                f"ifmap shape {ifmap.shape} does not match spec "
                f"({spec.c}, {spec.h}, {spec.w})"
            )
        self.n_bits = n_bits
        self.store_count = 0
        encoded = to_twos_complement(
            ifmap.reshape(c, h * w).T, n_bits
        )  # (pixels, channels)
        width = 256
        self._rows: List[List[int]] = []
        for p in range(h * w):
            packed_rows = []
            for row in range(n_bits):
                packed = 0
                for ch in range(min(c, width)):
                    packed |= int((encoded[p, ch] >> row) & 1) << ch
                packed_rows.append(packed)
            self._rows.append(packed_rows)

    def __call__(self, is_store: bool, addr: int, size: int, value: int) -> int:
        if is_store:
            self.store_count += 1
            return 0
        offset = addr & 0x3FFF
        pixel, row = divmod(offset, _IFMAP_ROW_STRIDE)
        if pixel >= len(self._rows) or row >= self.n_bits:
            raise ConfigurationError(
                f"virtual DC has no ifmap row at pixel {pixel}, row {row}"
            )
        return self._rows[pixel][row]


class MAICCNode:
    """One computing core + CMem, wired to a virtual DC."""

    def __init__(
        self,
        spec: ConvLayerSpec,
        weights: np.ndarray,
        bias: Optional[np.ndarray] = None,
        *,
        pipeline: Optional[PipelineConfig] = None,
        requant: Optional[RequantParams] = None,
        include_forward: bool = False,
        fast_path: bool = True,
        replay: bool = True,
        telemetry: Optional[TelemetrySink] = None,
        node_id: int = 0,
    ) -> None:
        self.spec = spec
        self.weights = np.asarray(weights, dtype=np.int64)
        if self.weights.shape != (spec.m, spec.c, spec.r, spec.s):
            raise ConfigurationError(
                f"weights shape {self.weights.shape} != "
                f"({spec.m}, {spec.c}, {spec.r}, {spec.s})"
            )
        self.bias = (
            np.zeros(spec.m, dtype=np.int64)
            if bias is None
            else np.asarray(bias, dtype=np.int64)
        )
        self.pipeline_config = pipeline or PipelineConfig()
        self.fast_path = fast_path
        self.telemetry = telemetry if telemetry is not None else _current_telemetry()
        self.node_id = node_id
        self.requant = requant or RequantParams(mult=1, shift=8)
        self.include_forward = include_forward
        self.layout: NodeLayout = plan_node_layout(spec, spec.m)
        self._plan: Optional[KernelPlan] = None
        self._program: Optional[List[Instruction]] = None
        self._program_static: Optional[List[Instruction]] = None
        #: Memoized pipeline timing for repeated runs of the (cached)
        #: kernel: eligible only when the static predictor proves the
        #: timing data-independent and the first measured run confirms
        #: it (see :mod:`repro.riscv.replay`).  ``replay=False`` forces
        #: full interpretation on every run.
        self.replay_cache: Optional[ReplayCache] = (
            ReplayCache() if replay else None
        )

    # -- program construction -------------------------------------------------

    def build_program(self, *, static: bool = False) -> List[Instruction]:
        """Generate (and cache) the kernel, optionally statically scheduled."""
        if self._program is None:
            generator = ConvKernelGenerator(
                self.layout,
                bias=[int(b) for b in self.bias],
                requant=self.requant,
                include_recv=True,
                include_forward=self.include_forward,
                forward_base=0x4000_4000 if self.include_forward else None,
            )
            self._plan = generator.generate()
            self._program = generator.instructions(self._plan)
        if static:
            if self._program_static is None:
                self._program_static = static_schedule(self._program)
            return self._program_static
        return self._program

    @property
    def plan(self) -> KernelPlan:
        if self._plan is None:
            self.build_program()
        assert self._plan is not None
        return self._plan

    # -- execution ---------------------------------------------------------------

    def run(
        self,
        ifmap: np.ndarray,
        *,
        static: bool = False,
        pipeline: Optional[PipelineConfig] = None,
    ) -> NodeRunResult:
        """Run one full layer on this node; returns stats + results."""
        program = self.build_program(static=static)
        dc = _VirtualDC(self.spec, np.asarray(ifmap, dtype=np.int64), self.spec.n_bits)
        core = Core(
            CoreConfig(
                pipeline=pipeline or self.pipeline_config,
                cmem_fast_path=self.fast_path,
            ),
            remote_handler=dc,
            node_id=self.node_id,
            telemetry=self.telemetry,
        )
        load_filters_into_cmem(core.cmem, self.layout, self.weights)
        for s in self.layout.slices_used:
            core.cmem.slice(s).csr_mask = self.layout.csr_mask
        # A custom pipeline config changes the timing the cache verified
        # against, so only the node's own config hits the replay cache
        # (the cache also keys on config, but skip the lookup entirely).
        cache = self.replay_cache if pipeline is None else None
        stats = core.run(program, replay_cache=cache)
        plan = self.plan
        oh, ow = self.spec.ofmap_hw
        psums = np.zeros((self.spec.m, oh, ow), dtype=np.int64)
        outputs = np.zeros((self.spec.m, oh, ow), dtype=np.int64)
        for f in range(self.spec.m):
            for oy in range(oh):
                for ox in range(ow):
                    word = core.memory.load(plan.psum_address(f, oy, ox), 4)
                    if word & 0x80000000:
                        word -= 1 << 32
                    psums[f, oy, ox] = word
                    outputs[f, oy, ox] = core.memory.load(
                        plan.out_address(f, oy, ox), 1
                    )
        if self.telemetry.enabled:
            # The pipeline already published its own stats; add the CMem
            # tally and the node-level outcome counters.
            assert self.telemetry.registry is not None
            core.cmem.publish_stats(f"core/{self.node_id}/cmem")
            self.telemetry.registry.counter(
                f"core/{self.node_id}/forwarded_rows"
            ).add(dc.store_count)
        return NodeRunResult(
            stats=stats,
            psums=psums,
            outputs=outputs,
            forwarded_rows=dc.store_count,
            cmem_busy_cycles=core.cmem.stats.busy_cycles,
            cmem_energy_pj=core.cmem.energy.total_pj,
        )

    def reference(self, ifmap: np.ndarray) -> np.ndarray:
        return reference_accumulators(self.spec, self.weights, self.bias, ifmap)
