"""Algorithm-1 code generator: one computing core's CONV kernel.

Emits simulator assembly for one node of a node group, fully unrolled over
ifmap pixels (the paper schedules CMem instructions by hand; unrolling is
that, mechanized).  Per incoming ifmap vector the kernel:

1. *recv* — pulls the transposed vector's ``N`` rows into slice 0
   (``LoadRow.RC``; in the full chip the previous core pushes instead —
   same row count either way);
2. *compute* — broadcasts the vector into the used compute slices
   (``Move.C``) and issues ``MAC.C`` for every valid (filter pixel, output
   pixel) pair **round-robin across slices**, so all slices run
   concurrently — this is what makes the paper's ``7N + Q N^2`` iteration
   cost achievable;
3. *accumulate* — folds each MAC result into the int32 psum array in data
   memory (bias-initialized, matching the quantized reference);
4. *aux* — requantizes, applies branchless ReLU and stores every ofmap
   value completed by this vector;
5. *send* (optional) — forwards the vector rows downstream
   (``StoreRow.RC``).

The emitted order is the *dynamic-scheduling baseline*;
:func:`repro.core.scheduler.static_schedule` reorders it at "compile time"
to hide CMem latency (Table 5's static rows).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.errors import CapacityError, ConfigurationError
from repro.core.datalayout import LayoutEntry, NodeLayout
from repro.riscv.assembler import assemble
from repro.riscv.isa import Instruction
from repro.riscv.memory import LOCAL_DMEM_SIZE, encode_remote_address

# Registers the generator may rotate MAC results through (a0-a7, s2-s11).
_MAC_REG_POOL = [f"a{i}" for i in range(8)] + [f"s{i}" for i in range(2, 12)]
_ADDR_REG = "t5"
_ACC_REG = "t3"
_TMP_REG = "t4"
_MULT_REG = "t6"

# Virtual ifmap source: rows of pixel ``p`` live at remote offset p*16 + row.
_IFMAP_ROW_STRIDE = 16


def ifmap_row_address(pixel_index: int, row: int) -> int:
    """Remote address the kernel reads ifmap vector rows from."""
    return encode_remote_address(0, 0, pixel_index * _IFMAP_ROW_STRIDE + row)


@dataclass(frozen=True)
class RequantParams:
    """Fixed-point requantization q = (acc * mult + round) >> shift."""

    mult: int
    shift: int = 8

    @classmethod
    def from_ratio(cls, ratio: float, shift: int = 8) -> "RequantParams":
        return cls(mult=max(0, int(round(ratio * (1 << shift)))), shift=shift)


@dataclass
class KernelPlan:
    """Everything the generator derived, for tests and the node driver."""

    layout: NodeLayout
    psum_base: int = 0
    out_base: int = 0
    psum_bytes: int = 0
    asm: str = ""
    pixels: int = 0

    def psum_address(self, f: int, oy: int, ox: int) -> int:
        oh, ow = self.layout.spec.ofmap_hw
        return self.psum_base + ((f * oh + oy) * ow + ox) * 4

    def out_address(self, f: int, oy: int, ox: int) -> int:
        oh, ow = self.layout.spec.ofmap_hw
        return self.out_base + (f * oh + oy) * ow + ox


def _round_robin(layout: NodeLayout) -> List[LayoutEntry]:
    """Interleave entries across slices so consecutive MACs hit free slices."""
    per_slice: Dict[int, List[LayoutEntry]] = {}
    for entry in layout.entries:
        per_slice.setdefault(entry.slice_index, []).append(entry)
    order: List[LayoutEntry] = []
    round_index = 0
    while True:
        emitted = False
        for slice_index in sorted(per_slice):
            entries = per_slice[slice_index]
            if round_index < len(entries):
                order.append(entries[round_index])
                emitted = True
        if not emitted:
            return order
        round_index += 1


def _output_target(
    spec, y: int, x: int, entry: LayoutEntry
) -> Optional[Tuple[int, int]]:
    """Ofmap (oy, ox) the MAC of ifmap pixel (y, x) with this entry feeds."""
    oy_num = y + spec.padding - entry.fr
    ox_num = x + spec.padding - entry.fs
    if oy_num % spec.stride or ox_num % spec.stride:
        return None
    oy, ox = oy_num // spec.stride, ox_num // spec.stride
    oh, ow = spec.ofmap_hw
    if not (0 <= oy < oh and 0 <= ox < ow):
        return None
    return oy, ox


def _completion_pixel(spec, entryless_oy: int, ox: int) -> Tuple[int, int]:
    """Last ifmap pixel (raster order) contributing to ofmap (oy, ox)."""
    y = min(spec.h - 1, entryless_oy * spec.stride - spec.padding + spec.r - 1)
    x = min(spec.w - 1, ox * spec.stride - spec.padding + spec.s - 1)
    return y, x


class ConvKernelGenerator:
    """Generates the unrolled Algorithm-1 kernel for one node."""

    def __init__(
        self,
        layout: NodeLayout,
        *,
        bias: Optional[List[int]] = None,
        requant: Optional[RequantParams] = None,
        include_recv: bool = True,
        include_forward: bool = False,
        include_aux: bool = True,
        forward_base: Optional[int] = None,
    ) -> None:
        self.layout = layout
        self.spec = layout.spec
        self.bias = bias or [0] * layout.num_filters
        if len(self.bias) != layout.num_filters:
            raise ConfigurationError("one bias per held filter required")
        self.requant = requant or RequantParams(mult=1, shift=0)
        self.include_recv = include_recv
        self.include_forward = include_forward
        self.include_aux = include_aux
        self.forward_base = forward_base
        self._lines: List[Tuple[str, str]] = []  # (asm line, category)

    # -- emission helpers ------------------------------------------------------

    def _emit(self, line: str, category: str) -> None:
        self._lines.append((line, category))

    def _li(self, reg: str, value: int, category: str) -> None:
        self._emit(f"li {reg}, {value}", category)

    # -- plan ------------------------------------------------------------------

    def generate(self) -> KernelPlan:
        spec = self.spec
        oh, ow = spec.ofmap_hw
        plan = KernelPlan(layout=self.layout)
        plan.psum_bytes = self.layout.num_filters * oh * ow * 4
        plan.out_base = plan.psum_base + plan.psum_bytes
        out_bytes = self.layout.num_filters * oh * ow
        if plan.out_base + out_bytes > LOCAL_DMEM_SIZE:
            raise CapacityError(
                f"{spec.name}: psum+ofmap of {plan.psum_bytes + out_bytes} B "
                f"exceed the {LOCAL_DMEM_SIZE} B data memory"
            )
        plan.pixels = spec.h * spec.w

        self._emit_init(plan)
        mac_order = _round_robin(self.layout)
        completion: Dict[Tuple[int, int], List[Tuple[int, int, int]]] = {}
        if self.include_aux:
            for f in range(self.layout.num_filters):
                for oy in range(oh):
                    for ox in range(ow):
                        key = _completion_pixel(spec, oy, ox)
                        completion.setdefault(key, []).append((f, oy, ox))

        pixel_index = 0
        for y in range(spec.h):
            for x in range(spec.w):
                self._emit_iteration(plan, y, x, pixel_index, mac_order, completion)
                pixel_index += 1
        self._emit("halt", "other")
        plan.asm = "\n".join(line for line, _ in self._lines)
        return plan

    def _emit_init(self, plan: KernelPlan) -> None:
        """Bias-initialize the psum array (category: init)."""
        oh, ow = self.spec.ofmap_hw
        for f in range(self.layout.num_filters):
            self._li(_ACC_REG, int(self.bias[f]), "init")
            for oy in range(oh):
                for ox in range(ow):
                    self._emit(
                        f"sw {_ACC_REG}, {plan.psum_address(f, oy, ox)}(zero)",
                        "init",
                    )
        if self.include_aux:
            self._li(_MULT_REG, self.requant.mult, "init")

    def _emit_iteration(
        self,
        plan: KernelPlan,
        y: int,
        x: int,
        pixel_index: int,
        mac_order: List[LayoutEntry],
        completion: Dict[Tuple[int, int], List[Tuple[int, int, int]]],
    ) -> None:
        n = self.layout.n_bits
        if self.include_recv:
            for row in range(n):
                self._li(_ADDR_REG, ifmap_row_address(pixel_index, row), "recv_ifmap")
                self._emit(f"loadrow.rc 0, {row}, {_ADDR_REG}", "recv_ifmap")

        # Broadcast into every used slice.
        for s in self.layout.slices_used:
            self._emit(f"move.c 0, 0, {s}, 0, {n}", "compute")

        # MACs round-robin across slices; remember (entry -> result reg).
        # Results accumulate into data memory in batches: whenever the
        # register pool fills, flush the pending accumulates so no MAC
        # result is clobbered before it is consumed.  The flush naturally
        # overlaps the next batch's CMem work under the scoreboard.
        pending: List[Tuple[LayoutEntry, str, Tuple[int, int]]] = []
        reg_cursor = 0

        def flush() -> None:
            for entry, reg, (oy, ox) in pending:
                addr = plan.psum_address(entry.filter_index, oy, ox)
                self._emit(f"lw {_ACC_REG}, {addr}(zero)", "accumulate")
                self._emit(f"add {_ACC_REG}, {_ACC_REG}, {reg}", "accumulate")
                self._emit(f"sw {_ACC_REG}, {addr}(zero)", "accumulate")
            pending.clear()

        for entry in mac_order:
            target = _output_target(self.spec, y, x, entry)
            if target is None:
                continue
            reg = _MAC_REG_POOL[reg_cursor % len(_MAC_REG_POOL)]
            reg_cursor += 1
            self._emit(
                f"mac.c {reg}, {entry.slice_index}, 0, {entry.row}, {n}", "compute"
            )
            pending.append((entry, reg, target))
            if len(pending) == len(_MAC_REG_POOL):
                flush()
        flush()

        # Forward the vector downstream (inter-node streaming).
        if self.include_forward and self.forward_base is not None:
            for row in range(n):
                self._li(_ADDR_REG, self.forward_base + pixel_index * _IFMAP_ROW_STRIDE + row, "send_ifmap")
                self._emit(f"storerow.rc 0, {row}, {_ADDR_REG}", "send_ifmap")

        # Auxiliary functions for every ofmap value completed this pixel.
        if self.include_aux:
            for f, oy, ox in completion.get((y, x), ()):
                self._emit_aux(plan, f, oy, ox)

    def _emit_aux(self, plan: KernelPlan, f: int, oy: int, ox: int) -> None:
        """Requantize + branchless ReLU + byte store (category: aux)."""
        psum = plan.psum_address(f, oy, ox)
        out = plan.out_address(f, oy, ox)
        rnd = 1 << (self.requant.shift - 1) if self.requant.shift else 0
        self._emit(f"lw {_ACC_REG}, {psum}(zero)", "aux")
        self._emit(f"mul {_ACC_REG}, {_ACC_REG}, {_MULT_REG}", "aux")
        if rnd:
            self._emit(f"addi {_ACC_REG}, {_ACC_REG}, {rnd}", "aux")
        if self.requant.shift:
            self._emit(f"srai {_ACC_REG}, {_ACC_REG}, {self.requant.shift}", "aux")
        # Branchless ReLU: mask = acc >> 31; acc &= ~mask.
        self._emit(f"srai {_TMP_REG}, {_ACC_REG}, 31", "aux")
        self._emit(f"xori {_TMP_REG}, {_TMP_REG}, -1", "aux")
        self._emit(f"and {_ACC_REG}, {_ACC_REG}, {_TMP_REG}", "aux")
        self._emit(f"sb {_ACC_REG}, {out}(zero)", "aux")

    # -- assembled output ----------------------------------------------------------

    def instructions(self, plan: Optional[KernelPlan] = None) -> List[Instruction]:
        """Assemble with per-instruction category tags."""
        if plan is None:
            plan = self.generate()
        program = assemble(plan.asm)
        if len(program) != len(self._lines):
            raise ConfigurationError("category tagging out of sync with assembly")
        for instr, (_, category) in zip(program, self._lines):
            instr.category = category
        return program
