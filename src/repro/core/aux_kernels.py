"""Auxiliary-function kernels for the scalar pipeline.

The paper's division of labour (Sec. 2.3/4.1): CMem does vector MACs,
the RISC-V core does everything else — requantization, activation
functions, pooling — because aux functions are "diverse and irregular"
and need programmability.  This module generates real assembly for the
common aux functions over int8 arrays in data memory, so their per-value
cycle costs are *measured* on the pipeline rather than assumed:

* ``relu`` — branchless clamp at zero;
* ``lut`` — arbitrary unary function via a 256-entry table (sigmoid,
  tanh, ... — the "irregular" case hardware accelerators struggle with);
* ``maxpool2x2`` — 2x2/2 max pooling over an HxW channel plane;
* ``requant`` — int32 accumulators to int8 via multiply + round + shift.

Each generator returns (assembly text, output address); drivers in the
tests stage inputs, run the Core, and compare against NumPy.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from repro.errors import ConfigurationError
from repro.riscv.core import Core
from repro.riscv.pipeline import PipelineStats


@dataclass
class AuxRunResult:
    """Output bytes plus the measured cost."""

    outputs: np.ndarray
    cycles: int
    cycles_per_value: float
    stats: PipelineStats


def _check_dmem(*spans) -> None:
    for base, size in spans:
        if base < 0 or base + size > 4096:
            raise ConfigurationError(
                f"region [{base}, {base + size}) exceeds the 4 KB data memory"
            )


def relu_kernel(src: int, dst: int, count: int) -> str:
    """Branchless int8 ReLU over ``count`` bytes: x & ~(x >> 31)."""
    _check_dmem((src, count), (dst, count))
    return f"""
        li t0, {src}
        li t1, {dst}
        li t2, {count}
    loop:
        lb   t3, 0(t0)
        srai t4, t3, 31
        xori t4, t4, -1
        and  t3, t3, t4
        sb   t3, 0(t1)
        addi t0, t0, 1
        addi t1, t1, 1
        addi t2, t2, -1
        bne  t2, zero, loop
        halt
    """


def lut_kernel(src: int, dst: int, table: int, count: int) -> str:
    """Unary int8 function via a 256-entry byte table at ``table``.

    The value (as an unsigned byte) indexes the table — three instructions
    per element plus addressing: exactly why "irregular" activations are a
    software problem, not a PE-array one.
    """
    _check_dmem((src, count), (dst, count), (table, 256))
    return f"""
        li t0, {src}
        li t1, {dst}
        li t2, {count}
        li t5, {table}
    loop:
        lbu  t3, 0(t0)
        add  t4, t5, t3
        lbu  t3, 0(t4)
        sb   t3, 0(t1)
        addi t0, t0, 1
        addi t1, t1, 1
        addi t2, t2, -1
        bne  t2, zero, loop
        halt
    """


def maxpool2x2_kernel(src: int, dst: int, h: int, w: int) -> str:
    """2x2 stride-2 max pooling of one signed-byte HxW plane."""
    if h % 2 or w % 2:
        raise ConfigurationError("maxpool2x2 needs even dimensions")
    _check_dmem((src, h * w), (dst, (h // 2) * (w // 2)))
    # max(a, b) branchless: a + ((b - a) & ~((b - a) >> 31))
    return f"""
        li s0, {src}
        li s1, {dst}
        li s2, 0          # oy
    rows:
        li s3, 0          # ox
    cols:
        slli t0, s2, 1
        li   t1, {w}
        mul  t0, t0, t1
        slli t2, s3, 1
        add  t0, t0, t2
        addi t3, s0, 0
        add  t3, t3, t0   # &src[2*oy][2*ox]
        lb   t4, 0(t3)
        lb   t5, 1(t3)
        sub  t6, t5, t4
        srai a0, t6, 31
        xori a0, a0, -1
        and  t6, t6, a0
        add  t4, t4, t6   # max of row pair 1
        lb   t5, {w}(t3)
        sub  t6, t5, t4
        srai a0, t6, 31
        xori a0, a0, -1
        and  t6, t6, a0
        add  t4, t4, t6
        lb   t5, {w + 1}(t3)
        sub  t6, t5, t4
        srai a0, t6, 31
        xori a0, a0, -1
        and  t6, t6, a0
        add  t4, t4, t6   # max of the 2x2 window
        li   t1, {w // 2}
        mul  t0, s2, t1
        add  t0, t0, s3
        add  t0, t0, s1
        sb   t4, 0(t0)
        addi s3, s3, 1
        li   t1, {w // 2}
        blt  s3, t1, cols
        addi s2, s2, 1
        li   t1, {h // 2}
        blt  s2, t1, rows
        halt
    """


def requant_kernel(src: int, dst: int, count: int, mult: int, shift: int) -> str:
    """Int32 accumulators -> int8: (acc * mult + round) >> shift, clamped."""
    _check_dmem((src, 4 * count), (dst, count))
    rnd = 1 << (shift - 1) if shift else 0
    return f"""
        li t0, {src}
        li t1, {dst}
        li t2, {count}
        li t5, {mult}
    loop:
        lw   t3, 0(t0)
        mul  t3, t3, t5
        addi t3, t3, {rnd}
        srai t3, t3, {shift}
        # clamp to [-128, 127]
        li   t4, 127
        blt  t3, t4, no_hi
        li   t3, 127
    no_hi:
        li   t4, -128
        bge  t3, t4, no_lo
        li   t3, -128
    no_lo:
        sb   t3, 0(t1)
        addi t0, t0, 4
        addi t1, t1, 1
        addi t2, t2, -1
        bne  t2, zero, loop
        halt
    """


# -- drivers -------------------------------------------------------------------


def run_aux(
    program: str,
    *,
    stage: Sequence,
    read_base: int,
    read_count: int,
    signed: bool = True,
    count_for_rate: int = None,
) -> AuxRunResult:
    """Stage bytes/words, run the kernel, read results and cycle costs.

    ``stage`` is a list of (base, values, size) triples written into data
    memory before the run.
    """
    core = Core()
    for base, values, size in stage:
        for i, value in enumerate(values):
            core.memory.store(base + i * size, size, int(value) & ((1 << (8 * size)) - 1))
    stats = core.run(program)
    out = np.zeros(read_count, dtype=np.int64)
    for i in range(read_count):
        byte = core.memory.load(read_base + i, 1)
        out[i] = byte - 256 if (signed and byte & 0x80) else byte
    denom = count_for_rate if count_for_rate else read_count
    return AuxRunResult(
        outputs=out,
        cycles=stats.cycles,
        cycles_per_value=stats.cycles / denom,
        stats=stats,
    )


def sigmoid_table(in_scale: float, out_scale: float) -> List[int]:
    """256-entry int8 sigmoid LUT: index = unsigned byte of the input."""
    table = []
    for byte in range(256):
        value = byte - 256 if byte & 0x80 else byte
        real = 1.0 / (1.0 + math.exp(-value * in_scale))
        q = int(round(real / out_scale))
        table.append(max(-128, min(127, q)) & 0xFF)
    return table
