"""Chip-level simulation front door: map a network, simulate it on a
named backend, account cycles and energy.  Drives Tables 6 and 7 and
Figures 9 and 10.

The simulation itself lives in :mod:`repro.sim` — a registry of
fidelity-tiered backends (``analytic``, ``streaming``, ``event``,
``cycle``) behind one entry point.  :class:`ChipSimulator` is the
thin configuration facade kept for its historical constructor shape;
``NetworkRunResult`` and ``SegmentRun`` are aliases of the canonical
:class:`repro.sim.RunReport` / :class:`repro.sim.SegmentReport` schema.
The default path (``backend="streaming"``) is byte-identical to the
pre-backend simulator (pinned by ``tests/sim/test_differential_pins.py``).
"""

from __future__ import annotations

from typing import List, Optional

from repro.core.chip import ChipConfig
from repro.core.perfmodel import LayerTiming, PerformanceModel, TimingParams
from repro.energy.power import EnergyModel
from repro.errors import MappingError
from repro.mapping.capacity import CapacityModel
from repro.mapping.segmentation import Segment, SegmentPlan
from repro.nn.workloads import NetworkSpec
from repro.sim.accounting import plan_network, segment_timings
from repro.sim.backends import DEFAULT_BACKEND, get_backend, simulate
from repro.sim.config import SimConfig
from repro.sim.report import RunReport, SegmentReport

# Canonical result schema, re-exported under the historical names.
NetworkRunResult = RunReport
SegmentRun = SegmentReport


class ChipSimulator:
    """Maps networks onto the chip and simulates their execution.

    ``backend`` selects the fidelity tier by name (see
    ``repro.sim.available_backends()`` / ``docs/SIMULATORS.md``); the
    default is the tandem-queue ``streaming`` tier all historical
    results were produced on.
    """

    def __init__(
        self,
        chip: ChipConfig = ChipConfig(),
        params: TimingParams = TimingParams(),
        capacity: Optional[CapacityModel] = None,
        *,
        array_size: int = 208,
        backend: str = DEFAULT_BACKEND,
    ) -> None:
        self.chip = chip
        self.params = params
        self.capacity = capacity or CapacityModel()
        self.array_size = array_size
        self.backend = backend
        get_backend(backend)  # fail fast on unknown names
        self.model = PerformanceModel(params, self.capacity)
        self.energy_model = EnergyModel(chip.constants)

    def _config(self, strategy: str = "heuristic", batch: int = 1) -> SimConfig:
        return SimConfig(
            chip=self.chip,
            params=self.params,
            capacity=self.capacity,
            array_size=self.array_size,
            strategy=strategy,
            batch=batch,
        )

    # -- mapping ------------------------------------------------------------------

    def plan(self, network: NetworkSpec, strategy: str) -> SegmentPlan:
        return plan_network(network, strategy, self._config(strategy))

    def _segment_timings(self, segment: Segment) -> List[LayerTiming]:
        return segment_timings(self.model, segment)

    # -- simulation ---------------------------------------------------------------

    def run(
        self,
        network: NetworkSpec,
        strategy: str = "heuristic",
        *,
        batch: int = 1,
        backend: Optional[str] = None,
    ) -> NetworkRunResult:
        """Simulate ``batch`` back-to-back inferences.

        Samples stream through each segment at its steady-state rate, so
        pipeline fill and the filter-load phase amortize across the batch
        (latency reported is for the whole batch; throughput per sample).
        ``backend`` overrides the simulator's configured tier for this
        run only.
        """
        if batch < 1:
            raise MappingError(f"batch must be >= 1, got {batch}")
        return simulate(
            network,
            backend=backend or self.backend,
            config=self._config(strategy, batch),
        )
