"""Chip-level simulation: map a network, stream every segment, account
cycles and energy.  Drives Tables 6 and 7 and Figures 9 and 10.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional

from repro.core.chip import ChipConfig
from repro.core.perfmodel import LayerTiming, PerformanceModel, TimingParams
from repro.core.streaming import SegmentResult, SegmentSimulator
from repro.energy.constants import ChipConstants
from repro.energy.power import EnergyBreakdown, EnergyModel, OpCounts
from repro.errors import MappingError
from repro.mapping.capacity import CapacityModel
from repro.mapping.tiling import tile_network
from repro.mapping.segmentation import (
    MappingStrategy,
    Segment,
    SegmentPlan,
    STRATEGIES,
)
from repro.nn.workloads import NetworkSpec


@dataclass
class SegmentRun:
    """One mapped segment's simulated execution."""

    segment: Segment
    timings: List[LayerTiming]
    result: SegmentResult
    filter_load_cycles: float
    staging_cycles: float

    @property
    def cycles(self) -> float:
        return self.result.total_cycles + self.filter_load_cycles + self.staging_cycles


@dataclass
class NetworkRunResult:
    """Everything one network run produced (one or more samples)."""

    network: NetworkSpec
    strategy: str
    plan: SegmentPlan
    runs: List[SegmentRun]
    total_cycles: float
    ops: OpCounts
    energy: EnergyBreakdown
    constants: ChipConstants
    batch: int = 1

    @property
    def latency_ms(self) -> float:
        """Whole-run latency (all ``batch`` samples)."""
        return self.total_cycles * self.constants.cycle_seconds * 1e3

    @property
    def throughput_samples_s(self) -> float:
        return self.batch * 1000.0 / self.latency_ms

    @property
    def average_power_w(self) -> float:
        seconds = self.total_cycles * self.constants.cycle_seconds
        return self.energy.total / seconds

    @property
    def throughput_per_watt(self) -> float:
        return self.throughput_samples_s / self.average_power_w

    def gops_per_watt(self, *, include_dram: bool = True) -> float:
        """Computational efficiency in GOPS/W (1 MAC = 2 ops).

        The paper's Neural-Cache comparison excludes DRAM power
        (Sec. 6.3); pass ``include_dram=False`` to match.
        """
        seconds = self.total_cycles * self.constants.cycle_seconds
        ops = 2.0 * self.batch * self.network.total_macs / seconds
        energy = self.energy.total if include_dram else self.energy.total - self.energy.dram
        return ops / (energy / seconds) / 1e9

    def nodes_of(self, layer_index: int) -> int:
        return self.plan.nodes_of(layer_index)

    def segment_latency_ms(self, layer_index: int) -> float:
        for run in self.runs:
            if layer_index in run.segment.allocation.nodes:
                return run.cycles * self.constants.cycle_seconds * 1e3
        raise MappingError(f"layer {layer_index} not in any segment run")


class ChipSimulator:
    """Maps networks onto the chip and simulates their execution."""

    def __init__(
        self,
        chip: ChipConfig = ChipConfig(),
        params: TimingParams = TimingParams(),
        capacity: Optional[CapacityModel] = None,
        *,
        array_size: int = 208,
    ) -> None:
        self.chip = chip
        self.params = params
        self.capacity = capacity or CapacityModel()
        self.array_size = array_size
        self.model = PerformanceModel(params, self.capacity)
        self.energy_model = EnergyModel(chip.constants)

    # -- mapping ------------------------------------------------------------------

    def plan(self, network: NetworkSpec, strategy: str) -> SegmentPlan:
        try:
            strategy_cls = STRATEGIES[strategy]
        except KeyError:
            raise MappingError(
                f"unknown strategy {strategy!r}; choose from {sorted(STRATEGIES)}"
            ) from None
        # Layers too large for the whole array run in multiple passes.
        network = tile_network(network, self.capacity, self.array_size)
        mapper: MappingStrategy = strategy_cls(
            array_size=self.array_size, capacity=self.capacity
        )
        return mapper.plan(network, self.model.layer_time_fn())

    # -- simulation -------------------------------------------------------------------

    def _segment_timings(self, segment: Segment) -> List[LayerTiming]:
        timings = []
        for i, spec in enumerate(segment.layers):
            timings.append(
                self.model.layer_timing(
                    spec,
                    segment.allocation.nodes[spec.index],
                    from_dram=(i == 0),
                )
            )
        return timings

    def run(
        self,
        network: NetworkSpec,
        strategy: str = "heuristic",
        *,
        batch: int = 1,
    ) -> NetworkRunResult:
        """Simulate ``batch`` back-to-back inferences.

        Samples stream through each segment at its steady-state rate, so
        pipeline fill and the filter-load phase amortize across the batch
        (latency reported is for the whole batch; throughput per sample).
        """
        if batch < 1:
            raise MappingError(f"batch must be >= 1, got {batch}")
        network = tile_network(network, self.capacity, self.array_size)
        plan = self.plan(network, strategy)
        runs: List[SegmentRun] = []
        total = 0.0
        ops = OpCounts()
        for k, segment in enumerate(plan.segments):
            timings = self._segment_timings(segment)
            sim = SegmentSimulator(timings)
            result = sim.run()
            weight_bytes = sum(
                spec.weight_count * spec.n_bits / 8 for spec in segment.layers
            )
            load = (
                weight_bytes
                / self.params.filter_load_bw
                * (1.0 - self.params.filter_load_overlap)
            )
            staging = self._staging_cycles(plan, k) * batch
            run = SegmentRun(
                segment=segment,
                timings=timings,
                result=result,
                filter_load_cycles=load,
                staging_cycles=staging,
            )
            runs.append(run)
            # Extra samples ride the steady-state pipeline: the segment's
            # bottleneck station dictates the per-sample interval.
            steady = max(
                flow.iterations * flow.interval_work for flow in result.flows
            )
            total += run.cycles + (batch - 1) * steady
            self._count_ops(ops, segment, timings, result, weight_bytes,
                            batch=batch)
        seconds = total * self.chip.constants.cycle_seconds
        energy = self.energy_model.breakdown(ops, seconds)
        return NetworkRunResult(
            network=network,
            strategy=strategy,
            plan=plan,
            runs=runs,
            total_cycles=total,
            ops=ops,
            energy=energy,
            constants=self.chip.constants,
            batch=batch,
        )

    # -- helpers --------------------------------------------------------------------

    def _boundary_bytes(self, plan: SegmentPlan, k: int) -> int:
        """Fmap bytes staged through DRAM after segment ``k``."""
        last = plan.segments[k].layers[-1]
        oh, ow = last.ofmap_hw
        return last.m * oh * ow * last.n_bits // 8

    def _staging_cycles(self, plan: SegmentPlan, k: int) -> float:
        """Write-out + read-back of the boundary fmaps around segment k."""
        bw = self.params.filter_load_bw
        cycles = 0.0
        if k > 0:
            cycles += self._boundary_bytes(plan, k - 1) / bw  # read back in
        if k < len(plan.segments) - 1:
            cycles += self._boundary_bytes(plan, k) / bw  # write out
        return cycles

    def _count_ops(
        self,
        ops: OpCounts,
        segment: Segment,
        timings: List[LayerTiming],
        result: SegmentResult,
        weight_bytes: float,
        batch: int = 1,
    ) -> None:
        cap = self.capacity
        for lt in timings:
            spec = lt.spec
            nodes = lt.computing_nodes
            vpf = cap.macs_per_filter_per_pixel(spec)
            ops.macs += spec.ofmap_pixels * spec.m * vpf * batch
            sub = max(1, math.ceil(spec.c / cap.cols))
            iterations = lt.iterations
            # Broadcast moves happen on every node, every iteration.
            slices = self.model.slices_used(spec, nodes)
            ops.moves += iterations * slices * sub * nodes * batch
            # The DC writes one full row group per vector.
            ops.vertical_writes += iterations * cap.cols * sub * batch
            # Vector forwarding along the chain: N rows per hop.
            row_transfers = iterations * spec.n_bits * sub * nodes * batch
            ops.remote_rows += row_transfers
            ops.noc_flit_hops += row_transfers * 5  # 5-flit row packets, 1 hop
            # Ofmap values to the next DC: 2-flit scalar stores, ~2 hops.
            ofmap_values = spec.ofmap_pixels * spec.m * batch
            ops.noc_flit_hops += ofmap_values * 2 * 2
        # DRAM traffic: weights plus this segment's input and output fmaps.
        first, last = segment.layers[0], segment.layers[-1]
        in_bytes = first.c * first.ifmap_pixels * first.n_bits // 8
        oh, ow = last.ofmap_hw
        out_bytes = last.m * oh * ow * last.n_bits // 8
        dram_bytes = int(weight_bytes) + (in_bytes + out_bytes) * batch
        ops.dram_bytes += dram_bytes
        ops.llc_accesses += dram_bytes // 64
        ops.noc_flit_hops += (dram_bytes // 8) * 8  # LLC<->core traffic, ~8 hops
        active = segment.total_nodes
        ops.core_active_cycles += int(active * result.total_cycles)
