"""Functional weight staging: DRAM -> LLC -> CMem rows.

The filter-load phase (Sec. 6.2) streams pre-transposed weights from the
many-core DRAM into each node's CMem before a segment starts.  This
module implements that path *functionally*: quantized filters are written
into the DRAM model's backing store in transposed row format, then pulled
row-by-row into a CMem exactly as LoadRow.RC would, with DRAM/LLC timing
and traffic accounted.  Weights loaded this way must produce the same
MACs as directly staged ones.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.cmem.cmem import CMem
from repro.core.datalayout import NodeLayout
from repro.dram.controller import DRAMController
from repro.dram.llc import LLCache
from repro.errors import CapacityError
from repro.riscv.memory import DRAM_BASE
from repro.utils.bitops import int_to_bits

_ROW_BYTES = 32  # one 256-bit CMem row


@dataclass
class StagingResult:
    """Cost of one node's filter-load phase."""

    rows_loaded: int
    dram_bytes: int
    load_cycles: int


class WeightStager:
    """Places transposed filter rows in DRAM and loads them into CMems."""

    def __init__(
        self,
        dram: Optional[DRAMController] = None,
        llc: Optional[LLCache] = None,
        base_address: int = DRAM_BASE + 0x10_0000,
    ) -> None:
        self.dram = dram or DRAMController()
        self.llc = llc or LLCache(dram=self.dram)
        self.base_address = base_address
        self._cursor = base_address

    # -- producing the DRAM image -------------------------------------------------

    def write_filters(self, layout: NodeLayout, weights: np.ndarray) -> int:
        """Write one node's filters into DRAM, pre-transposed (Sec. 3.3:
        "the weights can be transposed in advance and loaded directly from
        DRAM").  Returns the image's base address."""
        base = self._cursor
        n = layout.n_bits
        for entry in layout.entries:
            channels = weights[entry.filter_index, :, entry.fr, entry.fs]
            lo = entry.sub * 256
            hi = min(channels.shape[0], lo + 256)
            vec = np.zeros(256, dtype=np.int64)
            vec[: hi - lo] = channels[lo:hi]
            bits = int_to_bits(vec, n, signed=True)
            for row in range(n):
                packed = np.packbits(bits[row], bitorder="little").tobytes()
                self.dram.write_bytes(self._cursor, packed)
                self._cursor += _ROW_BYTES
        return base

    # -- loading into a node -------------------------------------------------------

    def load_into(
        self, cmem: CMem, layout: NodeLayout, image_base: int
    ) -> StagingResult:
        """Pull the image's rows into the CMem per the layout."""
        n = layout.n_bits
        addr = image_base
        rows = 0
        cycles = 0
        for entry in layout.entries:
            for row in range(n):
                data = self.dram.read_bytes(addr, _ROW_BYTES)
                bits = np.unpackbits(
                    np.frombuffer(data, dtype=np.uint8), bitorder="little"
                )
                cmem.write_row(entry.slice_index, entry.row + row, bits)
                cycles += self.llc.access(addr, False, cycles)
                addr += _ROW_BYTES
                rows += 1
        return StagingResult(
            rows_loaded=rows,
            dram_bytes=rows * _ROW_BYTES,
            load_cycles=cycles,
        )


def stage_node(
    cmem: CMem,
    layout: NodeLayout,
    weights: np.ndarray,
    stager: Optional[WeightStager] = None,
) -> StagingResult:
    """Convenience: write one node's filters to DRAM and load them back."""
    if weights.shape[0] < layout.num_filters:
        raise CapacityError(
            f"layout expects {layout.num_filters} filters, got {weights.shape[0]}"
        )
    stager = stager or WeightStager()
    base = stager.write_filters(layout, weights)
    return stager.load_into(cmem, layout, base)
