"""Static instruction scheduling (Sec. 3.3, second approach).

After "compilation" the latency and data dependences of every CMem
instruction are known, so independent instructions can be moved into the
delay slots of multi-cycle CMem operations.  This module implements a
dependence-safe greedy list scheduler:

* programs are split at control-flow instructions (and capped windows, so
  fully unrolled kernels schedule in near-linear time);
* within a window a dependence DAG is built over register (RAW/WAR/WAW),
  memory (static disambiguation of ``imm(zero)`` addresses, conservative
  otherwise) and CMem-slice hazards;
* ready instructions are issued greedily, preferring the one that can
  start earliest and, on ties, the one with the longest dependent chain.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.errors import SchedulingError
from repro.riscv.isa import FunctionalUnit, Instruction


@dataclass
class _Node:
    index: int
    instr: Instruction
    succs: Set[int] = field(default_factory=set)
    preds: Set[int] = field(default_factory=set)
    priority: int = 0


def _static_address(instr: Instruction) -> Optional[int]:
    """Address of a memory access when statically known (imm(zero))."""
    if instr.rs1 == 0:
        return instr.imm
    return None


def _reads(instr: Instruction) -> List[int]:
    spec = instr.spec
    regs = []
    if spec.reads_rs1 and instr.rs1:
        regs.append(instr.rs1)
    if spec.reads_rs2 and instr.rs2:
        regs.append(instr.rs2)
    return regs


def _writes(instr: Instruction) -> Optional[int]:
    return instr.rd if (instr.spec.writes_rd and instr.rd) else None


def _cmem_slices(instr: Instruction) -> Tuple[int, ...]:
    cm = instr.cm
    if instr.opcode == "move.c":
        return (cm["src_slice"], cm["dst_slice"])
    return (cm.get("slice", 0),)


def _cmem_writes_slice(instr: Instruction) -> bool:
    """Does this op modify slice contents (vs only reading rows)?"""
    return instr.opcode in (
        "move.c", "setrow.c", "shiftrow.c", "loadrow.rc", "setcsr.c"
    )


def _split_windows(
    program: Sequence[Instruction], max_window: int
) -> List[Tuple[int, int]]:
    """(start, end) windows that never span control flow."""
    windows: List[Tuple[int, int]] = []
    start = 0
    for i, instr in enumerate(program):
        boundary = instr.spec.is_branch or instr.opcode in ("halt", "ecall")
        if boundary:
            if i > start:
                windows.append((start, i))
            windows.append((i, i + 1))  # the branch itself, pinned
            start = i + 1
        elif i + 1 - start >= max_window:
            windows.append((start, i + 1))
            start = i + 1
    if start < len(program):
        windows.append((start, len(program)))
    return windows


def _build_dag(block: Sequence[Instruction]) -> List[_Node]:
    nodes = [_Node(index=i, instr=instr) for i, instr in enumerate(block)]
    last_writer: Dict[int, int] = {}
    readers_since_write: Dict[int, List[int]] = {}
    mem_stores: List[Tuple[int, Optional[int]]] = []
    mem_loads: List[Tuple[int, Optional[int]]] = []
    slice_last_write: Dict[int, int] = {}
    slice_readers: Dict[int, List[int]] = {}
    last_remote: Optional[int] = None

    def add_edge(src: int, dst: int) -> None:
        if src != dst:
            nodes[src].succs.add(dst)
            nodes[dst].preds.add(src)

    for i, node in enumerate(nodes):
        instr = node.instr
        spec = instr.spec
        # Register dependences.
        for reg in _reads(instr):
            if reg in last_writer:
                add_edge(last_writer[reg], i)  # RAW
            readers_since_write.setdefault(reg, []).append(i)
        rd = _writes(instr)
        if rd is not None:
            if rd in last_writer:
                add_edge(last_writer[rd], i)  # WAW
            for reader in readers_since_write.get(rd, ()):
                add_edge(reader, i)  # WAR
            last_writer[rd] = i
            readers_since_write[rd] = []
        # Memory dependences (data memory + slice-0 MMIO).
        if spec.is_store or spec.is_load:
            addr = _static_address(instr)
            if spec.is_store:
                for j, prior in mem_stores + mem_loads:
                    if addr is None or prior is None or prior == addr:
                        add_edge(j, i)
                mem_stores.append((i, addr))
            else:
                for j, prior in mem_stores:
                    if addr is None or prior is None or prior == addr:
                        add_edge(j, i)
                mem_loads.append((i, addr))
        # CMem slice hazards.
        if spec.unit is FunctionalUnit.CMEM:
            for s in _cmem_slices(instr):
                if _cmem_writes_slice(instr):
                    if s in slice_last_write:
                        add_edge(slice_last_write[s], i)
                    for reader in slice_readers.get(s, ()):
                        add_edge(reader, i)
                    slice_last_write[s] = i
                    slice_readers[s] = []
                else:
                    if s in slice_last_write:
                        add_edge(slice_last_write[s], i)
                    slice_readers.setdefault(s, []).append(i)
            # Remote row transfers stay mutually ordered (NoC semantics).
            if instr.opcode in ("loadrow.rc", "storerow.rc"):
                if last_remote is not None:
                    add_edge(last_remote, i)
                last_remote = i
    return nodes


def _compute_priorities(nodes: List[_Node]) -> None:
    """Longest latency-weighted path from each node to any sink."""
    for node in reversed(nodes):
        latency = node.instr.latency()
        node.priority = latency + max(
            (nodes[s].priority for s in node.succs), default=0
        )


def _schedule_block(block: List[Instruction]) -> List[Instruction]:
    if len(block) < 2:
        return list(block)
    nodes = _build_dag(block)
    _compute_priorities(nodes)
    remaining = {node.index for node in nodes}
    pred_count = {node.index: len(node.preds) for node in nodes}
    ready = [i for i in remaining if pred_count[i] == 0]
    reg_ready: Dict[int, int] = {}
    slice_free: Dict[int, int] = {}
    scheduled: List[Instruction] = []
    time = 0
    while remaining:
        if not ready:
            raise SchedulingError("dependence cycle in straight-line code")

        def start_estimate(i: int) -> int:
            instr = nodes[i].instr
            est = time
            for reg in _reads(instr):
                est = max(est, reg_ready.get(reg, 0))
            if instr.spec.unit is FunctionalUnit.CMEM:
                for s in _cmem_slices(instr):
                    est = max(est, slice_free.get(s, 0))
            return est

        choice = min(ready, key=lambda i: (start_estimate(i), -nodes[i].priority, i))
        ready.remove(choice)
        remaining.discard(choice)
        node = nodes[choice]
        instr = node.instr
        start = max(time + 1, start_estimate(choice))
        latency = instr.latency()
        if instr.spec.unit is FunctionalUnit.CMEM:
            for s in _cmem_slices(instr):
                slice_free[s] = start + latency
        rd = _writes(instr)
        if rd is not None:
            reg_ready[rd] = start + latency
        time = start
        scheduled.append(instr)
        for succ in node.succs:
            pred_count[succ] -= 1
            if pred_count[succ] == 0:
                ready.append(succ)
    return scheduled


def static_schedule(
    program: Sequence[Instruction], *, max_window: int = 400
) -> List[Instruction]:
    """Reorder a program to hide CMem latency; semantics-preserving.

    Branch targets are instruction indices, so windows additionally break
    at every target (targets must keep their position at a window start),
    and targets are remapped onto the scheduled order.  The input program
    is not mutated; scheduled instructions are shallow copies.
    """
    targets = sorted(
        {instr.target for instr in program if instr.target is not None}
    )
    # Annotate original indices so we can remap targets afterwards.
    indexed = [(i, instr) for i, instr in enumerate(program)]
    windows: List[Tuple[int, int]] = []
    cut_points = set(targets)
    for start, end in _split_windows(program, max_window):
        inner = [p for p in sorted(cut_points) if start < p < end]
        prev = start
        for p in inner:
            windows.append((prev, p))
            prev = p
        windows.append((prev, end))

    order: List[int] = []
    for start, end in windows:
        if end <= start:
            continue
        block = [instr for _, instr in indexed[start:end]]
        if len(block) == 1:
            order.append(start)
            continue
        scheduled = _schedule_block(block)
        # _schedule_block returns the same (unique) objects reordered.
        original_index = {id(instr): start + k for k, instr in enumerate(block)}
        order.extend(original_index[id(instr)] for instr in scheduled)

    if sorted(order) != list(range(len(program))):
        raise SchedulingError("scheduler dropped or duplicated instructions")
    new_index = {orig: new for new, orig in enumerate(order)}
    out: List[Instruction] = []
    for orig in order:
        src = program[orig]
        copy = Instruction(
            opcode=src.opcode, rd=src.rd, rs1=src.rs1, rs2=src.rs2,
            imm=src.imm, target=src.target, cm=dict(src.cm),
            label=src.label, source_line=src.source_line, category=src.category,
        )
        if copy.target is not None:
            copy.target = new_index[copy.target]
        out.append(copy)
    return out
