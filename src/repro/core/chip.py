"""The 16x16 MAICC chip: tile geometry and subsystem wiring (Fig. 3(a)).

Row 0 and row 15 are LLC tiles (16 each = 32, one per DRAM channel); the
host CPU occupies the first tile of row 1; the remaining 15x14 tiles are
compute cores.  ``MAICCChip`` wires the mesh NoC, the DRAM controller, and
the LLC tiles together and answers geometry queries for the placement and
energy models.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum, unique
from typing import Dict, List, Optional, Tuple

from repro.dram.controller import DRAMConfig, DRAMController
from repro.dram.llc import LLCache, LLCConfig
from repro.energy.area import AreaBreakdown, area_breakdown
from repro.energy.constants import ChipConstants
from repro.errors import ConfigurationError, NoCError
from repro.noc.mesh import MeshConfig, MeshNoC

Coord = Tuple[int, int]


@unique
class TileKind(Enum):
    HOST = "host"
    COMPUTE = "compute"
    LLC = "llc"


@dataclass(frozen=True)
class ChipConfig:
    """Geometry of the chip (defaults: the paper's 210-core design).

    Fig. 3(a): a 16x16 mesh with two LLC rows (top and bottom) and a
    15x14 compute region; the remaining column hosts the multi-core host
    CPU tile and reserved IO tiles.
    """

    mesh_width: int = 16
    mesh_height: int = 16
    llc_rows: Tuple[int, ...] = (0, 15)
    host_column: int = 15
    host_tile: Coord = (15, 1)
    constants: ChipConstants = field(default_factory=ChipConstants)

    @property
    def compute_tiles(self) -> int:
        llc = len(self.llc_rows) * self.mesh_width
        host_col = self.mesh_height - len(self.llc_rows)
        return self.mesh_width * self.mesh_height - llc - host_col

    def __post_init__(self) -> None:
        for row in self.llc_rows:
            if not 0 <= row < self.mesh_height:
                raise ConfigurationError(f"LLC row {row} outside the mesh")
        if self.host_tile[1] in self.llc_rows:
            raise ConfigurationError("host tile collides with an LLC row")
        if self.host_tile[0] != self.host_column:
            raise ConfigurationError("host tile must sit in the host column")


class MAICCChip:
    """Structural model of the whole chip."""

    def __init__(
        self,
        config: ChipConfig = ChipConfig(),
        dram_config: Optional[DRAMConfig] = None,
        llc_config: Optional[LLCConfig] = None,
    ) -> None:
        self.config = config
        self.noc = MeshNoC(MeshConfig(width=config.mesh_width, height=config.mesh_height))
        self.dram = DRAMController(dram_config or DRAMConfig())
        self.llcs: List[LLCache] = [
            LLCache(llc_config or LLCConfig(), dram=self.dram, channel=ch)
            for ch in range(self.dram.config.channels)
        ]
        self._llc_coords: List[Coord] = [
            (x, row) for row in config.llc_rows for x in range(config.mesh_width)
        ]

    # -- geometry ----------------------------------------------------------------

    def tile_kind(self, coord: Coord) -> TileKind:
        self.noc.check_coord(coord)
        if coord[1] in self.config.llc_rows:
            return TileKind.LLC
        if coord[0] == self.config.host_column:
            return TileKind.HOST
        return TileKind.COMPUTE

    def compute_coords(self) -> List[Coord]:
        out = []
        for y in range(self.config.mesh_height):
            if y in self.config.llc_rows:
                continue
            for x in range(self.config.mesh_width):
                if x == self.config.host_column:
                    continue
                out.append((x, y))
        return out

    def llc_coord(self, channel: int) -> Coord:
        if not 0 <= channel < len(self._llc_coords):
            raise NoCError(f"no LLC tile for channel {channel}")
        return self._llc_coords[channel]

    def nearest_llc(self, coord: Coord) -> Coord:
        """The LLC tile a core reaches with the fewest hops."""
        self.noc.check_coord(coord)
        return min(
            self._llc_coords,
            key=lambda llc: abs(llc[0] - coord[0]) + abs(llc[1] - coord[1]),
        )

    # -- reporting -----------------------------------------------------------------

    def area(self) -> AreaBreakdown:
        return area_breakdown(self.config.constants)

    def summary(self) -> Dict[str, float]:
        area = self.area()
        return {
            "compute_cores": self.config.compute_tiles,
            "llc_tiles": len(self._llc_coords),
            "total_area_mm2": area.total,
            "cmem_area_mm2": area.cmem,
            "on_chip_memory_kb": (
                self.config.compute_tiles
                * (16 + 4)  # 16 KB CMem + 4 KB dmem per node
            ),
        }
