"""The Eq. (1) performance model: per-iteration, per-layer, per-segment.

One *iteration* is the handling of one ifmap vector by one computing core
(Algorithm 1): broadcast it into the compute slices, MAC it against every
held filter vector, accumulate partial sums, run auxiliary functions on
ofmap values completed this iteration, and forward the vector to the next
core.  The paper's Eq. (1) reduces this to

    T_i = max(T_CMem, T_aux + T_rs)

because static + dynamic scheduling let the scalar pipeline run under the
multi-cycle CMem instructions.  This module computes the two sides from
first principles (instruction counts x unit costs), exposes them per
component (Fig. 9's breakdown), and rolls layers up to segments with
inter-layer pipelining and the filter-load phase.

All constants are grouped in :class:`TimingParams`; defaults were
calibrated once against the paper's single-node measurement (Table 4:
~730 cycles per iteration for 5x(3x3x256) filters) and the closed form
``7N + Q N^2`` of Sec. 4.1.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.errors import MappingError
from repro.mapping.capacity import CapacityModel
from repro.nn.workloads import ConvLayerSpec


@dataclass(frozen=True)
class TimingParams:
    """Unit costs (cycles) of the performance model."""

    issue_cost: float = 1.0          # pipeline issue slot per CMem instruction
    acc_cost: float = 5.0            # accumulate one MAC psum (lw/add/sw + addressing)
    aux_cost: float = 22.0           # quant+norm+act(+pool) per finished ofmap value
    ofmap_send_cost: float = 3.0     # remote-store one finished ofmap value
    loop_cost: float = 12.0          # per-iteration flag checks + loop overhead
    ifmap_forward_cost: float = 2.0  # per StoreRow.RC forwarding the vector
    handshake_cost: float = 24.0     # p/nextp software-lock round trip
    transpose_byte_cost: float = 3.0  # per vertical byte store at the DC (lb+sb+inc)
    dc_overhead: float = 48.0        # DC per-vector loop/flag overhead
    dram_fetch_cost_per_byte: float = 0.5  # streamed ifmap fetch through LLC
    hop_latency: float = 2.0         # NoC per-hop delay
    filter_load_bw: float = 16.0     # bytes/cycle aggregate weight-load rate
    filter_load_overlap: float = 0.9  # fraction hidden behind compute (Sec. 6.2)
    overlap: bool = True             # static+dynamic scheduling (Eq. 1 max)
    # Residual hazard stalls the instruction-count model misses; calibrated
    # against the cycle-level node simulator (Table 4 workload).
    pipeline_overhead: float = 1.3
    # Whether one core's MACs in different slices overlap in time.  The
    # paper's Eq. (1) many-core model is *serial* (T_CMem = k1 * n_i, linear
    # in filters per node — its Table 6 intervals match macs * N^2), while
    # its node-level closed form (7N + Q N^2, Table 4) exploits slice
    # parallelism.  Default False reproduces the many-core evaluation; the
    # ablation bench flips it.
    slice_parallel_cmem: bool = False


@dataclass(frozen=True)
class IterationTiming:
    """Cycle breakdown of one computing-core iteration."""

    t_cmem: float
    t_issue: float
    t_acc: float
    t_aux: float
    t_ofmap_send: float
    t_loop: float
    t_forward: float  # T_rs of Eq. (1): pushing the vector downstream
    macs_per_iteration: float
    overlap: bool

    @property
    def t_scalar(self) -> float:
        """Everything the RISC-V pipeline itself must execute."""
        return self.t_issue + self.t_acc + self.t_aux + self.t_ofmap_send + self.t_loop

    @property
    def total(self) -> float:
        """T_i of Eq. (1)."""
        if self.overlap:
            return max(self.t_cmem, self.t_scalar + self.t_forward)
        return self.t_cmem + self.t_scalar + self.t_forward

    def breakdown(self) -> Dict[str, float]:
        return {
            "cmem": self.t_cmem,
            "issue": self.t_issue,
            "accumulate": self.t_acc,
            "aux": self.t_aux,
            "send_ofmap": self.t_ofmap_send,
            "loop": self.t_loop,
            "send_ifmap": self.t_forward,
        }


@dataclass(frozen=True)
class DCTiming:
    """Cycle breakdown of one data-collection-core iteration."""

    t_fetch: float
    t_transpose: float
    t_send: float
    t_overhead: float

    @property
    def total(self) -> float:
        return self.t_fetch + self.t_transpose + self.t_send + self.t_overhead


@dataclass(frozen=True)
class LayerTiming:
    """Timing of one layer mapped onto a node group."""

    spec: ConvLayerSpec
    computing_nodes: int
    iteration: IterationTiming
    dc: DCTiming
    iterations: int          # ifmap vectors streamed through the group
    fill_per_hop: float      # chain fill latency per computing core

    @property
    def interval(self) -> float:
        """Steady-state cycles between consecutive ifmap vectors."""
        return max(self.iteration.total, self.dc.total)

    @property
    def fill(self) -> float:
        return self.computing_nodes * self.fill_per_hop

    @property
    def standalone_cycles(self) -> float:
        """Latency when the layer runs alone (single-layer strategy)."""
        return self.fill + self.iterations * self.interval


@dataclass(frozen=True)
class SegmentTiming:
    """Timing of one mapped segment with inter-layer pipelining."""

    layers: List[LayerTiming]
    start_offsets: List[float]
    filter_load_cycles: float
    total_cycles: float


class PerformanceModel:
    """Evaluates layers, segments, and whole plans in cycles."""

    def __init__(
        self,
        params: TimingParams = TimingParams(),
        capacity: Optional[CapacityModel] = None,
    ) -> None:
        self.params = params
        self.capacity = capacity or CapacityModel()

    # -- per-core ------------------------------------------------------------

    def slices_used(self, spec: ConvLayerSpec, computing_nodes: int) -> int:
        """Compute slices a node engages.

        Filter vectors are *spread* across all seven slices whenever there
        are enough of them — slices compute in parallel, so spreading
        maximizes MAC throughput even when capacity would fit fewer slices.
        """
        cap = self.capacity
        n_i = cap.filters_held(spec, computing_nodes)
        slots = n_i * cap.vectors_per_filter(spec) / cap.packing_factor(spec.c)
        return min(cap.compute_slices, max(1, math.ceil(slots)))

    def iteration_timing(self, spec: ConvLayerSpec, computing_nodes: int) -> IterationTiming:
        """Breakdown of one iteration for one of ``computing_nodes`` cores."""
        p = self.params
        cap = self.capacity
        n = spec.n_bits
        n_i = cap.filters_held(spec, computing_nodes)
        sub_vectors = max(1, math.ceil(spec.c / cap.cols))
        vpf_macs = cap.macs_per_filter_per_pixel(spec)
        # Work per incoming ifmap vector, averaged over the stream (stride
        # reduces the share of vectors that start output windows).
        density = spec.ofmap_pixels / spec.ifmap_pixels
        macs = n_i * vpf_macs * density
        slices_used = self.slices_used(spec, computing_nodes)
        moves = slices_used * sub_vectors
        if p.slice_parallel_cmem:
            # Slices compute in parallel; moves serialize through slice 0.
            per_slice = math.ceil(macs / slices_used) if macs else 0
            t_cmem = moves * n + per_slice * n * n
        else:
            # Paper's Eq. (1): CMem occupancy linear in the per-node work.
            t_cmem = moves * n + macs * n * n
        completed = n_i * density  # ofmap values finished this iteration
        oh = p.pipeline_overhead
        return IterationTiming(
            t_cmem=float(t_cmem),
            t_issue=(moves + macs) * p.issue_cost * oh,
            t_acc=macs * p.acc_cost * oh,
            t_aux=completed * p.aux_cost * oh,
            t_ofmap_send=completed * p.ofmap_send_cost * oh,
            t_loop=p.loop_cost * oh,
            t_forward=n * sub_vectors * p.ifmap_forward_cost + p.handshake_cost,
            macs_per_iteration=macs,
            overlap=p.overlap,
        )

    def dc_timing(self, spec: ConvLayerSpec, *, from_dram: bool) -> DCTiming:
        """Breakdown of one DC-core iteration (fetch + transpose + send)."""
        p = self.params
        sub_vectors = max(1, math.ceil(spec.c / self.capacity.cols))
        # The DC writes a full 256-lane row group per sub-vector (packing
        # replicates short vectors across the lanes); vertical stores are
        # byte-granular (Fig. 5), costing a load+store+increment each.
        bytes_written = self.capacity.cols * sub_vectors
        fetch = spec.c * p.dram_fetch_cost_per_byte if from_dram else 0.0
        return DCTiming(
            t_fetch=fetch,
            t_transpose=bytes_written * p.transpose_byte_cost,
            t_send=spec.n_bits * sub_vectors * p.ifmap_forward_cost,
            t_overhead=p.dc_overhead,
        )

    # -- per-layer -------------------------------------------------------------

    def required_iterations(self, spec: ConvLayerSpec) -> int:
        """Ifmap vectors the DC must stream for one inference.

        For a stride-s kernel smaller than the stride (1x1 shortcuts) only
        the sampled pixels are needed.
        """
        coverage = min(1.0, (spec.r / spec.stride) * (spec.s / spec.stride))
        return max(1, int(round(spec.ifmap_pixels * coverage)))

    def layer_timing(
        self, spec: ConvLayerSpec, computing_nodes: int, *, from_dram: bool = False
    ) -> LayerTiming:
        iteration = self.iteration_timing(spec, computing_nodes)
        dc = self.dc_timing(spec, from_dram=from_dram)
        fill_per_hop = (
            spec.n_bits * self.params.ifmap_forward_cost
            + self.params.handshake_cost
            + self.params.hop_latency
        )
        return LayerTiming(
            spec=spec,
            computing_nodes=computing_nodes,
            iteration=iteration,
            dc=dc,
            iterations=self.required_iterations(spec),
            fill_per_hop=fill_per_hop,
        )

    def layer_time_fn(self, *, from_dram: bool = False):
        """Adapter matching :data:`repro.mapping.allocation.TimingFn`."""

        def timing(spec: ConvLayerSpec, computing_nodes: int) -> float:
            return self.layer_timing(
                spec, computing_nodes, from_dram=from_dram
            ).standalone_cycles

        return timing

    # -- per-segment --------------------------------------------------------------

    def segment_timing(
        self,
        layer_timings: Sequence[LayerTiming],
        *,
        first_from_dram: bool = True,
    ) -> SegmentTiming:
        """Inter-layer pipelined latency of one segment (Sec. 4.2).

        Layer ``l+1`` starts once layer ``l`` has produced ``R`` ofmap rows
        (Fig. 7(a)); every layer then streams at its own interval, and the
        segment finishes when its last layer drains.  Filter loading
        precedes compute, mostly overlapped (Sec. 6.2: "in most cases the
        filter load phase takes no more than 10% of the total time").
        """
        if not layer_timings:
            raise MappingError("segment with no layers")
        offsets: List[float] = []
        finish = 0.0
        start = 0.0
        for i, lt in enumerate(layer_timings):
            if i > 0:
                prev = layer_timings[i - 1]
                # Rows of the previous layer's ofmap needed before this
                # layer can start, produced at the previous layer's rate.
                rows_needed = lt.spec.r
                vectors = rows_needed * prev.spec.ofmap_hw[1]
                start = offsets[i - 1] + prev.fill + vectors * prev.interval
            offsets.append(start)
            finish = max(finish, start + lt.standalone_cycles)
        weight_bytes = sum(
            lt.spec.weight_count * lt.spec.n_bits / 8 for lt in layer_timings
        )
        load = weight_bytes / self.params.filter_load_bw
        exposed_load = load * (1.0 - self.params.filter_load_overlap)
        return SegmentTiming(
            layers=list(layer_timings),
            start_offsets=offsets,
            filter_load_cycles=load,
            total_cycles=finish + exposed_load,
        )
