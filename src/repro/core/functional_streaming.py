"""Functionally streamed segment execution (Fig. 7(a), made checkable).

The inter-layer pipeline claims that "once a new ofmap pixel is generated,
it can be sent to the next node group immediately" — i.e. the streamed
schedule is *causally valid*: every consumer vector only ever reads
producer values that are already final.  This module executes a chain of
quantized conv layers strictly in that streamed order — producer ifmap
vectors arrive one at a time; an ofmap pixel requantizes and forwards the
moment its last contribution lands; downstream layers consume their input
pixels in raster order as they become available — and the result must
equal layer-by-layer execution exactly.

This is a functional proof of the pipelining schedule, complementing the
timing models in :mod:`repro.core.streaming`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

import numpy as np

from repro.errors import ConfigurationError, SimulationError
from repro.nn.quantize import QConv2d, _requant


@dataclass
class _LayerState:
    """Streaming state of one conv layer in the chain."""

    layer: QConv2d
    in_shape: tuple            # (C, H, W)
    acc: np.ndarray            # int64 accumulators (M, OH, OW)
    remaining: np.ndarray      # contributions outstanding per ofmap pixel
    output: np.ndarray         # requantized int8 ofmap (M, OH, OW)
    produced: np.ndarray       # ofmap pixel finalized? (OH, OW) bool
    next_consume: int = 0      # raster cursor into this layer's ifmap
    pending: Dict[int, np.ndarray] = field(default_factory=dict)

    @property
    def out_hw(self) -> tuple:
        return self.acc.shape[1], self.acc.shape[2]


def _contribution_count(layer: QConv2d, in_shape: tuple) -> np.ndarray:
    """How many (ifmap pixel, filter tap) pairs feed each ofmap pixel."""
    _, h, w = in_shape
    _, _, r, s = layer.weight_q.shape
    oh = (h + 2 * layer.padding - r) // layer.stride + 1
    ow = (w + 2 * layer.padding - s) // layer.stride + 1
    counts = np.zeros((oh, ow), dtype=np.int64)
    for y in range(h):
        for x in range(w):
            for fr in range(r):
                oy_num = y + layer.padding - fr
                if oy_num % layer.stride or not 0 <= oy_num // layer.stride < oh:
                    continue
                for fs in range(s):
                    ox_num = x + layer.padding - fs
                    if ox_num % layer.stride or not 0 <= ox_num // layer.stride < ow:
                        continue
                    counts[oy_num // layer.stride, ox_num // layer.stride] += 1
    return counts


class StreamedSegmentExecutor:
    """Executes a linear chain of quantized conv layers in streamed order."""

    def __init__(self, layers: Sequence[QConv2d], input_shape: tuple) -> None:
        if not layers:
            raise SimulationError("empty chain")
        self.states: List[_LayerState] = []
        shape = tuple(input_shape)
        for layer in layers:
            if not isinstance(layer, QConv2d):
                raise ConfigurationError(
                    "the streamed executor chains QConv2d layers"
                )
            m, c, r, s = layer.weight_q.shape
            if c != shape[0]:
                raise ConfigurationError(
                    f"chain shape mismatch: layer expects {c} channels, "
                    f"got {shape[0]}"
                )
            oh = (shape[1] + 2 * layer.padding - r) // layer.stride + 1
            ow = (shape[2] + 2 * layer.padding - s) // layer.stride + 1
            acc = np.tile(
                layer.bias_q.astype(np.int64)[:, None, None], (1, oh, ow)
            )
            self.states.append(
                _LayerState(
                    layer=layer,
                    in_shape=shape,
                    acc=acc,
                    remaining=_contribution_count(layer, shape),
                    output=np.zeros((m, oh, ow), dtype=np.int64),
                    produced=np.zeros((oh, ow), dtype=bool),
                )
            )
            shape = (m, oh, ow)

    # -- streamed execution -------------------------------------------------------

    def _absorb(self, index: int, pixel: int, vector: np.ndarray) -> None:
        """Feed one ifmap vector (all channels of one pixel) to layer i."""
        state = self.states[index]
        layer = state.layer
        _, h, w = state.in_shape
        oh, ow = state.out_hw
        y, x = divmod(pixel, w)
        _, _, r, s = layer.weight_q.shape
        for fr in range(r):
            oy_num = y + layer.padding - fr
            if oy_num % layer.stride or not 0 <= oy_num // layer.stride < oh:
                continue
            oy = oy_num // layer.stride
            for fs in range(s):
                ox_num = x + layer.padding - fs
                if ox_num % layer.stride or not 0 <= ox_num // layer.stride < ow:
                    continue
                ox = ox_num // layer.stride
                state.acc[:, oy, ox] += layer.weight_q[:, :, fr, fs] @ vector
                state.remaining[oy, ox] -= 1
                if state.remaining[oy, ox] == 0:
                    self._finalize(index, oy, ox)

    def _finalize(self, index: int, oy: int, ox: int) -> None:
        """An ofmap pixel completed: requantize and forward downstream."""
        state = self.states[index]
        value = _requant(
            state.acc[:, oy, ox], state.layer.requant_ratio, state.layer.n_bits
        )
        state.output[:, oy, ox] = value
        state.produced[oy, ox] = True
        if index + 1 < len(self.states):
            consumer = self.states[index + 1]
            oh, ow = state.out_hw
            consumer.pending[oy * ow + ox] = value
            self._drain(index + 1)

    def _drain(self, index: int) -> None:
        """Consume available pixels in strict raster order (the DC's feed)."""
        state = self.states[index]
        while state.next_consume in state.pending:
            vector = state.pending.pop(state.next_consume)
            self._absorb(index, state.next_consume, vector)
            state.next_consume += 1

    def run(self, q_in: np.ndarray) -> List[np.ndarray]:
        """Stream the input through the whole chain; returns each ofmap."""
        q_in = np.asarray(q_in, dtype=np.int64)
        if q_in.shape != self.states[0].in_shape:
            raise ConfigurationError(
                f"input shape {q_in.shape} != {self.states[0].in_shape}"
            )
        _, h, w = self.states[0].in_shape
        for pixel in range(h * w):
            y, x = divmod(pixel, w)
            self._absorb(0, pixel, q_in[:, y, x])
        for i, state in enumerate(self.states):
            if not state.produced.all():
                raise SimulationError(
                    f"layer {i}: streamed schedule left "
                    f"{(~state.produced).sum()} ofmap pixels unfinished"
                )
        return [state.output for state in self.states]
