"""Multi-DNN parallel inference on the MAICC array.

The paper's MIMD argument (Sec. 8): because every node has its own control
flow, the array can be *spatially partitioned* among several models, each
mapped with the usual execution framework inside its partition.  This
module implements that scheduler and the obvious baseline — time-sharing
the whole array — so the benefit of spatial co-location can be quantified.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from repro.core.simulator import ChipSimulator, NetworkRunResult
from repro.errors import MappingError, SimulationError
from repro.sim import SimConfig, simulate
from repro.mapping.allocation import proportional_shares
from repro.mapping.placement import NodePlacement, zigzag_placement
from repro.nn.workloads import NetworkSpec


@dataclass
class ModelRun:
    """One model's execution inside its partition."""

    network: NetworkSpec
    partition_cores: int
    result: NetworkRunResult
    region_start: int = 0
    placements: List[NodePlacement] = field(default_factory=list)

    def occupied_tiles(self) -> set:
        """All mesh tiles this model's segments ever use."""
        tiles = set()
        for placement in self.placements:
            tiles.update(placement.dc.values())
            for coords in placement.computing.values():
                tiles.update(coords)
        return tiles

    @property
    def latency_ms(self) -> float:
        return self.result.latency_ms

    @property
    def throughput(self) -> float:
        return self.result.throughput_samples_s


@dataclass
class MultiDNNResult:
    """Spatial-partition run vs the time-shared baseline."""

    runs: List[ModelRun]
    time_shared_latency_ms: float

    def _require_runs(self) -> None:
        if not self.runs:
            raise SimulationError(
                "MultiDNNResult has no model runs; aggregate latency and "
                "throughput are undefined for an empty schedule"
            )

    @property
    def parallel_latency_ms(self) -> float:
        """All models run concurrently: makespan = slowest model."""
        self._require_runs()
        return max(run.latency_ms for run in self.runs)

    @property
    def aggregate_throughput(self) -> float:
        """Samples/s summed over concurrently running models."""
        self._require_runs()
        return sum(run.throughput for run in self.runs)

    @property
    def time_shared_throughput(self) -> float:
        """Round-robin on the whole array: one sample per model per round."""
        self._require_runs()
        return len(self.runs) / (self.time_shared_latency_ms / 1000.0)

    @property
    def speedup_vs_time_shared(self) -> float:
        return self.time_shared_latency_ms / self.parallel_latency_ms


class MultiDNNScheduler:
    """Partitions the compute array among several DNNs."""

    def __init__(
        self,
        simulator: Optional[ChipSimulator] = None,
        *,
        array_size: int = 208,
        backend: Optional[str] = None,
    ) -> None:
        """``backend`` selects the fidelity tier partitions are simulated
        on (``repro.sim`` name); ``None`` follows the simulator's tier."""
        self.array_size = array_size
        self.simulator = simulator or ChipSimulator(array_size=array_size)
        self.backend = backend or self.simulator.backend
        self.capacity = self.simulator.capacity

    def minimum_cores(self, network: NetworkSpec) -> int:
        """Smallest partition that still fits the model's largest layer."""
        return max(
            self.capacity.min_nodes(spec, max_nodes=self.array_size - 1) + 1
            for spec in network
        )

    def partition(self, networks: Sequence[NetworkSpec]) -> List[int]:
        """Split the array proportionally to each model's MAC demand.

        Every model is guaranteed at least the cores its largest layer
        needs at the capacity minimum; remaining cores are distributed by
        computational weight (:func:`proportional_shares` — the same
        allocator the elastic serving policy resizes through).
        """
        if not networks:
            raise MappingError("no networks to schedule")
        minimums = [self.minimum_cores(net) for net in networks]
        if sum(minimums) > self.array_size:
            raise MappingError(
                f"models need at least {sum(minimums)} cores together but the "
                f"array has {self.array_size}"
            )
        return proportional_shares(
            minimums,
            [net.total_macs for net in networks],
            self.array_size,
        )

    def simulate_partition(
        self,
        network: NetworkSpec,
        cores: int,
        strategy: str = "heuristic",
        *,
        backend: Optional[str] = None,
        batch_requests: int = 1,
    ) -> NetworkRunResult:
        """Run one model inside a ``cores``-sized slice of the array.

        The shared entry point for both the static schedule below and the
        elastic partition manager of :mod:`repro.serving`: both derive a
        partition's service time from exactly this simulation, so a
        static partition and an elastic partition of the same size agree
        bit-for-bit.  ``backend`` overrides the scheduler's tier for this
        call only (the elastic policy estimates resize decisions on the
        cheap ``analytic`` tier this way); ``batch_requests`` streams a
        weight-stationary request batch through the partition
        (``SimConfig.batch_requests``).
        """
        config = SimConfig(
            chip=self.simulator.chip,
            params=self.simulator.params,
            capacity=self.capacity,
            array_size=cores,
            strategy=strategy,
            batch_requests=batch_requests,
        )
        return simulate(network, backend=backend or self.backend, config=config)

    def run(
        self,
        networks: Sequence[NetworkSpec],
        *,
        strategy: str = "heuristic",
    ) -> MultiDNNResult:
        """Simulate all models running concurrently in their partitions."""
        shares = self.partition(networks)
        runs: List[ModelRun] = []
        offset = 0
        for net, share in zip(networks, shares):
            result = self.simulate_partition(net, share, strategy)
            # Each model owns a contiguous interval of the global snake
            # walk; its segments (which run sequentially in time) reuse
            # that interval, so models never share a tile.
            placements = [
                zigzag_placement(seg_run.segment, start_offset=offset)
                for seg_run in result.runs
            ]
            runs.append(
                ModelRun(
                    network=net,
                    partition_cores=share,
                    result=result,
                    region_start=offset,
                    placements=placements,
                )
            )
            offset += share
        # Baseline: whole array, one model at a time, repeated round-robin.
        time_shared = 0.0
        for net in networks:
            result = self.simulator.run(net, strategy, backend=self.backend)
            time_shared += result.latency_ms
        return MultiDNNResult(runs=runs, time_shared_latency_ms=time_shared)
