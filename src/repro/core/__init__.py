"""MAICC proper: node architecture, kernels, streaming execution, chip.

This package is the paper's primary contribution:

* :mod:`repro.core.datalayout` — filter/ifmap placement inside the CMem
  (Fig. 6);
* :mod:`repro.core.conv_kernel` — the Algorithm-1 code generator emitting
  real (simulator) assembly for one computing core;
* :mod:`repro.core.scheduler` — compile-time (static) instruction
  reordering that fills CMem delay slots (Sec. 3.3);
* :mod:`repro.core.node` — a single MAICC node: core + CMem + kernels;
* :mod:`repro.core.functional` — bit-true / fast-functional multi-node
  execution of whole layers and networks (the correctness path);
* :mod:`repro.core.perfmodel` — the Eq. (1) timing model;
* :mod:`repro.core.streaming` — iteration-granularity simulation of node
  groups (pipeline fill, waiting, Fig. 9 breakdowns);
* :mod:`repro.core.chip` / :mod:`repro.core.simulator` — whole-chip runs;
* :mod:`repro.core.multi_dnn` — spatial multi-DNN parallel inference.
"""

from repro.core.datalayout import NodeLayout, plan_node_layout
from repro.core.perfmodel import (
    DCTiming,
    IterationTiming,
    LayerTiming,
    PerformanceModel,
    TimingParams,
)
from repro.core.node import MAICCNode, NodeRunResult, table4_workload
from repro.core.scheduler import static_schedule
from repro.core.functional import FunctionalNodeGroup, simulate_quantized_graph
from repro.core.streaming import CoreBreakdown, SegmentSimulator
from repro.core.event_streaming import EventDrivenSegmentSimulator
from repro.core.traffic import TrafficResult, simulate_segment_traffic
from repro.core.simulator import ChipSimulator, NetworkRunResult
from repro.core.chip import ChipConfig, MAICCChip
from repro.core.multi_dnn import MultiDNNResult, MultiDNNScheduler
from repro.core.sensor_stream import SensorStreamSimulator, StreamSpec
from repro.core.runtime import DeployedModel, InferenceResult, MAICCRuntime, network_spec_of
from repro.core.functional_streaming import StreamedSegmentExecutor
from repro.core.weight_staging import StagingResult, WeightStager, stage_node

__all__ = [
    "NodeLayout",
    "plan_node_layout",
    "DCTiming",
    "IterationTiming",
    "LayerTiming",
    "PerformanceModel",
    "TimingParams",
    "MAICCNode",
    "NodeRunResult",
    "table4_workload",
    "static_schedule",
    "FunctionalNodeGroup",
    "simulate_quantized_graph",
    "CoreBreakdown",
    "SegmentSimulator",
    "EventDrivenSegmentSimulator",
    "TrafficResult",
    "simulate_segment_traffic",
    "ChipSimulator",
    "NetworkRunResult",
    "ChipConfig",
    "MAICCChip",
    "MultiDNNResult",
    "MultiDNNScheduler",
    "SensorStreamSimulator",
    "StreamSpec",
    "DeployedModel",
    "InferenceResult",
    "MAICCRuntime",
    "network_spec_of",
    "StreamedSegmentExecutor",
    "StagingResult",
    "WeightStager",
    "stage_node",
]
