"""The host-side deployment runtime.

The paper's host CPU "runs the operating system and is responsible for
resource management and task allocation of the many-core array"
(Sec. 3.1).  ``MAICCRuntime`` is that role as an API: it takes a float
model, quantizes it, derives the mapped-layer description, plans the
segmentation/placement, and then serves inferences — producing both the
*actual integer outputs* (functional node-group execution, exactly equal
to the quantized reference) and the *performance estimate* (cycles,
energy) of running them on the chip.

    runtime = MAICCRuntime()
    deployed = runtime.deploy(graph, calibration_inputs)
    result = deployed.infer(x)
    result.logits, result.latency_ms, result.energy_mj
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.core.functional import simulate_quantized_graph
from repro.core.simulator import ChipSimulator, NetworkRunResult
from repro.errors import MappingError
from repro.mapping.placement import NodePlacement, zigzag_placement
from repro.nn.graph import Graph
from repro.nn.quantize import QConv2d, QLinear, QuantizedGraph, quantize_graph
from repro.nn.workloads import ConvLayerSpec, NetworkSpec


def network_spec_of(qgraph: QuantizedGraph, name: str = "model") -> NetworkSpec:
    """Derive the mapped-layer description from a quantized graph.

    Conv and FC nodes become mapped layers in topological order; auxiliary
    nodes (ReLU, pooling, adds) run on the scalar cores and do not map.
    """
    shapes: Dict[str, tuple] = {}
    layers: List[ConvLayerSpec] = []
    for node_name in qgraph.order:
        node = qgraph.nodes[node_name]
        layer = node.layer
        if hasattr(layer, "shape"):  # QInput
            shapes[node_name] = tuple(layer.shape)
            continue
        in_shape = shapes[node.inputs[0]]
        if isinstance(layer, QConv2d):
            m, c, r, s = layer.weight_q.shape
            h, w = in_shape[1], in_shape[2]
            layers.append(
                ConvLayerSpec(
                    index=len(layers) + 1, name=node_name, h=h, w=w, c=c,
                    m=m, r=r, s=s, stride=layer.stride, padding=layer.padding,
                    n_bits=layer.n_bits,
                )
            )
            oh = (h + 2 * layer.padding - r) // layer.stride + 1
            ow = (w + 2 * layer.padding - s) // layer.stride + 1
            shapes[node_name] = (m, oh, ow)
        elif isinstance(layer, QLinear):
            c = int(np.prod(in_shape))
            m = layer.weight_q.shape[0]
            layers.append(
                ConvLayerSpec(
                    index=len(layers) + 1, name=node_name, h=1, w=1, c=c,
                    m=m, r=1, s=1, padding=0, kind="linear",
                    n_bits=layer.n_bits,
                )
            )
            shapes[node_name] = (m,)
        else:
            # Auxiliary layers keep (or pool) the input shape.
            from repro.nn.quantize import QAvgPool2d, QMaxPool2d, QFlatten

            if isinstance(layer, (QMaxPool2d, QAvgPool2d)):
                kernel = layer.pool.kernel if isinstance(layer, QMaxPool2d) else layer.kernel
                stride = layer.pool.stride if isinstance(layer, QMaxPool2d) else layer.stride
                padding = layer.pool.padding if isinstance(layer, QMaxPool2d) else layer.padding
                c, h, w = in_shape
                oh = (h + 2 * padding - kernel) // stride + 1
                ow = (w + 2 * padding - kernel) // stride + 1
                shapes[node_name] = (c, oh, ow)
            elif isinstance(layer, QFlatten):
                shapes[node_name] = (int(np.prod(in_shape)),)
            else:
                shapes[node_name] = in_shape
    if not layers:
        raise MappingError("the model contains no mappable conv/FC layers")
    return NetworkSpec(name=name, layers=tuple(layers))


@dataclass
class InferenceResult:
    """One served inference: real outputs + modeled cost."""

    outputs: np.ndarray
    activations: Dict[str, np.ndarray]
    latency_ms: float
    energy_mj: float

    @property
    def logits(self) -> np.ndarray:
        return self.outputs


@dataclass
class DeployedModel:
    """A model resident on the chip: quantized graph + plan + placements."""

    name: str
    qgraph: QuantizedGraph
    network: NetworkSpec
    performance: NetworkRunResult
    placements: List[NodePlacement] = field(default_factory=list)

    @property
    def latency_ms(self) -> float:
        return self.performance.latency_ms

    @property
    def throughput_samples_s(self) -> float:
        return self.performance.throughput_samples_s

    def infer(self, x: np.ndarray) -> InferenceResult:
        """Run one input through the functional MAICC path."""
        activations = simulate_quantized_graph(self.qgraph, x)
        output = activations[self.qgraph.output_name]
        return InferenceResult(
            outputs=output,
            activations=activations,
            latency_ms=self.performance.latency_ms,
            energy_mj=self.performance.energy.total * 1e3,
        )

    def summary(self) -> str:
        lines = [
            f"model {self.name!r}: {len(self.network)} mapped layers, "
            f"{self.network.total_macs / 1e6:.1f} MMACs",
            f"  latency {self.latency_ms:.3f} ms, "
            f"{self.throughput_samples_s:.0f} samples/s, "
            f"{self.performance.average_power_w:.2f} W",
        ]
        for run, placement in zip(self.performance.runs, self.placements):
            names = ",".join(s.name for s in run.segment.layers)
            lines.append(
                f"  segment [{names}]: {run.segment.total_nodes} cores, "
                f"{run.cycles / 1e3:.1f} kcycles, "
                f"chain hops {placement.average_chain_hops():.2f}"
            )
        return "\n".join(lines)


class MAICCRuntime:
    """Host-side model deployment onto the MAICC chip."""

    def __init__(
        self,
        simulator: Optional[ChipSimulator] = None,
        *,
        strategy: str = "heuristic",
        backend: Optional[str] = None,
    ) -> None:
        """``backend`` selects the performance-estimate fidelity tier
        (``repro.sim`` name); ``None`` keeps the simulator's own tier."""
        self.simulator = simulator or ChipSimulator()
        self.strategy = strategy
        self.backend = backend

    def deploy(
        self,
        graph: Graph,
        calibration_inputs: Sequence[np.ndarray],
        *,
        name: str = "model",
        n_bits: int = 8,
    ) -> DeployedModel:
        """Quantize, map, and place a float model."""
        qgraph = quantize_graph(graph, calibration_inputs, n_bits=n_bits)
        network = network_spec_of(qgraph, name)
        performance = self.simulator.run(
            network, self.strategy, backend=self.backend
        )
        placements = [
            zigzag_placement(run.segment) for run in performance.runs
        ]
        return DeployedModel(
            name=name,
            qgraph=qgraph,
            network=network,
            performance=performance,
            placements=placements,
        )
