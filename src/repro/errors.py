"""Exception hierarchy for the MAICC reproduction.

Every error raised by this package derives from :class:`ReproError`, so
callers can catch one base class.  Sub-classes are grouped by subsystem so
tests can assert on the precise failure mode.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class ConfigurationError(ReproError):
    """A configuration object was constructed with inconsistent values."""


class SRAMError(ReproError):
    """Illegal operation on an SRAM array (bad row/column, width mismatch)."""


class CMemError(ReproError):
    """Illegal operation on the computing memory (CMem)."""


class SliceIndexError(CMemError):
    """A slice index was outside the configured slice range."""


class RowIndexError(CMemError):
    """A row index was outside the 64-row slice range."""


class AssemblerError(ReproError):
    """Failure while parsing assembly text."""


class DecodeError(ReproError):
    """An instruction could not be decoded or executed."""


class MemoryMapError(ReproError):
    """An address fell outside every mapped region (Table 1)."""


class AlignmentError(MemoryMapError):
    """A memory access violated the required alignment."""


class NoCError(ReproError):
    """Illegal NoC operation (bad coordinates, oversized payload)."""


class DRAMError(ReproError):
    """Illegal DRAM operation (bad channel or address)."""


class QuantizationError(ReproError):
    """Invalid quantization parameters or out-of-range values."""


class GraphError(ReproError):
    """Malformed DNN graph (cycles, dangling inputs, shape mismatch)."""


class ShapeError(GraphError):
    """Tensor shape mismatch between connected layers."""


class MappingError(ReproError):
    """The model could not be mapped onto the many-core array."""


class CapacityError(MappingError):
    """A layer does not fit the per-node CMem capacity model."""


class PlanVerificationError(MappingError):
    """Static pre-flight analysis rejected a plan before simulation.

    Raised by :func:`repro.sim.simulate` (``SimConfig.preflight``) and
    by serving admission when :func:`repro.analysis.analyze_plan` finds
    error-severity diagnostics.  ``report`` carries the full
    :class:`repro.analysis.LintReport`.
    """

    def __init__(self, message: str, report: object = None) -> None:
        super().__init__(message)
        self.report = report


class PlacementError(MappingError):
    """Zig-zag placement could not place a node group on the mesh."""


class SimulationError(ReproError):
    """The simulator reached an inconsistent state (deadlock, overrun)."""


class BackendError(SimulationError):
    """An unknown or misconfigured simulation backend was requested."""


class XCheckError(SimulationError):
    """Cross-tier differential check fell outside the agreement envelope."""


class SchedulingError(ReproError):
    """The static instruction scheduler detected an illegal reorder."""


class TelemetryError(ReproError):
    """Invalid metric path, trace event, or malformed exported trace."""


class ObservabilityError(ReproError):
    """Broken attribution invariant, alert config, or report schema."""
