"""MAICC reproduction: a lightweight many-core with in-cache computing.

A full-system Python reproduction of *MAICC: A Lightweight Many-core
Architecture with In-Cache Computing for Multi-DNN Parallel Inference*
(Fan et al., MICRO 2023): bit-true computing-memory (CMem) arrays, a
cycle-level RV32IMA pipeline with the CMem ISA extension, mesh NoC, DRAM
and LLC models, an int8 DNN substrate, the layer segmentation / mapping
execution framework, and drivers regenerating every table and figure of
the paper's evaluation.

Quickstart::

    from repro import ChipSimulator, resnet18_spec
    result = ChipSimulator().run(resnet18_spec(), "heuristic")
    print(result.latency_ms, result.throughput_per_watt)
"""

from repro.cmem import CMem, CMemConfig

# repro.core must initialize before repro.analysis: the system-scope
# analyzers (repro.analysis.plan / .system) import repro.sim, whose
# config/accounting modules import repro.core — loading analysis first
# would re-enter repro.sim.config mid-initialization.
from repro.core import (
    ChipConfig,
    ChipSimulator,
    MAICCChip,
    MAICCNode,
    MultiDNNScheduler,
    PerformanceModel,
    SegmentSimulator,
    TimingParams,
    simulate_quantized_graph,
    static_schedule,
    table4_workload,
)
from repro.analysis import lint_text, schedule_kernel, verify_program
from repro.energy import ChipConstants, area_breakdown
from repro.mapping import (
    CapacityModel,
    GreedyStrategy,
    HeuristicStrategy,
    SingleLayerStrategy,
)
from repro.nn import (
    build_resnet18,
    build_small_cnn,
    quantize_graph,
    resnet18_spec,
    run_quantized,
)
from repro.riscv import Core, CoreConfig, Pipeline, PipelineConfig, assemble
from repro.telemetry import NullSink, Telemetry

__version__ = "1.0.0"

__all__ = [
    "CMem",
    "CMemConfig",
    "ChipConfig",
    "ChipSimulator",
    "MAICCChip",
    "MAICCNode",
    "MultiDNNScheduler",
    "PerformanceModel",
    "SegmentSimulator",
    "TimingParams",
    "simulate_quantized_graph",
    "static_schedule",
    "table4_workload",
    "ChipConstants",
    "area_breakdown",
    "CapacityModel",
    "GreedyStrategy",
    "HeuristicStrategy",
    "SingleLayerStrategy",
    "build_resnet18",
    "build_small_cnn",
    "quantize_graph",
    "resnet18_spec",
    "run_quantized",
    "Core",
    "CoreConfig",
    "Pipeline",
    "PipelineConfig",
    "assemble",
    "lint_text",
    "schedule_kernel",
    "verify_program",
    "NullSink",
    "Telemetry",
    "__version__",
]
