"""Per-operation energy model of the CMem SRAM arrays.

The constants come straight from the paper's SPICE/Design-Compiler
measurements (Sec. 5, System Model), already scaled to 28 nm:

* vertical write into slice 0:           4.75 pJ
* Move.C (inter-slice vector move):     52.75 pJ
* MAC.C (one full vector MAC):          28.25 pJ
* remote row load/store (LoadRow.RC):   53.01 pJ
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class SRAMEnergy:
    """Energy per CMem operation in picojoules (paper Sec. 5)."""

    vertical_write_pj: float = 4.75
    move_pj: float = 52.75
    mac_pj: float = 28.25
    remote_row_pj: float = 53.01
    # Plain array accesses, estimated from the vertical-write figure: a
    # single-row read/write touches the same bit-lines once.
    read_row_pj: float = 4.75
    write_row_pj: float = 4.75


@dataclass
class EnergyAccumulator:
    """Mutable tally of CMem energy, in picojoules."""

    energy: SRAMEnergy = field(default_factory=SRAMEnergy)
    total_pj: float = 0.0
    by_op: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        # Built once: charge() sits on the per-MAC hot path.
        self._per_op = {
            "vertical_write": self.energy.vertical_write_pj,
            "move": self.energy.move_pj,
            "mac": self.energy.mac_pj,
            "remote_row": self.energy.remote_row_pj,
            "read_row": self.energy.read_row_pj,
            "write_row": self.energy.write_row_pj,
        }

    def charge(self, op: str, count: int = 1) -> None:
        amount = self._per_op[op] * count
        self.total_pj += amount
        self.by_op[op] = self.by_op.get(op, 0.0) + amount

    @property
    def total_joules(self) -> float:
        return self.total_pj * 1e-12
