"""Cycle-cost constants for SRAM operations at the array level.

The paper runs the whole chip at a conservative 1 GHz "as bit-line computing
requires longer latency than conventional memory accesses" (Sec. 6.3), so a
compute activation fits one cycle at that frequency.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class SRAMTiming:
    """Per-operation cycle costs of one SRAM array."""

    read_cycles: int = 1
    write_cycles: int = 1
    compute_activation_cycles: int = 1
    clock_ghz: float = 1.0

    def cycles_to_seconds(self, cycles: int) -> float:
        return cycles / (self.clock_ghz * 1e9)
