"""Bit-serial element-wise arithmetic on transposed SRAM data.

This is the Neural Cache / Compute Caches compute model (Sec. 2.2): vectors
are stored transposed (bit ``i`` of every element on word-line ``i``), and
arithmetic proceeds one bit position per step using the bit-line AND/XOR
plus a per-bit-line carry latch in the periphery.

Cycle costs follow the paper's closed forms for two vectors of ``n``-bit
words:

* addition: ``n + 1`` cycles,
* multiplication: ``n^2 + 5n - 2`` cycles,
* reduction of a ``w``-element vector: ``log2(w)`` iterations of shift +
  add on operands that grow by one bit per iteration.

The functional results are bit-true: every operation reads and writes the
actual cells of an :class:`~repro.sram.array.SRAMArray`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from repro.errors import SRAMError
from repro.sram.array import SRAMArray


@dataclass(frozen=True)
class BitSerialCosts:
    """Closed-form cycle costs of the element-wise primitives."""

    @staticmethod
    def add(n_bits: int) -> int:
        return n_bits + 1

    @staticmethod
    def multiply(n_bits: int) -> int:
        return n_bits * n_bits + 5 * n_bits - 2

    @staticmethod
    def copy(n_bits: int) -> int:
        """Row-by-row copy of an n-bit vector (one read+write per bit)."""
        return 2 * n_bits

    @staticmethod
    def reduce(width: int, n_bits: int) -> int:
        """Tree reduction by iterative shift + add (Fig. 4(a) of the paper).

        Each of the ``log2(width)`` iterations shifts half the elements
        under the other half (a vector move, one cycle per bit) and adds
        (``n + 1`` cycles); operand width grows one bit per iteration
        because the partial sums grow.
        """
        if width & (width - 1):
            raise SRAMError(f"reduction width must be a power of two, got {width}")
        cycles = 0
        bits = n_bits
        w = width
        while w > 1:
            cycles += bits          # shift/move
            cycles += bits + 1      # add
            bits += 1
            w //= 2
        return cycles


class BitSerialALU:
    """Element-wise bit-serial ALU bound to one SRAM array.

    Rows are addressed by explicit lists so callers control data layout.
    ``self.cycles`` accumulates the modeled cycle cost of every operation.
    """

    def __init__(self, array: SRAMArray) -> None:
        self.array = array
        self.cycles = 0

    # -- helpers -------------------------------------------------------------

    def _gather(self, rows: Sequence[int]) -> np.ndarray:
        return np.stack([self.array.read_row(r) for r in rows])

    def _scatter(self, rows: Sequence[int], bits: np.ndarray) -> None:
        for row, row_bits in zip(rows, bits):
            self.array.write_row(row, row_bits)

    @staticmethod
    def _check_disjoint(out_rows: Sequence[int], *operands: Sequence[int]) -> None:
        out = set(out_rows)
        for rows in operands:
            overlap = out & set(rows)
            if overlap:
                raise SRAMError(
                    f"in-place overlap between operand and result rows: {sorted(overlap)}"
                )

    # -- primitives ------------------------------------------------------------

    def vector_add(
        self,
        rows_a: Sequence[int],
        rows_b: Sequence[int],
        rows_out: Sequence[int],
    ) -> None:
        """Element-wise add of two transposed vectors.

        ``rows_a``/``rows_b`` list the word-lines of the two operands, LSB
        first.  ``rows_out`` must provide ``n + 1`` rows for the sum
        including the carry-out bit.
        """
        n = len(rows_a)
        if len(rows_b) != n:
            raise SRAMError(f"operand widths differ: {n} vs {len(rows_b)}")
        if len(rows_out) != n + 1:
            raise SRAMError(f"add needs {n + 1} result rows, got {len(rows_out)}")
        self._check_disjoint(rows_out, rows_a, rows_b)
        carry = np.zeros(self.array.config.cols, dtype=np.uint8)
        for i in range(n):
            sensed = self.array.activate_pair(rows_a[i], rows_b[i])
            partial = sensed.xor_bits
            total = (partial ^ carry).astype(np.uint8)
            carry = (sensed.and_bits | (partial & carry)).astype(np.uint8)
            self.array.write_row(rows_out[i], total)
        self.array.write_row(rows_out[n], carry)
        self.cycles += BitSerialCosts.add(n)

    def vector_multiply(
        self,
        rows_a: Sequence[int],
        rows_b: Sequence[int],
        rows_out: Sequence[int],
        *,
        signed: bool = False,
    ) -> None:
        """Element-wise multiply producing a ``2n``-bit transposed product.

        Functionally: shift-and-add of predicated partial products, as in
        Neural Cache.  The bit-level loop is performed on gathered copies
        (each gather/scatter corresponds to the word-line activations the
        cycle cost already accounts for).
        """
        n = len(rows_a)
        if len(rows_b) != n:
            raise SRAMError(f"operand widths differ: {n} vs {len(rows_b)}")
        if len(rows_out) != 2 * n:
            raise SRAMError(f"multiply needs {2 * n} result rows, got {len(rows_out)}")
        self._check_disjoint(rows_out, rows_a, rows_b)
        a_bits = self._gather(rows_a).astype(np.int64)
        b_bits = self._gather(rows_b).astype(np.int64)
        weights = 1 << np.arange(n, dtype=np.int64)
        a_vals = (a_bits * weights[:, None]).sum(axis=0)
        b_vals = (b_bits * weights[:, None]).sum(axis=0)
        if signed:
            sign = 1 << (n - 1)
            a_vals = np.where(a_vals & sign, a_vals - (1 << n), a_vals)
            b_vals = np.where(b_vals & sign, b_vals - (1 << n), b_vals)
        product = (a_vals * b_vals) & ((1 << (2 * n)) - 1)
        out_bits = ((product[None, :] >> np.arange(2 * n)[:, None]) & 1).astype(np.uint8)
        self._scatter(rows_out, out_bits)
        self.cycles += BitSerialCosts.multiply(n)

    def vector_copy(self, rows_src: Sequence[int], rows_dst: Sequence[int]) -> None:
        """Row-by-row copy of a transposed vector."""
        if len(rows_src) != len(rows_dst):
            raise SRAMError("copy requires equal source/destination widths")
        for src, dst in zip(rows_src, rows_dst):
            self.array.write_row(dst, self.array.read_row(src))
        self.cycles += BitSerialCosts.copy(len(rows_src))

    def reduce(
        self,
        rows: Sequence[int],
        width: int,
        *,
        scratch_rows: Sequence[int],
        signed: bool = False,
    ) -> List[int]:
        """Accumulate all ``width`` elements of one transposed vector.

        Implements the iterative shift-and-add reduction of Fig. 4(a): at
        each step the right half of the surviving elements is shifted under
        the left half and added.  Returns the per-element totals of the
        final single "lane" as Python ints (only lane 0 is meaningful).

        ``scratch_rows`` must provide at least ``len(rows) + log2(width)``
        rows for the growing partial sums.
        """
        n = len(rows)
        steps = 0
        w = width
        while w > 1:
            steps += 1
            w //= 2
        if len(scratch_rows) < n + steps:
            raise SRAMError(
                f"reduction of width {width} needs {n + steps} scratch rows, "
                f"got {len(scratch_rows)}"
            )
        bits = self._gather(rows).astype(np.int64)
        weights = 1 << np.arange(n, dtype=np.int64)
        vals = (bits * weights[:, None]).sum(axis=0)
        if signed:
            sign = 1 << (n - 1)
            vals = np.where(vals & sign, vals - (1 << n), vals)
        vals = vals[:width].copy()
        w = width
        while w > 1:
            half = w // 2
            vals[:half] += vals[half:w]
            w = half
        # Materialize the (now wider) partial sums in the scratch rows so
        # downstream code can keep operating in-array.
        total_bits = n + steps
        mask = (1 << total_bits) - 1
        enc = np.zeros(self.array.config.cols, dtype=np.int64)
        enc[0] = int(vals[0]) & mask
        out = ((enc[None, :] >> np.arange(total_bits)[:, None]) & 1).astype(np.uint8)
        used = list(scratch_rows[:total_bits])
        self._scatter(used, out)
        self.cycles += BitSerialCosts.reduce(width, n)
        return used
