"""The bit-line computing primitive.

When two word-lines are activated simultaneously, each bit-line (BL)
discharges iff *either* stored bit is 0, so the sense amplifier on BL reads
the AND of the two bits, and the one on the complementary bit-line (BLB)
reads the NOR (Jeloka et al. 2016; Aga et al., HPCA 2017).  All other
bitwise operations are derived from these two plus a write-back.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class BitlineResult:
    """What the sense amplifiers observe after a dual-row activation."""

    and_bits: np.ndarray
    nor_bits: np.ndarray

    @property
    def or_bits(self) -> np.ndarray:
        """OR = NOT(NOR); computed by an inverter after the BLB amplifier."""
        return (1 - self.nor_bits).astype(np.uint8)

    @property
    def xor_bits(self) -> np.ndarray:
        """XOR = OR AND NOT(AND); one extra gate in the periphery."""
        return (self.or_bits & (1 - self.and_bits)).astype(np.uint8)


def bitline_and_nor(row_a: np.ndarray, row_b: np.ndarray) -> BitlineResult:
    """Compute the (AND, NOR) pair sensed when both rows are activated."""
    a = np.asarray(row_a, dtype=np.uint8)
    b = np.asarray(row_b, dtype=np.uint8)
    and_bits = (a & b).astype(np.uint8)
    nor_bits = ((1 - a) & (1 - b)).astype(np.uint8)
    return BitlineResult(and_bits=and_bits, nor_bits=nor_bits)


class BatchBitlineResult:
    """Sense results of many dual-row activations, one plane per pair.

    ``and_planes``/``nor_planes`` are ``(num_pairs, cols)`` 0/1 matrices:
    row ``k`` is what the sense amplifiers observe for the ``k``-th
    activated pair.  Functionally identical to ``num_pairs`` sequential
    :class:`BitlineResult` observations.  Each plane set materializes on
    first access — the MAC engine only ever reads the AND planes, so the
    NOR side costs nothing unless someone senses BLB.
    """

    __slots__ = ("_a", "_b", "_and", "_nor")

    def __init__(self, rows_a: np.ndarray, rows_b: np.ndarray) -> None:
        self._a = rows_a
        self._b = rows_b
        self._and = None
        self._nor = None

    @property
    def and_planes(self) -> np.ndarray:
        if self._and is None:
            self._and = self._a & self._b
        return self._and

    @property
    def nor_planes(self) -> np.ndarray:
        if self._nor is None:
            self._nor = (1 - self._a) & (1 - self._b)
        return self._nor

    @property
    def num_pairs(self) -> int:
        return self._a.shape[0]

    @property
    def or_planes(self) -> np.ndarray:
        return (1 - self.nor_planes).astype(np.uint8)

    @property
    def xor_planes(self) -> np.ndarray:
        return (self.or_planes & (1 - self.and_planes)).astype(np.uint8)

    def pair(self, index: int) -> BitlineResult:
        """The ``index``-th activation as a scalar :class:`BitlineResult`."""
        return BitlineResult(
            and_bits=self.and_planes[index], nor_bits=self.nor_planes[index]
        )


def bitline_and_nor_batch(
    rows_a: np.ndarray, rows_b: np.ndarray
) -> BatchBitlineResult:
    """Vectorized :func:`bitline_and_nor` over stacked row planes."""
    a = np.asarray(rows_a, dtype=np.uint8)
    b = np.asarray(rows_b, dtype=np.uint8)
    return BatchBitlineResult(a, b)
