"""The bit-line computing primitive.

When two word-lines are activated simultaneously, each bit-line (BL)
discharges iff *either* stored bit is 0, so the sense amplifier on BL reads
the AND of the two bits, and the one on the complementary bit-line (BLB)
reads the NOR (Jeloka et al. 2016; Aga et al., HPCA 2017).  All other
bitwise operations are derived from these two plus a write-back.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class BitlineResult:
    """What the sense amplifiers observe after a dual-row activation."""

    and_bits: np.ndarray
    nor_bits: np.ndarray

    @property
    def or_bits(self) -> np.ndarray:
        """OR = NOT(NOR); computed by an inverter after the BLB amplifier."""
        return (1 - self.nor_bits).astype(np.uint8)

    @property
    def xor_bits(self) -> np.ndarray:
        """XOR = OR AND NOT(AND); one extra gate in the periphery."""
        return (self.or_bits & (1 - self.and_bits)).astype(np.uint8)


def bitline_and_nor(row_a: np.ndarray, row_b: np.ndarray) -> BitlineResult:
    """Compute the (AND, NOR) pair sensed when both rows are activated."""
    a = np.asarray(row_a, dtype=np.uint8)
    b = np.asarray(row_b, dtype=np.uint8)
    and_bits = (a & b).astype(np.uint8)
    nor_bits = ((1 - a) & (1 - b)).astype(np.uint8)
    return BitlineResult(and_bits=and_bits, nor_bits=nor_bits)
