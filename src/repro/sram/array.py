"""A bit-true model of an SRAM array with multi-row activation.

The array is a grid of single-bit cells addressed by (word-line row,
bit-line column).  A standard array is 256 x 256 (8 KB); MAICC's CMem
slices are 64 x 256 (2 KB).  Besides normal single-row read/write the model
supports the bit-line computing primitive of Jeloka et al.: activating two
word-lines simultaneously drives each bit-line pair to the AND (BL) and NOR
(BLB) of the two stored bits.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

from repro.errors import ConfigurationError, SRAMError
from repro.sram.bitline import (
    BatchBitlineResult,
    BitlineResult,
    bitline_and_nor,
    bitline_and_nor_batch,
)


@dataclass(frozen=True)
class SRAMArrayConfig:
    """Geometry of one SRAM array.

    ``rows`` is the number of word-lines, ``cols`` the number of bit-lines.
    ``eight_transistor`` marks 8T cells (used by CMem slice 0) which allow
    simultaneous, non-destructive read and write ports.
    """

    rows: int = 256
    cols: int = 256
    eight_transistor: bool = False

    def __post_init__(self) -> None:
        if self.rows < 1 or self.cols < 1:
            raise ConfigurationError(
                f"SRAM array must have positive dimensions, got {self.rows}x{self.cols}"
            )

    @property
    def capacity_bits(self) -> int:
        return self.rows * self.cols

    @property
    def capacity_bytes(self) -> int:
        return self.capacity_bits // 8


@dataclass
class SRAMStats:
    """Operation counters used by the energy model."""

    reads: int = 0
    writes: int = 0
    compute_activations: int = 0

    def merge(self, other: "SRAMStats") -> None:
        self.reads += other.reads
        self.writes += other.writes
        self.compute_activations += other.compute_activations


class SRAMArray:
    """Bit-true SRAM array with single-row access and dual-row computing."""

    def __init__(self, config: SRAMArrayConfig = SRAMArrayConfig()) -> None:
        self.config = config
        self._cells = np.zeros((config.rows, config.cols), dtype=np.uint8)
        self.stats = SRAMStats()

    # -- bounds checking ---------------------------------------------------

    def _check_row(self, row: int) -> None:
        if not 0 <= row < self.config.rows:
            raise SRAMError(
                f"row {row} out of range [0, {self.config.rows})"
            )

    def _check_cols(self, col_start: int, width: int) -> None:
        if col_start < 0 or col_start + width > self.config.cols:
            raise SRAMError(
                f"columns [{col_start}, {col_start + width}) out of range "
                f"[0, {self.config.cols})"
            )

    # -- conventional access -----------------------------------------------

    def read_row(self, row: int) -> np.ndarray:
        """Read one full word-line as a 0/1 vector (a copy)."""
        self._check_row(row)
        self.stats.reads += 1
        return self._cells[row].copy()

    def write_row(self, row: int, bits: Sequence[int]) -> None:
        """Write one full word-line from a 0/1 vector."""
        self._check_row(row)
        bits = np.asarray(bits, dtype=np.uint8)
        if bits.shape != (self.config.cols,):
            raise SRAMError(
                f"row write expects {self.config.cols} bits, got shape {bits.shape}"
            )
        if bits.size and bits.max() > 1:
            raise SRAMError("row bits must be 0/1")
        self.stats.writes += 1
        self._cells[row] = bits

    def read_bits(self, row: int, col_start: int, width: int) -> np.ndarray:
        """Read ``width`` bits of one row starting at ``col_start``."""
        self._check_row(row)
        self._check_cols(col_start, width)
        self.stats.reads += 1
        return self._cells[row, col_start : col_start + width].copy()

    def write_bits(self, row: int, col_start: int, bits: Sequence[int]) -> None:
        """Write a bit slice into one row starting at ``col_start``."""
        bits = np.asarray(bits, dtype=np.uint8)
        self._check_row(row)
        self._check_cols(col_start, bits.shape[0])
        self.stats.writes += 1
        self._cells[row, col_start : col_start + bits.shape[0]] = bits

    # -- vertical (8T) access ----------------------------------------------

    def _check_vertical(self, row_start: int, height: int) -> None:
        if not self.config.eight_transistor:
            raise SRAMError(
                "vertical access requires 8T cells (CMem slice 0 only)"
            )
        if row_start < 0 or row_start + height > self.config.rows:
            raise SRAMError(
                f"rows [{row_start}, {row_start + height}) out of range "
                f"[0, {self.config.rows})"
            )

    def write_vertical(self, row_start: int, col: int, bits: Sequence[int]) -> None:
        """Write one bit-column span through the 8T vertical port.

        The whole span goes through the port in a single access — one
        byte store of the transpose buffer — so it charges exactly one
        write, not one per bit.
        """
        bits = np.asarray(bits, dtype=np.uint8)
        self._check_vertical(row_start, bits.shape[0])
        self._check_cols(col, 1)
        self.stats.writes += 1
        self._cells[row_start : row_start + bits.shape[0], col] = bits

    def read_vertical(self, row_start: int, col: int, height: int) -> np.ndarray:
        """Read one bit-column span through the 8T vertical port (one read)."""
        self._check_vertical(row_start, height)
        self._check_cols(col, 1)
        self.stats.reads += 1
        return self._cells[row_start : row_start + height, col].copy()

    def write_vertical_planes(
        self, row_start: int, col_start: int, planes: np.ndarray
    ) -> None:
        """Bulk vertical store: ``planes`` is ``(height, width)``; column
        ``c`` lands in bit-lines ``col_start + c``, rows ``row_start..``.

        Each column is one vertical-port access, so this charges
        ``width`` writes — identical to ``width`` ``write_vertical`` calls.
        """
        planes = np.asarray(planes, dtype=np.uint8)
        if planes.ndim != 2:
            raise SRAMError(f"expected a 2-D bit matrix, got shape {planes.shape}")
        self._check_vertical(row_start, planes.shape[0])
        self._check_cols(col_start, planes.shape[1])
        self.stats.writes += planes.shape[1]
        self._cells[
            row_start : row_start + planes.shape[0],
            col_start : col_start + planes.shape[1],
        ] = planes

    def read_vertical_planes(
        self, row_start: int, col_start: int, height: int, width: int
    ) -> np.ndarray:
        """Bulk vertical load, inverse of :meth:`write_vertical_planes`.

        Charges ``width`` reads (one vertical-port access per column).
        """
        self._check_vertical(row_start, height)
        self._check_cols(col_start, width)
        self.stats.reads += width
        return self._cells[
            row_start : row_start + height, col_start : col_start + width
        ].copy()

    # -- bulk row access ----------------------------------------------------

    def read_rows(self, row_start: int, n_rows: int) -> np.ndarray:
        """Read ``n_rows`` consecutive word-lines as an ``(n_rows, cols)``
        matrix, charging one read per row (same as ``read_row`` in a loop).
        """
        if row_start < 0 or row_start + n_rows > self.config.rows:
            raise SRAMError(
                f"rows [{row_start}, {row_start + n_rows}) out of range "
                f"[0, {self.config.rows})"
            )
        self.stats.reads += n_rows
        return self._cells[row_start : row_start + n_rows].copy()

    def update_rows(self, row_start: int, col_start: int, planes: np.ndarray) -> None:
        """Read-modify-write a column span of consecutive rows.

        Row ``k`` of ``planes`` replaces columns
        ``[col_start, col_start + width)`` of word-line ``row_start + k``.
        Charges one read + one write per row — each row is sensed, merged
        and driven back, exactly like the ``read_row``/``write_row`` pairs
        this replaces.
        """
        planes = np.asarray(planes, dtype=np.uint8)
        if planes.ndim != 2:
            raise SRAMError(f"expected a 2-D bit matrix, got shape {planes.shape}")
        n_rows, width = planes.shape
        if row_start < 0 or row_start + n_rows > self.config.rows:
            raise SRAMError(
                f"rows [{row_start}, {row_start + n_rows}) out of range "
                f"[0, {self.config.rows})"
            )
        self._check_cols(col_start, width)
        if planes.size and planes.max() > 1:
            raise SRAMError("row bits must be 0/1")
        self.stats.reads += n_rows
        self.stats.writes += n_rows
        self._cells[row_start : row_start + n_rows, col_start : col_start + width] = (
            planes
        )

    def clear(self) -> None:
        """Zero the whole array (power-on state)."""
        self._cells[:] = 0

    # -- bit-line computing -------------------------------------------------

    def activate_pair(self, row_a: int, row_b: int) -> BitlineResult:
        """Activate two word-lines at once (Jeloka et al. bit-line computing).

        Returns the AND/NOR sensed on the bit-lines.  Activating the same
        row twice is rejected: real hardware would short a cell against
        itself and the architecture never needs it.
        """
        self._check_row(row_a)
        self._check_row(row_b)
        if row_a == row_b:
            raise SRAMError("cannot activate the same word-line twice")
        self.stats.compute_activations += 1
        return bitline_and_nor(self._cells[row_a], self._cells[row_b])

    def activate_pairs_batch(
        self,
        rows_a: Sequence[int],
        rows_b: Sequence[int],
        *,
        checked: bool = True,
    ) -> BatchBitlineResult:
        """Activate many word-line pairs, one sensed plane per pair.

        Functionally and statistically identical to ``len(rows_a)``
        sequential :meth:`activate_pair` calls — each pair still counts as
        one compute activation — but the AND/NOR planes are produced by a
        single NumPy broadcast instead of a Python loop per pair.

        ``checked=False`` skips the bounds/distinctness validation; only
        callers that have already validated the pair ranges (the MAC engine
        validates whole operand row ranges once per instruction) may use it.
        """
        rows_a = np.asarray(rows_a, dtype=np.intp)
        rows_b = np.asarray(rows_b, dtype=np.intp)
        if checked:
            if rows_a.shape != rows_b.shape or rows_a.ndim != 1:
                raise SRAMError(
                    f"pair index vectors must be 1-D and equal length, got "
                    f"{rows_a.shape} vs {rows_b.shape}"
                )
            if rows_a.size:
                lo = min(int(rows_a.min()), int(rows_b.min()))
                hi = max(int(rows_a.max()), int(rows_b.max()))
                if lo < 0 or hi >= self.config.rows:
                    raise SRAMError(
                        f"row index out of range [0, {self.config.rows})"
                    )
                if np.any(rows_a == rows_b):
                    raise SRAMError("cannot activate the same word-line twice")
        self.stats.compute_activations += rows_a.size
        return bitline_and_nor_batch(self._cells[rows_a], self._cells[rows_b])

    def activate_pairs_outer(
        self,
        rows_a: Sequence[int],
        rows_b: Sequence[int],
        *,
        checked: bool = True,
    ) -> tuple:
        """Activate every pair in ``rows_a x rows_b`` (the MAC.C pattern).

        One MAC.C walks the full cross product of its two operand row
        ranges, so the batch is expressed *factored*: the method returns
        the two stacked bit-plane blocks ``(planes_a, planes_b)`` — the
        AND plane of pair ``(i, j)`` is the elementwise product of
        ``planes_a[i]`` and ``planes_b[j]`` — and peripheral folds
        (:meth:`~repro.cmem.adder_tree.AdderTree.popcount_outer`) consume
        the factors directly instead of materializing all
        ``len(rows_a) * len(rows_b)`` planes.  Charges one compute
        activation per pair, identical to the equivalent
        :meth:`activate_pair` loop.
        """
        rows_a = np.asarray(rows_a, dtype=np.intp)
        rows_b = np.asarray(rows_b, dtype=np.intp)
        if checked:
            for rows in (rows_a, rows_b):
                if rows.ndim != 1:
                    raise SRAMError("row index vectors must be 1-D")
                if rows.size and (
                    int(rows.min()) < 0 or int(rows.max()) >= self.config.rows
                ):
                    raise SRAMError(
                        f"row index out of range [0, {self.config.rows})"
                    )
            if rows_a.size and rows_b.size and np.isin(rows_a, rows_b).any():
                raise SRAMError("cannot activate the same word-line twice")
        self.stats.compute_activations += rows_a.size * rows_b.size
        return self._cells[rows_a], self._cells[rows_b]

    # -- convenience -------------------------------------------------------

    def snapshot(self) -> np.ndarray:
        """Copy of the full cell matrix (debugging / tests only)."""
        return self._cells.copy()

    def load(self, cells: np.ndarray) -> None:
        """Bulk-load the full cell matrix (test fixture helper)."""
        cells = np.asarray(cells, dtype=np.uint8)
        if cells.shape != self._cells.shape:
            raise SRAMError(
                f"expected shape {self._cells.shape}, got {cells.shape}"
            )
        self._cells[:] = cells

    def rows_view(self, rows: Iterable[int]) -> np.ndarray:
        """Stacked copy of the given rows (used by the transpose unit)."""
        rows = list(rows)
        for row in rows:
            self._check_row(row)
        return self._cells[rows].copy()
