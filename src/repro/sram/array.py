"""A bit-true model of an SRAM array with multi-row activation.

The array is a grid of single-bit cells addressed by (word-line row,
bit-line column).  A standard array is 256 x 256 (8 KB); MAICC's CMem
slices are 64 x 256 (2 KB).  Besides normal single-row read/write the model
supports the bit-line computing primitive of Jeloka et al.: activating two
word-lines simultaneously drives each bit-line pair to the AND (BL) and NOR
(BLB) of the two stored bits.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

from repro.errors import ConfigurationError, SRAMError
from repro.sram.bitline import BitlineResult, bitline_and_nor


@dataclass(frozen=True)
class SRAMArrayConfig:
    """Geometry of one SRAM array.

    ``rows`` is the number of word-lines, ``cols`` the number of bit-lines.
    ``eight_transistor`` marks 8T cells (used by CMem slice 0) which allow
    simultaneous, non-destructive read and write ports.
    """

    rows: int = 256
    cols: int = 256
    eight_transistor: bool = False

    def __post_init__(self) -> None:
        if self.rows < 1 or self.cols < 1:
            raise ConfigurationError(
                f"SRAM array must have positive dimensions, got {self.rows}x{self.cols}"
            )

    @property
    def capacity_bits(self) -> int:
        return self.rows * self.cols

    @property
    def capacity_bytes(self) -> int:
        return self.capacity_bits // 8


@dataclass
class SRAMStats:
    """Operation counters used by the energy model."""

    reads: int = 0
    writes: int = 0
    compute_activations: int = 0

    def merge(self, other: "SRAMStats") -> None:
        self.reads += other.reads
        self.writes += other.writes
        self.compute_activations += other.compute_activations


class SRAMArray:
    """Bit-true SRAM array with single-row access and dual-row computing."""

    def __init__(self, config: SRAMArrayConfig = SRAMArrayConfig()) -> None:
        self.config = config
        self._cells = np.zeros((config.rows, config.cols), dtype=np.uint8)
        self.stats = SRAMStats()

    # -- bounds checking ---------------------------------------------------

    def _check_row(self, row: int) -> None:
        if not 0 <= row < self.config.rows:
            raise SRAMError(
                f"row {row} out of range [0, {self.config.rows})"
            )

    def _check_cols(self, col_start: int, width: int) -> None:
        if col_start < 0 or col_start + width > self.config.cols:
            raise SRAMError(
                f"columns [{col_start}, {col_start + width}) out of range "
                f"[0, {self.config.cols})"
            )

    # -- conventional access -----------------------------------------------

    def read_row(self, row: int) -> np.ndarray:
        """Read one full word-line as a 0/1 vector (a copy)."""
        self._check_row(row)
        self.stats.reads += 1
        return self._cells[row].copy()

    def write_row(self, row: int, bits: Sequence[int]) -> None:
        """Write one full word-line from a 0/1 vector."""
        self._check_row(row)
        bits = np.asarray(bits, dtype=np.uint8)
        if bits.shape != (self.config.cols,):
            raise SRAMError(
                f"row write expects {self.config.cols} bits, got shape {bits.shape}"
            )
        if bits.size and bits.max() > 1:
            raise SRAMError("row bits must be 0/1")
        self.stats.writes += 1
        self._cells[row] = bits

    def read_bits(self, row: int, col_start: int, width: int) -> np.ndarray:
        """Read ``width`` bits of one row starting at ``col_start``."""
        self._check_row(row)
        self._check_cols(col_start, width)
        self.stats.reads += 1
        return self._cells[row, col_start : col_start + width].copy()

    def write_bits(self, row: int, col_start: int, bits: Sequence[int]) -> None:
        """Write a bit slice into one row starting at ``col_start``."""
        bits = np.asarray(bits, dtype=np.uint8)
        self._check_row(row)
        self._check_cols(col_start, bits.shape[0])
        self.stats.writes += 1
        self._cells[row, col_start : col_start + bits.shape[0]] = bits

    def clear(self) -> None:
        """Zero the whole array (power-on state)."""
        self._cells[:] = 0

    # -- bit-line computing -------------------------------------------------

    def activate_pair(self, row_a: int, row_b: int) -> BitlineResult:
        """Activate two word-lines at once (Jeloka et al. bit-line computing).

        Returns the AND/NOR sensed on the bit-lines.  Activating the same
        row twice is rejected: real hardware would short a cell against
        itself and the architecture never needs it.
        """
        self._check_row(row_a)
        self._check_row(row_b)
        if row_a == row_b:
            raise SRAMError("cannot activate the same word-line twice")
        self.stats.compute_activations += 1
        return bitline_and_nor(self._cells[row_a], self._cells[row_b])

    # -- convenience -------------------------------------------------------

    def snapshot(self) -> np.ndarray:
        """Copy of the full cell matrix (debugging / tests only)."""
        return self._cells.copy()

    def load(self, cells: np.ndarray) -> None:
        """Bulk-load the full cell matrix (test fixture helper)."""
        cells = np.asarray(cells, dtype=np.uint8)
        if cells.shape != self._cells.shape:
            raise SRAMError(
                f"expected shape {self._cells.shape}, got {cells.shape}"
            )
        self._cells[:] = cells

    def rows_view(self, rows: Iterable[int]) -> np.ndarray:
        """Stacked copy of the given rows (used by the transpose unit)."""
        rows = list(rows)
        for row in rows:
            self._check_row(row)
        return self._cells[rows].copy()
