"""SRAM substrate: bit-cell arrays, bit-line computing, bit-serial arithmetic.

This package models the in-SRAM computing technology MAICC builds on
(Sec. 2.2 of the paper): 6T arrays where activating two word-lines at once
yields the AND and NOR of the two rows on the bit-lines, and the bit-serial
element-wise arithmetic of Compute Caches / Neural Cache built on top.
"""

from repro.sram.array import SRAMArray, SRAMArrayConfig
from repro.sram.bitline import BitlineResult, bitline_and_nor
from repro.sram.bitserial import BitSerialALU, BitSerialCosts
from repro.sram.timing import SRAMTiming
from repro.sram.energy import SRAMEnergy

__all__ = [
    "SRAMArray",
    "SRAMArrayConfig",
    "BitlineResult",
    "bitline_and_nor",
    "BitSerialALU",
    "BitSerialCosts",
    "SRAMTiming",
    "SRAMEnergy",
]
