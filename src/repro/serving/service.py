"""Partition service model: latency and re-mapping cost vs partition size.

The elastic partition manager needs two numbers the offline stack already
knows how to compute:

* ``latency_ms(network, cores)`` — the model's inference latency inside a
  ``cores``-sized partition, obtained by re-running the full mapping
  pipeline (:mod:`repro.mapping.allocation` via the segment planner, then
  the streaming simulator) through
  :meth:`repro.core.multi_dnn.MultiDNNScheduler.simulate_partition`.
  Results are memoized per ``(network, cores)`` — resizes revisit the
  same handful of share sizes, and :class:`NetworkSpec` is hashable.

* ``restage_ms(network)`` — the sim-time cost of re-staging the model's
  weights after its partition moved or changed size.  Weights stream
  from DRAM at the perf model's aggregate filter-load bandwidth with no
  compute to overlap behind (the partition is idle mid-resize), so the
  full ``weight_bytes / filter_load_bw`` cycles are charged.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.core.multi_dnn import MultiDNNScheduler
from repro.core.simulator import NetworkRunResult
from repro.mapping.placement import NodePlacement, zigzag_placement
from repro.nn.workloads import NetworkSpec


class ServiceModel:
    """Caches per-partition-size simulations of each tenant's network."""

    def __init__(self, scheduler: Optional[MultiDNNScheduler] = None) -> None:
        self.scheduler = scheduler or MultiDNNScheduler()
        self._runs: Dict[Tuple[NetworkSpec, int], NetworkRunResult] = {}

    @property
    def array_size(self) -> int:
        return self.scheduler.array_size

    def minimum_cores(self, network: NetworkSpec) -> int:
        return self.scheduler.minimum_cores(network)

    def partition_run(self, network: NetworkSpec, cores: int) -> NetworkRunResult:
        """The memoized simulation of ``network`` on ``cores`` cores."""
        key = (network, cores)
        run = self._runs.get(key)
        if run is None:
            run = self._runs[key] = self.scheduler.simulate_partition(network, cores)
        return run

    def latency_ms(self, network: NetworkSpec, cores: int) -> float:
        return self.partition_run(network, cores).latency_ms

    def placements(
        self, network: NetworkSpec, cores: int, start_offset: int
    ) -> List[NodePlacement]:
        """Zig-zag placements of the model's segments inside its region."""
        run = self.partition_run(network, cores)
        return [
            zigzag_placement(seg_run.segment, start_offset=start_offset)
            for seg_run in run.runs
        ]

    def restage_ms(self, network: NetworkSpec) -> float:
        """Sim-time to re-stage the model's weights after a resize."""
        sim = self.scheduler.simulator
        weight_bytes = sum(
            spec.weight_count * spec.n_bits / 8 for spec in network
        )
        cycles = weight_bytes / sim.params.filter_load_bw
        return cycles * sim.chip.constants.cycle_seconds * 1e3
