"""Partition service model: latency and re-mapping cost vs partition size.

The elastic partition manager needs two numbers the offline stack already
knows how to compute:

* ``latency_ms(network, cores)`` — the model's inference latency inside a
  ``cores``-sized partition, obtained by re-running the full mapping
  pipeline (:mod:`repro.mapping.allocation` via the segment planner, then
  the selected ``repro.sim`` backend) through
  :meth:`repro.core.multi_dnn.MultiDNNScheduler.simulate_partition`.
  Results are memoized per ``(network, cores, backend)`` in a bounded LRU
  — resizes revisit the same handful of share sizes, and
  :class:`NetworkSpec` is hashable.  Cache traffic is observable at
  ``serving/service/cache_hit`` / ``serving/service/cache_miss``.

* ``restage_ms(network)`` — the sim-time cost of re-staging the model's
  weights after its partition moved or changed size.  Weights stream
  from DRAM at the perf model's aggregate filter-load bandwidth with no
  compute to overlap behind (the partition is idle mid-resize), so the
  full ``weight_bytes / filter_load_bw`` cycles are charged.

SLO accounting always reads the model's authoritative tier (the
``backend`` the service was built with, ``streaming`` by default);
:meth:`estimate_latency_ms` exposes the cheap ``analytic`` tier for
control decisions that only need relative orderings (the elastic
policy's resize gate).
"""

from __future__ import annotations

from collections import OrderedDict
from typing import List, Optional, Tuple

from repro import telemetry
from repro.core.multi_dnn import MultiDNNScheduler
from repro.core.simulator import NetworkRunResult
from repro.mapping.placement import NodePlacement, zigzag_placement
from repro.nn.workloads import NetworkSpec

#: Default bound on memoized (network, cores, backend) simulations.  A
#: serving scenario revisits a few share sizes per tenant; 256 entries is
#: generous for tens of tenants while bounding long-lived services.
DEFAULT_CACHE_SIZE = 256

_CacheKey = Tuple[NetworkSpec, int, str, int]


class ServiceModel:
    """Caches per-partition-size simulations of each tenant's network."""

    def __init__(
        self,
        scheduler: Optional[MultiDNNScheduler] = None,
        *,
        backend: Optional[str] = None,
        cache_size: int = DEFAULT_CACHE_SIZE,
    ) -> None:
        self.scheduler = scheduler or MultiDNNScheduler()
        #: Authoritative tier for SLO accounting (scheduler's tier when
        #: unset — ``streaming`` on the default path).
        self.backend = backend or self.scheduler.backend
        self.cache_size = cache_size
        self._runs: "OrderedDict[_CacheKey, NetworkRunResult]" = OrderedDict()

    @property
    def array_size(self) -> int:
        return self.scheduler.array_size

    def minimum_cores(self, network: NetworkSpec) -> int:
        return self.scheduler.minimum_cores(network)

    def partition_run(
        self,
        network: NetworkSpec,
        cores: int,
        *,
        backend: Optional[str] = None,
        batch_requests: int = 1,
    ) -> NetworkRunResult:
        """The memoized simulation of ``network`` on ``cores`` cores.

        ``backend`` overrides the service's authoritative tier for this
        lookup; ``batch_requests`` simulates a weight-stationary request
        batch.  Both are part of the cache key."""
        tier = backend or self.backend
        key = (network, cores, tier, batch_requests)
        sink = telemetry.current()
        run = self._runs.get(key)
        if run is not None:
            self._runs.move_to_end(key)
            if sink.enabled:
                sink.registry.counter("serving/service/cache_hit").inc()
            return run
        if sink.enabled:
            sink.registry.counter("serving/service/cache_miss").inc()
        run = self.scheduler.simulate_partition(
            network, cores, backend=tier, batch_requests=batch_requests
        )
        self._runs[key] = run
        while len(self._runs) > self.cache_size:
            self._runs.popitem(last=False)
        return run

    def latency_ms(self, network: NetworkSpec, cores: int) -> float:
        """Authoritative-tier latency (what SLO accounting bills)."""
        return self.partition_run(network, cores).latency_ms

    def batched_latency_ms(
        self, network: NetworkSpec, cores: int, batch_requests: int
    ) -> float:
        """Authoritative-tier latency of a whole weight-stationary request
        batch — filters load and segments stage once, so this grows
        sublinearly in ``batch_requests``."""
        return self.partition_run(
            network, cores, batch_requests=batch_requests
        ).latency_ms

    def estimate_latency_ms(self, network: NetworkSpec, cores: int) -> float:
        """Cheap analytic-tier latency for control decisions.

        A conservative upper bound on the streaming tier (see
        ``repro.sim.xcheck``); suitable for comparing partition sizes,
        not for billing SLOs.
        """
        return self.partition_run(network, cores, backend="analytic").latency_ms

    def placements(
        self, network: NetworkSpec, cores: int, start_offset: int
    ) -> List[NodePlacement]:
        """Zig-zag placements of the model's segments inside its region."""
        run = self.partition_run(network, cores)
        return [
            zigzag_placement(seg_run.segment, start_offset=start_offset)
            for seg_run in run.runs
        ]

    def restage_ms(self, network: NetworkSpec) -> float:
        """Sim-time to re-stage the model's weights after a resize."""
        sim = self.scheduler.simulator
        weight_bytes = sum(
            spec.weight_count * spec.n_bits / 8 for spec in network
        )
        cycles = weight_bytes / sim.params.filter_load_bw
        return cycles * sim.chip.constants.cycle_seconds * 1e3
