"""Admission control: bounded per-tenant request queues.

Each tenant owns one :class:`AdmissionQueue`.  Admission is never silent:
:meth:`AdmissionQueue.offer` either admits the request or returns the
request that was *shed* — the incoming one under FIFO, or the
latest-deadline request (queued or incoming) under EDF, so an urgent
request can displace a lax one.  Shed counts are kept per queue and
surfaced through the SLO reports and telemetry; saturation is graceful
degradation, not an error.

Ordering inside a queue is deterministic: FIFO pops by
``(arrival, seq)``; EDF pops by ``(deadline, arrival, seq)`` where
``seq`` is the global admission sequence number stamped by the
simulator.
"""

from __future__ import annotations

import heapq
from typing import List, Optional, Tuple

from repro.errors import SimulationError
from repro.serving.tenancy import Request

#: Queue disciplines understood by :class:`AdmissionQueue`.
DISCIPLINES = ("fifo", "edf")

_Key = Tuple[float, float, int]


def _key(discipline: str, request: Request) -> _Key:
    if discipline == "fifo":
        return (request.arrival_ms, request.arrival_ms, request.seq)
    return (request.deadline_ms, request.arrival_ms, request.seq)


class AdmissionQueue:
    """A bounded priority queue of one tenant's waiting requests."""

    def __init__(
        self,
        *,
        capacity: Optional[int] = None,
        discipline: str = "fifo",
    ) -> None:
        if discipline not in DISCIPLINES:
            raise SimulationError(
                f"unknown queue discipline {discipline!r}; choose from {DISCIPLINES}"
            )
        if capacity is not None and capacity < 1:
            raise SimulationError(f"queue capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self.discipline = discipline
        self.shed_count = 0
        self._heap: List[Tuple[_Key, Request]] = []

    def __len__(self) -> int:
        return len(self._heap)

    @property
    def depth(self) -> int:
        return len(self._heap)

    def offer(self, request: Request) -> Optional[Request]:
        """Admit ``request`` or shed one; returns the shed request (or None).

        FIFO sheds the incoming request when full.  EDF sheds whichever
        of (queued requests, incoming request) has the *latest* deadline,
        because serving it is least likely to make any deadline.
        """
        if self.capacity is None or len(self._heap) < self.capacity:
            heapq.heappush(self._heap, (_key(self.discipline, request), request))
            return None
        self.shed_count += 1
        if self.discipline == "fifo":
            return request
        worst_i = max(range(len(self._heap)), key=lambda i: self._heap[i][0])
        if self._heap[worst_i][0] <= _key(self.discipline, request):
            return request
        victim = self._heap[worst_i][1]
        self._heap[worst_i] = (_key(self.discipline, request), request)
        heapq.heapify(self._heap)
        return victim

    def peek(self) -> Optional[Request]:
        return self._heap[0][1] if self._heap else None

    def peek_key(self) -> Optional[_Key]:
        return self._heap[0][0] if self._heap else None

    def pop(self) -> Request:
        if not self._heap:
            raise SimulationError("pop from an empty admission queue")
        return heapq.heappop(self._heap)[1]
