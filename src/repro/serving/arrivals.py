"""Load generators: reproducible per-tenant request arrival streams.

Every process yields arrival times in milliseconds of simulation time.
Two modes exist:

* **open loop** — arrivals are generated independently of completions
  (:class:`PeriodicArrivals`, :class:`PoissonArrivals`,
  :class:`TraceArrivals`).  The next arrival follows from the previous
  arrival alone, so an overloaded server accumulates a queue instead of
  slowing the offered load (the regime where shedding matters).
* **closed loop** — the next request is issued only after the previous
  one completes, plus a think time (:class:`ClosedLoopArrivals`).  The
  offered load self-throttles, modelling a pipeline that waits for its
  result before submitting the next frame.

All randomness comes from a per-process seeded :class:`random.Random`,
re-seeded by :meth:`ArrivalProcess.reset` at the start of every serving
run, so two runs over the same specs produce byte-identical metrics.
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence

from repro.errors import SimulationError


class ArrivalProcess:
    """Interface every load generator implements.

    ``closed_loop`` selects which of the two generation hooks the serving
    simulator drives: open-loop processes advance via :meth:`next_ms`
    after each arrival; closed-loop processes advance via
    :meth:`after_completion_ms` after each completion.
    """

    closed_loop: bool = False

    def reset(self) -> None:
        """Rewind to the first arrival (re-seeds any internal RNG)."""

    def first_ms(self) -> Optional[float]:
        """Time of the first arrival, or ``None`` for an empty stream."""
        raise NotImplementedError

    def initial_arrivals(self) -> List[float]:
        """Arrival times seeded before the run starts.

        Open-loop processes seed one arrival (:meth:`first_ms`) and chain
        the rest through :meth:`next_ms`.  Closed-loop processes with many
        concurrent users (e.g. :class:`repro.fleet.traffic.UserGroupArrivals`)
        override this to seed one arrival per user — every completion then
        schedules that chain's next request, so ``len(initial_arrivals())``
        chains stay in flight.
        """
        first = self.first_ms()
        return [] if first is None else [first]

    def next_ms(self, last_arrival_ms: float) -> Optional[float]:
        """Open loop: the arrival after the one at ``last_arrival_ms``."""
        raise NotImplementedError

    def after_completion_ms(self, completion_ms: float) -> Optional[float]:
        """Closed loop: the arrival following a completion at ``completion_ms``."""
        raise NotImplementedError


class PeriodicArrivals(ArrivalProcess):
    """A fixed-rate sensor: one frame every ``period_ms`` from ``offset_ms``."""

    def __init__(self, period_ms: float, *, offset_ms: float = 0.0) -> None:
        if period_ms <= 0:
            raise SimulationError(f"period must be positive, got {period_ms}")
        if offset_ms < 0:
            raise SimulationError(f"offset must be >= 0, got {offset_ms}")
        self.period_ms = period_ms
        self.offset_ms = offset_ms

    @property
    def rate_hz(self) -> float:
        return 1000.0 / self.period_ms

    def first_ms(self) -> Optional[float]:
        return self.offset_ms

    def next_ms(self, last_arrival_ms: float) -> Optional[float]:
        return last_arrival_ms + self.period_ms


class PoissonArrivals(ArrivalProcess):
    """Open-loop Poisson arrivals at ``rate_hz``, seeded for replay."""

    def __init__(self, rate_hz: float, *, seed: int = 0) -> None:
        if rate_hz <= 0:
            raise SimulationError(f"rate must be positive, got {rate_hz}")
        self.rate_hz = rate_hz
        self.seed = seed
        self._rng = random.Random(seed)

    def reset(self) -> None:
        self._rng = random.Random(self.seed)

    def _gap_ms(self) -> float:
        return self._rng.expovariate(self.rate_hz) * 1000.0

    def first_ms(self) -> Optional[float]:
        return self._gap_ms()

    def next_ms(self, last_arrival_ms: float) -> Optional[float]:
        return last_arrival_ms + self._gap_ms()


class TraceArrivals(ArrivalProcess):
    """Replays an explicit, sorted list of arrival times (ms)."""

    def __init__(self, times_ms: Sequence[float]) -> None:
        times = [float(t) for t in times_ms]
        if any(t < 0 for t in times):
            raise SimulationError("trace arrival times must be >= 0")
        if times != sorted(times):
            raise SimulationError("trace arrival times must be sorted")
        self.times_ms = times
        self._cursor = 0

    def reset(self) -> None:
        self._cursor = 0

    def _emit(self) -> Optional[float]:
        if self._cursor >= len(self.times_ms):
            return None
        t = self.times_ms[self._cursor]
        self._cursor += 1
        return t

    def first_ms(self) -> Optional[float]:
        return self._emit()

    def next_ms(self, last_arrival_ms: float) -> Optional[float]:
        return self._emit()


class ClosedLoopArrivals(ArrivalProcess):
    """Trace-driven closed loop: each completion triggers the next request
    after the next think time from ``think_ms`` (cycled).

    The first request arrives at ``offset_ms``.  ``think_ms`` may be a
    single float (constant think time) or a sequence that is replayed in
    order and wrapped around, so a measured think-time trace drives the
    loop deterministically.
    """

    closed_loop = True

    def __init__(
        self,
        think_ms: "float | Sequence[float]",
        *,
        offset_ms: float = 0.0,
    ) -> None:
        thinks = [float(t) for t in ([think_ms] if isinstance(think_ms, (int, float)) else think_ms)]
        if not thinks:
            raise SimulationError("think-time trace must be non-empty")
        if any(t < 0 for t in thinks):
            raise SimulationError("think times must be >= 0")
        if offset_ms < 0:
            raise SimulationError(f"offset must be >= 0, got {offset_ms}")
        self.think_ms = thinks
        self.offset_ms = offset_ms
        self._cursor = 0

    def reset(self) -> None:
        self._cursor = 0

    def first_ms(self) -> Optional[float]:
        return self.offset_ms

    def after_completion_ms(self, completion_ms: float) -> Optional[float]:
        think = self.think_ms[self._cursor % len(self.think_ms)]
        self._cursor += 1
        return completion_ms + think
