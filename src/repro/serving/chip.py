"""The per-chip serving engine: one chip's queues, servers, and SLOs.

:class:`ChipHandle` is the machinery that used to live as closures inside
:meth:`repro.serving.simulator.ServingSimulator.run`, extracted so a chip
can be driven *headless* by an external router (``repro.fleet``): the
handle owns the admission queues, server states, dispatch/complete loop,
attribution, and SLO accounting, while the caller owns the event queue
and decides where arrivals come from.

Two driving modes share every line of the service path:

* **self-driven** — :meth:`start` seeds each tenant's arrival process
  (open-loop chains advance themselves; closed-loop chains re-arm on
  completion) and schedules the policy's control ticks.  This is exactly
  the historical ``ServingSimulator.run`` behaviour, pinned byte-identical
  by ``tests/serving/test_chip_handle.py``.
* **router-driven** — the caller schedules :meth:`inject` calls on the
  shared event queue (or pre-routes arrivals into per-tenant
  :class:`~repro.serving.arrivals.TraceArrivals`); the handle never
  generates open-loop arrivals of its own.

``halt_ms`` models a chip crash: at that instant the chip stops serving —
every queued request and every in-flight batch that would have finished
after the halt is counted in :attr:`TenantReport.failed` (accounted,
never silently dropped), and closed-loop chains on the chip die with it.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.obs.monitor import DEFAULT_WINDOW_MS, AlertEvent, SLOMonitor
from repro.obs.timeline import AttributionTable
from repro.serving.policies import ResizeAction, ServingPolicy, TenantObservation
from repro.serving.queues import AdmissionQueue
from repro.serving.slo import ResizeEvent, ServingRunResult, TenantReport
from repro.serving.tenancy import Request, TenantSpec
from repro.telemetry import TelemetrySink
from repro.utils.events import EventQueue


@dataclass
class _ServerState:
    """One server's occupancy, resize gate, and accumulated busy time."""

    busy: bool = False
    free_at_ms: float = 0.0       # completion time of the in-flight request
    stall_until_ms: float = 0.0   # weight re-staging gate after a resize
    busy_ms: float = 0.0
    retry_scheduled: bool = False  # a post-stall dispatch is already queued
    tenants: List[str] = field(default_factory=list)


class ChipHandle:
    """One chip's serving mechanics, bound to an external event queue.

    Construct via :meth:`repro.serving.simulator.ServingSimulator.open`
    (which validates tenants and runs the policy preflight) rather than
    directly.  The handle is single-run: :meth:`finish` closes the
    monitor and attribution and returns the
    :class:`~repro.serving.slo.ServingRunResult`.
    """

    def __init__(
        self,
        *,
        policy: ServingPolicy,
        tenants: Sequence[TenantSpec],
        duration_ms: float,
        queue: EventQueue,
        discipline: str,
        batch_requests: int,
        attribution: bool,
        collect_timelines: bool,
        monitor: Optional[SLOMonitor],
        telemetry: TelemetrySink,
        halt_ms: Optional[float] = None,
    ) -> None:
        self.policy = policy
        self.duration_ms = duration_ms
        self.queue = queue
        self.discipline = discipline
        self.batch_requests = batch_requests
        self.halt_ms = halt_ms
        self.halted = False
        self.specs: Dict[str, TenantSpec] = {t.name: t for t in tenants}
        self.names: List[str] = [t.name for t in tenants]
        self.reports: Dict[str, TenantReport] = {
            t.name: TenantReport(tenant=t.name) for t in tenants
        }
        self.queues: Dict[str, AdmissionQueue] = {
            t.name: AdmissionQueue(
                capacity=t.queue_capacity, discipline=discipline
            )
            for t in tenants
        }
        self.servers: Dict[str, _ServerState] = {}
        for tenant in tenants:
            server = policy.server_of(tenant.name)
            state = self.servers.setdefault(server, _ServerState())
            state.tenants.append(tenant.name)
        self.resizes: List[ResizeEvent] = []
        self.window_arrivals: Dict[str, int] = {t.name: 0 for t in tenants}
        self.arrival_index: Dict[str, int] = {t.name: 0 for t in tenants}
        self.admission_seq = itertools.count()
        self.sink = telemetry
        self.table: Optional[AttributionTable] = (
            AttributionTable() if attribution else None
        )
        self.collect = self.table is not None and (
            collect_timelines or self.sink.enabled
        )
        #: Dispatch-side attribution cache: tenant -> list indexed by
        #: batch size of ``[(key, template), billed_dispatches]`` slots
        #: for the tenant's current generation (see AttributionTable).
        self.attr_cache: Dict[str, list] = {}
        self.monitor = monitor
        self.window = monitor.config.window_ms if monitor else DEFAULT_WINDOW_MS
        self.alerts: List[AlertEvent] = []
        self.pending_alerts: List[AlertEvent] = []
        #: Last chip-wide degradation factor seen at dispatch; a change
        #: invalidates every tenant's attribution templates (their
        #: service windows changed shape-preserving scale, but the cached
        #: absolute durations are stale).
        self._last_scale = 1.0

    # -- telemetry helpers -----------------------------------------------------

    def _count(self, path: str) -> None:
        if self.sink.enabled:
            assert self.sink.registry is not None
            self.sink.registry.counter(path).inc()

    def _poll_monitor(self, now: float) -> None:
        monitor = self.monitor
        if monitor is None:
            return
        fresh = monitor.poll(now)
        if not fresh:
            return
        self.alerts.extend(fresh)
        self.pending_alerts.extend(fresh)
        if self.sink.enabled:
            assert self.sink.trace is not None
            for alert in fresh:
                self.sink.trace.instant(
                    "serving/slo",
                    f"{alert.kind}/{alert.tenant}",
                    alert.time_ms,
                    args=alert.as_dict(),
                )

    def _flush_attribution(self, tenant: str) -> None:
        per = self.attr_cache.pop(tenant, None)
        if per is None:
            return
        table = self.table
        assert table is not None
        for n, slot in enumerate(per):
            if slot is not None and slot[1]:
                # Each billed dispatch of size n completed n requests.
                table.record(slot[0][0], slot[1] * n)

    # -- service ---------------------------------------------------------------

    def _pick(self, server: str) -> Optional[Request]:
        best_name: Optional[str] = None
        best_rank: Optional[tuple] = None
        for name in self.servers[server].tenants:
            key = self.queues[name].peek_key()
            if key is None:
                continue
            rank = (-self.specs[name].priority, key)
            if best_rank is None or rank < best_rank:
                best_rank = rank
                best_name = name
        if best_name is None:
            return None
        return self.queues[best_name].pop()

    def dispatch(self, server: str) -> None:
        """Serve the best queued request of ``server``'s tenants, if free."""
        if self.halted:
            return
        state = self.servers[server]
        if state.busy:
            return
        queue = self.queue
        now = queue.now
        if state.stall_until_ms > now:
            # The partition is mid-resize: service may only start when
            # re-staging ends.  The wait is real sim-time — the retry
            # event carries the dequeue forward, never drops it.
            if not state.retry_scheduled:
                state.retry_scheduled = True

                def resume() -> None:
                    state.retry_scheduled = False
                    self.dispatch(server)

                queue.schedule(
                    state.stall_until_ms, resume, tag="serving/resume",
                    actor=f"server/{server}",
                    writes=(f"server/{server}",),
                )
            return
        request = self._pick(server)
        if request is None:
            return
        # Weight-stationary batching: pull further queued requests of
        # the *same tenant* (same weights) into this dispatch, up to
        # the batch limit; they serve back to back with staging paid
        # once.  batch_requests=1 keeps the historical loop exactly.
        batch = [request]
        tenant_queue = self.queues[request.tenant]
        while (
            len(batch) < self.batch_requests
            and tenant_queue.peek_key() is not None
        ):
            batch.append(tenant_queue.pop())
        for req in batch:
            req.start_ms = now
        if len(batch) == 1:
            service = self.policy.service_ms(request.tenant)
        else:
            service = self.policy.batched_service_ms(
                request.tenant, len(batch)
            )
        scale = self.policy.service_scale(now)
        if scale != 1.0:
            service *= scale
        table = self.table
        if table is not None:
            if scale != self._last_scale:
                # A degradation step changed every service window; the
                # cached absolute phase durations no longer apply.
                for name in list(self.attr_cache):
                    self._flush_attribution(name)
                    table.invalidate(name)
                self._last_scale = scale
            # Snapshot the dispatch-time template key: a resize
            # between now and completion must not re-attribute the
            # in-flight batch.  The steady state is allocation-free
            # (dict subscript + two list indexes + integer bump);
            # the table is only touched on a template miss and when
            # a generation flushes.
            n = len(batch)
            try:
                per = self.attr_cache[request.tenant]
            except KeyError:
                per = self.attr_cache[request.tenant] = [None] * (
                    self.batch_requests + 1
                )
            slot = per[n]
            if slot is None:
                slot = per[n] = [
                    table.lookup(
                        request.tenant,
                        n,
                        lambda: self.policy.service_phases(
                            request.tenant, n
                        ),
                        service,
                    ),
                    0,
                ]
            attr = slot[0]
            finish = now + service
            if finish <= self.duration_ms:
                # Billing happens here rather than at completion:
                # the queue drains every event, so a dispatch whose
                # finish lands inside the run always completes, and
                # all n requests of the batch finish together.
                slot[1] += 1
        else:
            attr = None
            finish = now + service
        state.busy = True
        state.free_at_ms = finish
        if self.sink.enabled:
            assert self.sink.trace is not None
            args: Dict[str, object] = {"request": request.index}
            if len(batch) > 1:
                args["batched"] = len(batch)
            self.sink.trace.complete(
                f"serving/server/{server}",
                request.tenant,
                ts=now,
                dur=service,
                args=args,
            )
        queue.schedule(
            finish,
            lambda: self.complete(server, batch, service, finish, attr),
            tag="serving/completion",
            actor=f"server/{server}",
            writes=(f"server/{server}",),
        )

    def complete(
        self,
        server: str,
        batch: List[Request],
        service: float,
        finish: float,
        attr: Optional[tuple],
    ) -> None:
        """Account one finished batch and re-arm the server."""
        state = self.servers[server]
        state.busy = False
        if self.halted:
            # The chip crashed mid-service: the batch never finished.
            # Every request of it is accounted as failed (not completed,
            # not silently dropped) and closed-loop chains end here.
            for request in batch:
                self.reports[request.tenant].failed += 1
                self._count(f"serving/tenant/{request.tenant}/failed")
            return
        state.busy_ms += service
        # Every request of the batch finishes when the batch does;
        # the per-request service share is what SLO accounting bills.
        share = service / len(batch)
        duration_ms = self.duration_ms
        monitor = self.monitor
        sink = self.sink
        for request in batch:
            request.finish_ms = finish
            report = self.reports[request.tenant]
            if finish <= duration_ms:
                report.record_completion(
                    request.latency_ms,
                    request.queue_wait_ms,
                    share,
                    met_deadline=request.met_deadline,
                )
                if self.collect and attr is not None:
                    assert self.table is not None
                    report.timelines.append(
                        self.table.timeline(
                            request.tenant,
                            request.index,
                            request.arrival_ms,
                            request.start_ms,
                            request.latency_ms,
                            attr[1],
                        )
                    )
                if monitor is not None:
                    monitor.record_completion(
                        request.tenant,
                        finish,
                        request.latency_ms,
                        request.met_deadline,
                    )
                self._count(f"serving/tenant/{request.tenant}/completed")
                if not request.met_deadline:
                    self._count(
                        f"serving/tenant/{request.tenant}/deadline_misses"
                    )
                if sink.enabled:
                    assert sink.registry is not None
                    sink.registry.histogram(
                        f"serving/tenant/{request.tenant}/latency_ms",
                        bounds=report.histogram.bounds,
                    ).observe(request.latency_ms)
                    sink.registry.windowed(
                        f"serving/tenant/{request.tenant}/throughput",
                        self.window,
                    ).observe(finish, 1.0)
                    sink.registry.windowed(
                        f"serving/tenant/{request.tenant}/latency_windowed",
                        self.window,
                        bounds=report.histogram.bounds,
                    ).observe(finish, request.latency_ms)
            else:
                report.overrun += 1
            spec = self.specs[request.tenant]
            if spec.arrivals.closed_loop:
                self.schedule_arrival(
                    spec, spec.arrivals.after_completion_ms(finish)
                )
        if sink.enabled:
            assert sink.registry is not None
            sink.registry.windowed(
                f"serving/server/{server}/busy", self.window
            ).add_range(finish - service, finish)
        self._poll_monitor(finish)
        self.dispatch(server)

    # -- arrivals --------------------------------------------------------------

    def schedule_arrival(self, tenant: TenantSpec, t: Optional[float]) -> None:
        """Schedule one future arrival of ``tenant`` (drops past-window)."""
        if t is None or t >= self.duration_ms:
            return
        # Happens-before annotation: an arrival's primary effect is
        # its own tenant's admission queue, so simultaneous arrivals
        # of *different* tenants commute (the determinism scan checks
        # exactly this).
        self.queue.schedule(
            t, lambda: self.arrive(tenant, t), tag="serving/arrival",
            actor=f"tenant/{tenant.name}",
            writes=(f"queue/{tenant.name}",),
        )

    def arrive(self, tenant: TenantSpec, t: float) -> None:
        """Admit one arrival of ``tenant`` at ``t`` and chain the next."""
        report = self.reports[tenant.name]
        report.arrivals += 1
        self.window_arrivals[tenant.name] += 1
        self._count(f"serving/tenant/{tenant.name}/arrivals")
        if self.halted:
            # The chip is dead: the arrival is accounted as failed and
            # the open-loop chain keeps producing (the router owns
            # whether traffic still lands here; normally it does not).
            report.failed += 1
            self._count(f"serving/tenant/{tenant.name}/failed")
            if not tenant.arrivals.closed_loop:
                self.schedule_arrival(tenant, tenant.arrivals.next_ms(t))
            return
        request = Request(
            tenant=tenant.name,
            index=self.arrival_index[tenant.name],
            arrival_ms=t,
            deadline_ms=t + tenant.deadline_ms,
            priority=tenant.priority,
            seq=next(self.admission_seq),
        )
        self.arrival_index[tenant.name] += 1
        victim = self.queues[tenant.name].offer(request)
        if victim is None or victim is not request:
            report.admitted += 1
        if victim is not None:
            self.reports[victim.tenant].shed += 1
            self._count(f"serving/tenant/{victim.tenant}/shed")
            if self.sink.enabled:
                assert self.sink.registry is not None
                self.sink.registry.windowed(
                    f"serving/tenant/{victim.tenant}/shed_windowed",
                    self.window,
                ).observe(t, 1.0)
        if self.sink.enabled:
            assert self.sink.registry is not None
            self.sink.registry.gauge(
                f"serving/tenant/{tenant.name}/max_queue_depth"
            ).max(self.queues[tenant.name].depth)
            self.sink.registry.windowed(
                f"serving/tenant/{tenant.name}/queue_depth", self.window
            ).set(t, float(self.queues[tenant.name].depth))
        if self.monitor is not None:
            self.monitor.record_queue_depth(
                tenant.name, t, self.queues[tenant.name].depth
            )
        self._poll_monitor(t)
        self.dispatch(self.policy.server_of(tenant.name))
        if not tenant.arrivals.closed_loop:
            self.schedule_arrival(tenant, tenant.arrivals.next_ms(t))

    def inject(self, tenant: str, t: float) -> None:
        """Router-driven admission: one arrival of ``tenant`` at ``t``.

        Identical to a self-driven arrival except that no open-loop chain
        advances — the external router owns the arrival stream.  Call
        from an event scheduled on the shared queue (so ``queue.now`` is
        ``t``) or schedule directly via :meth:`schedule_injection`.
        """
        spec = self.specs[tenant]
        if spec.arrivals.closed_loop:
            self.arrive(spec, t)
            return
        report = self.reports[tenant]
        report.arrivals += 1
        self.window_arrivals[tenant] += 1
        self._count(f"serving/tenant/{tenant}/arrivals")
        if self.halted:
            report.failed += 1
            self._count(f"serving/tenant/{tenant}/failed")
            return
        request = Request(
            tenant=tenant,
            index=self.arrival_index[tenant],
            arrival_ms=t,
            deadline_ms=t + spec.deadline_ms,
            priority=spec.priority,
            seq=next(self.admission_seq),
        )
        self.arrival_index[tenant] += 1
        victim = self.queues[tenant].offer(request)
        if victim is None or victim is not request:
            report.admitted += 1
        if victim is not None:
            self.reports[victim.tenant].shed += 1
            self._count(f"serving/tenant/{victim.tenant}/shed")
        if self.monitor is not None:
            self.monitor.record_queue_depth(
                tenant, t, self.queues[tenant].depth
            )
        self._poll_monitor(t)
        self.dispatch(self.policy.server_of(tenant))

    def schedule_injection(self, tenant: str, t: float) -> None:
        """Schedule a router-driven arrival on the shared event queue."""
        self.queue.schedule(
            t, lambda: self.inject(tenant, t), tag="serving/arrival",
            actor=f"tenant/{tenant}",
            writes=(f"queue/{tenant}",),
        )

    # -- elastic control -------------------------------------------------------

    def control(self, t: float) -> None:
        """One policy control tick (elastic resize opportunity)."""
        self._poll_monitor(t)
        if self.pending_alerts:
            self.policy.on_alerts(t, tuple(self.pending_alerts))
            self.pending_alerts.clear()
        observations = {
            name: TenantObservation(
                arrivals=self.window_arrivals[name],
                queue_depth=self.queues[name].depth,
                busy=self.servers[self.policy.server_of(name)].busy,
            )
            for name in self.names
        }
        for name in self.names:
            self.window_arrivals[name] = 0
        if self.halted:
            return
        action = self.policy.on_interval(t, observations)
        if action is not None:
            self.apply_resize(t, action)

    def apply_resize(self, t: float, action: ResizeAction) -> None:
        """Apply one elastic re-partitioning at ``t``."""
        table = self.table
        if table is not None:
            # The resized tenants' service times (and so their phase
            # templates) changed; in-flight batches keep the key
            # they dispatched with.
            for name in action.stall_ms:
                self._flush_attribution(name)
                table.invalidate(name)
        if self.monitor is not None:
            self.monitor.record_resize(t)
        for name, stall in action.stall_ms.items():
            server = self.policy.server_of(name)
            state = self.servers[server]
            # Re-staging begins once the in-flight request drains.
            begin = state.free_at_ms if state.busy else t
            state.stall_until_ms = max(
                state.stall_until_ms, max(begin, t) + stall
            )
        self.resizes.append(
            ResizeEvent(
                time_ms=t,
                shares=dict(action.shares),
                region_starts=dict(action.region_starts),
                stall_ms=dict(action.stall_ms),
                placements_recomputed=action.placements_recomputed,
            )
        )
        self._count("serving/resizes")
        if self.sink.enabled:
            assert self.sink.registry is not None and self.sink.trace is not None
            for name, share in action.shares.items():
                self.sink.registry.gauge(
                    f"serving/partition/{name}/cores"
                ).set(share)
            self.sink.trace.instant(
                "serving/partition",
                "resize",
                t,
                args={
                    "shares": dict(sorted(action.shares.items())),
                    "stall_ms": dict(sorted(action.stall_ms.items())),
                },
            )
        # Wake idle resized servers so their queues re-arm behind the
        # stall gate instead of sleeping until the next arrival.
        for name in action.stall_ms:
            self.dispatch(self.policy.server_of(name))

    # -- crash -----------------------------------------------------------------

    def halt(self, t: float) -> None:
        """Crash the chip at ``t``: queues drain into ``failed``, service stops.

        Requests in the admission queues never start; in-flight batches
        whose completion events fire at or after ``t`` are discarded by
        :meth:`complete` (both paths count into
        :attr:`~repro.serving.slo.TenantReport.failed`).  Deterministic:
        queues drain in tenant declaration order, requests in queue
        order.
        """
        self.halted = True
        for name in self.names:
            queue = self.queues[name]
            report = self.reports[name]
            while queue.depth:
                queue.pop()
                report.failed += 1
                self._count(f"serving/tenant/{name}/failed")
        if self.sink.enabled:
            assert self.sink.trace is not None
            self.sink.trace.instant(
                "serving/chip", "halt", t, args={"halt_ms": t}
            )

    # -- lifecycle -------------------------------------------------------------

    def start(self) -> None:
        """Seed self-driven arrivals, control ticks, and the halt event."""
        for name in self.names:
            tenant = self.specs[name]
            for t in tenant.arrivals.initial_arrivals():
                self.schedule_arrival(tenant, t)
        interval = self.policy.control_interval_ms
        if interval is not None:
            ticks = int(math.ceil(self.duration_ms / interval)) - 1
            for k in range(1, ticks + 1):
                t = k * interval
                if t < self.duration_ms:
                    self.queue.schedule(
                        t, lambda t=t: self.control(t), tag="serving/control",
                        actor="control",
                        writes=("partition",),
                    )
        if self.halt_ms is not None:
            self.queue.schedule(
                self.halt_ms,
                lambda: self.halt(self.halt_ms),
                tag="serving/halt",
                actor="control",
                writes=("partition",),
            )

    def finish(self) -> ServingRunResult:
        """Close the monitor and attribution; build the run result."""
        # Close the monitor's final window (nothing arrives after the
        # drain, so every open window is decidable now).
        self._poll_monitor(self.queue.now + self.window)

        table = self.table
        if table is not None:
            for name in list(self.attr_cache):
                self._flush_attribution(name)
            for name in self.names:
                report = self.reports[name]
                phase_names, phase_categories, durations = table.aggregate(
                    name,
                    report.queue_wait_ms_total,
                    report.histogram.total,
                )
                report.attribution = dict(zip(phase_names, durations))
                report.attribution_categories = dict(
                    zip(phase_names, phase_categories)
                )

        return ServingRunResult(
            policy=self.policy.name,
            discipline=self.discipline,
            duration_ms=self.duration_ms,
            reports=self.reports,
            resizes=self.resizes,
            servers={n: self.policy.server_of(n) for n in self.names},
            server_busy_ms={
                s: st.busy_ms for s, st in sorted(self.servers.items())
            },
            final_shares=self.policy.shares(),
            alerts=self.alerts,
        )


__all__ = ["ChipHandle"]
