"""Canonical serving load scenarios, shared by scripts and CI.

``scripts/serve.py`` replays these against the serving policies and
``scripts/lint_plan.py`` statically analyzes their partition layouts;
both must see *exactly* the same tenants, so the builders live here
rather than in either script.  The CI ``serving-smoke`` job diffs two
runs of the ``smoke`` scenario byte-for-byte and the ``analysis-smoke``
job does the same for lint JSON — keep every seed and rate stable.

* ``mixed-rate`` — three sensor-fusion tenants (camera / lidar / radar)
  with Poisson arrivals whose rates are mismatched with their models'
  MAC weights: the regime where elastic partitions beat a static split.
* ``mixed-rate-overloaded`` — the same trio pushed past saturation with
  tightened deadlines; the variant the SLO monitor's burn-rate alerts
  are pinned against (``obs-smoke``).
* ``smoke`` — two tiny tenants far below saturation; finishes in well
  under a second and must shed nothing.
* ``bursty`` — a steady tenant beside one whose trace fires a dense
  mid-run burst; exercises EDF displacement and queue bounds.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Tuple

from repro.nn.workloads import ConvLayerSpec, NetworkSpec, small_cnn_spec
from repro.serving.arrivals import PoissonArrivals, TraceArrivals
from repro.serving.tenancy import TenantSpec


def conv_net(name: str, m: int, h: int, layers: int = 2) -> NetworkSpec:
    """A small conv stack used as a synthetic tenant model."""
    specs = tuple(
        ConvLayerSpec(i + 1, f"{name}{i}", h=h, w=h, c=64, m=m)
        for i in range(layers)
    )
    return NetworkSpec(name=name, layers=specs)


def mixed_rate_tenants() -> List[TenantSpec]:
    """Heavy slow-rate model beside light hot ones (the acceptance run)."""
    return [
        TenantSpec("camera", conv_net("camera", m=64, h=28),
                   PoissonArrivals(400, seed=1), deadline_ms=6.0),
        TenantSpec("lidar", conv_net("lidar", m=32, h=14),
                   PoissonArrivals(1500, seed=2), deadline_ms=3.0),
        TenantSpec("radar", small_cnn_spec(),
                   PoissonArrivals(2500, seed=3), deadline_ms=2.0),
    ]


def mixed_rate_overloaded_tenants() -> List[TenantSpec]:
    """The mixed-rate trio pushed past saturation (tight deadlines, hot
    arrival rates): the SLO monitor must raise burn-rate alerts here —
    the observability acceptance scenario."""
    return [
        TenantSpec("camera", conv_net("camera", m=64, h=28),
                   PoissonArrivals(900, seed=1), deadline_ms=3.0),
        TenantSpec("lidar", conv_net("lidar", m=32, h=14),
                   PoissonArrivals(3000, seed=2), deadline_ms=1.5),
        TenantSpec("radar", small_cnn_spec(),
                   PoissonArrivals(5000, seed=3), deadline_ms=1.0),
    ]


def smoke_tenants() -> List[TenantSpec]:
    """Two tiny tenants far below saturation: zero shed expected."""
    return [
        TenantSpec("alpha", small_cnn_spec(),
                   PoissonArrivals(150, seed=7), deadline_ms=20.0),
        TenantSpec("beta", conv_net("beta", m=32, h=14, layers=1),
                   PoissonArrivals(100, seed=8), deadline_ms=20.0),
    ]


def bursty_tenants() -> List[TenantSpec]:
    """A steady stream beside a mid-run burst on a bounded queue."""
    burst = [float(t) for t in range(0, 40)]            # 1 kHz warm-up
    burst += [40.0 + 0.05 * i for i in range(400)]      # 20 kHz burst
    burst += [60.0 + float(t) for t in range(40)]       # cool-down
    return [
        TenantSpec("steady", conv_net("steady", m=32, h=14),
                   PoissonArrivals(800, seed=4), deadline_ms=4.0),
        TenantSpec("bursty", small_cnn_spec(),
                   TraceArrivals(burst), deadline_ms=2.0,
                   queue_capacity=32, priority=1),
    ]


#: Scenario name -> (tenant factory, default run window in ms).
SCENARIOS: Dict[str, Tuple[Callable[[], List[TenantSpec]], float]] = {
    "mixed-rate": (mixed_rate_tenants, 120.0),
    "mixed-rate-overloaded": (mixed_rate_overloaded_tenants, 120.0),
    "smoke": (smoke_tenants, 80.0),
    "bursty": (bursty_tenants, 100.0),
}
