"""Serving policies: who owns which cores, and what service costs.

Every policy answers the same three questions behind one interface —
which *server* (partition or shared chip) a tenant's requests run on,
how long one inference takes there, and whether the partition layout
should change in response to observed load:

* :class:`StaticPartitionPolicy` — MAICC's MIMD mode with the offline
  partitioner: each tenant owns a fixed slice of the array sized by
  :meth:`repro.core.multi_dnn.MultiDNNScheduler.partition`.  This is the
  policy :class:`repro.core.sensor_stream.SensorStreamSimulator` runs,
  bit-identical to the pre-serving implementation.
* :class:`TimeSharedPolicy` — the whole array serves everyone from one
  queue, reloading weights between models (the whole-array latency
  includes the filter-load phase).
* :class:`ElasticPolicy` — starts from the static partition and resizes
  it online: every control interval it re-derives shares from observed
  demand through :func:`repro.mapping.allocation.proportional_shares`,
  with hysteresis so shares don't thrash, and charges each resized
  tenant a weight re-staging stall in sim-time.
* :class:`FixedServicePolicy` — scripted service times for unit tests
  and for benchmarking the serving loop itself without the chip model.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, TYPE_CHECKING

from repro.analysis.diagnostics import LintReport
from repro.analysis.plan import ResidentPlan
from repro.analysis.system import analyze_plan
from repro.core.multi_dnn import MultiDNNScheduler
from repro.core.simulator import NetworkRunResult
from repro.errors import SimulationError
from repro.mapping.allocation import proportional_shares
from repro.obs.timeline import PhaseSpec, report_phases
from repro.serving.service import ServiceModel
from repro.serving.tenancy import TenantSpec
from repro.sim.config import SimConfig

if TYPE_CHECKING:
    from repro.obs.monitor import AlertEvent

#: Server id of the single time-shared array.
SHARED_SERVER = "chip"


@dataclass
class TenantObservation:
    """What the simulator saw of one tenant over the last control window."""

    arrivals: int = 0      # requests that arrived in the window
    queue_depth: int = 0   # requests waiting right now
    busy: bool = False     # a request of this tenant is in service


@dataclass
class ResizeAction:
    """One elastic re-partitioning, applied by the simulator."""

    shares: Dict[str, int]
    region_starts: Dict[str, int]
    stall_ms: Dict[str, float] = field(default_factory=dict)
    placements_recomputed: int = 0


class ServingPolicy:
    """Interface between the serving simulator and a partitioning scheme."""

    name: str = "abstract"
    #: Elastic policies set this; the simulator then calls
    #: :meth:`on_interval` every ``control_interval_ms`` of sim time.
    control_interval_ms: Optional[float] = None

    def __init__(self) -> None:
        self._servers: Dict[str, str] = {}
        self._service_ms: Dict[str, float] = {}
        self._shares: Dict[str, int] = {}

    def prepare(self, tenants: Sequence[TenantSpec]) -> None:
        """Derive servers, service times, and initial shares."""
        raise NotImplementedError

    def server_of(self, tenant: str) -> str:
        return self._servers[tenant]

    def service_ms(self, tenant: str) -> float:
        return self._service_ms[tenant]

    def batched_service_ms(self, tenant: str, count: int) -> float:
        """Service time of ``count`` back-to-back requests of one tenant.

        The base policy knows nothing about weight residency, so batching
        buys nothing (``count * service_ms``).  Chip-model-backed policies
        override this with a weight-stationary batched simulation, where
        filter loads and staging amortize across the batch.
        """
        if count < 1:
            raise SimulationError(f"batch count must be >= 1, got {count}")
        return count * self.service_ms(tenant)

    def service_scale(self, now_ms: float) -> float:
        """Chip-wide service-time multiplier at ``now_ms`` (default 1.0).

        The serving loop multiplies every dispatched service window by
        this factor, so a policy can model chip-level degradation — a
        thermally throttled chip, a partial-mesh fault — as a step
        function of sim time (see ``repro.fleet.replica``).  The base
        policy never degrades; the dispatch path skips the multiply when
        the factor is exactly 1.0, so default behaviour is bit-identical.
        """
        return 1.0

    def shares(self) -> Dict[str, int]:
        """Current cores per tenant (empty when the array is not split)."""
        return dict(self._shares)

    def service_phases(self, tenant: str, count: int = 1) -> List[PhaseSpec]:
        """Relative phase weights of one service window (attribution).

        The serving simulator scales these weights onto the billed
        service milliseconds of each dispatch (see
        :mod:`repro.obs.timeline`), so only the *ratios* matter.  The
        base policy has no chip model behind it and bills the whole
        window as compute; chip-backed policies return the per-segment
        DRAM / staging / compute split of their tier's
        :class:`~repro.sim.report.RunReport`.
        """
        return [PhaseSpec("service/compute", "compute", 1.0)]

    def on_alerts(
        self, now_ms: float, alerts: Sequence["AlertEvent"]
    ) -> None:
        """Advisory SLO alerts from the run's monitor (may be ignored).

        Called by the simulator just before :meth:`on_interval` with the
        alerts the :class:`~repro.obs.monitor.SLOMonitor` raised since
        the previous control tick.  The base policy ignores them.
        """

    def on_interval(
        self, now_ms: float, observations: Mapping[str, TenantObservation]
    ) -> Optional[ResizeAction]:
        """React to a control tick; return a resize or ``None``."""
        return None

    def preflight(
        self, tenants: Sequence[TenantSpec]
    ) -> Optional[LintReport]:
        """Static admission analysis of the prepared partition layout.

        Called by :class:`~repro.serving.simulator.ServingSimulator`
        after :meth:`prepare`; error-severity findings reject the run
        before any sim cycles are spent.  Policies that partition the
        array return the co-residency ``PLAN6xx`` report
        (:func:`repro.analysis.analyze_plan`); the base policy has no
        plan view and returns ``None`` (nothing to check).
        """
        return None


class StaticPartitionPolicy(ServingPolicy):
    """Fixed spatial partitions from the offline multi-DNN scheduler."""

    name = "static"

    def __init__(self, scheduler: Optional[MultiDNNScheduler] = None) -> None:
        super().__init__()
        self.scheduler = scheduler or MultiDNNScheduler()
        self._networks: Dict[str, object] = {}
        self._residents: List[ResidentPlan] = []
        self._reports: Dict[str, NetworkRunResult] = {}

    def prepare(self, tenants: Sequence[TenantSpec]) -> None:
        run = self.scheduler.run([t.network for t in tenants])
        self._networks = {t.name: t.network for t in tenants}
        self._reports = {
            t.name: model_run.result
            for t, model_run in zip(tenants, run.runs)
        }
        self._residents = [
            ResidentPlan(
                name=tenant.name,
                plan=model_run.result.plan,
                region_start=model_run.region_start,
            )
            for tenant, model_run in zip(tenants, run.runs)
        ]
        for tenant, model_run in zip(tenants, run.runs):
            self._servers[tenant.name] = tenant.name
            self._service_ms[tenant.name] = model_run.latency_ms
            self._shares[tenant.name] = model_run.partition_cores

    def preflight(
        self, tenants: Sequence[TenantSpec]
    ) -> Optional[LintReport]:
        if not self._residents:
            return None
        return analyze_plan(
            co_resident=self._residents,
            config=SimConfig(array_size=self.scheduler.array_size),
            families=("plan",),
        )

    def batched_service_ms(self, tenant: str, count: int) -> float:
        if count < 1:
            raise SimulationError(f"batch count must be >= 1, got {count}")
        if count == 1:
            return self.service_ms(tenant)
        return self.scheduler.simulate_partition(
            self._networks[tenant], self._shares[tenant], batch_requests=count
        ).latency_ms

    def service_phases(self, tenant: str, count: int = 1) -> List[PhaseSpec]:
        if count == 1:
            return report_phases(self._reports[tenant])
        return report_phases(
            self.scheduler.simulate_partition(
                self._networks[tenant],
                self._shares[tenant],
                batch_requests=count,
            )
        )


class TimeSharedPolicy(ServingPolicy):
    """One queue, the whole array, weights reloaded between models."""

    name = "time-shared"

    def __init__(self, scheduler: Optional[MultiDNNScheduler] = None) -> None:
        super().__init__()
        self.scheduler = scheduler or MultiDNNScheduler()
        self._reports: Dict[str, NetworkRunResult] = {}

    def prepare(self, tenants: Sequence[TenantSpec]) -> None:
        for tenant in tenants:
            self._servers[tenant.name] = SHARED_SERVER
            run = self.scheduler.simulator.run(tenant.network, "heuristic")
            self._reports[tenant.name] = run
            self._service_ms[tenant.name] = run.latency_ms

    def service_phases(self, tenant: str, count: int = 1) -> List[PhaseSpec]:
        # A batched dispatch on the shared array is ``count`` full runs
        # (weights reload every time), so the phase ratios match count=1.
        return report_phases(self._reports[tenant])


class ElasticPolicy(ServingPolicy):
    """Demand-driven online resizing of the spatial partitions.

    Every control interval the policy turns the window's observations
    into demand weights (``pending requests x model MACs``), re-derives
    shares with the same proportional allocator the static partitioner
    uses, and — if the proposal moves any tenant by at least
    ``hysteresis_cores`` and ``cooldown_ms`` has passed since the last
    resize — re-maps the resized tenants (allocation + zig-zag placement)
    and charges each a weight re-staging stall.

    ``decision_backend`` names a cheap ``repro.sim`` tier (typically
    ``"analytic"``) to *gate* resizes on: a proposal only commits if it
    improves the estimated worst-tenant latency on that tier.  SLO
    accounting (the committed ``service_ms``) always reads the service
    model's authoritative tier regardless.  ``None`` (the default) keeps
    the demand-share gate alone — byte-identical to the historical
    behaviour.

    ``react_to_alerts`` makes the run's SLO monitor an *advisory*
    signal: a ``burn_rate`` or ``queue_growth`` alert for a tenant lets
    the next control tick bypass the resize cooldown (hysteresis and
    the decision gate still apply).  ``False`` (the default) ignores
    alerts entirely — byte-identical to the unmonitored behaviour.
    """

    name = "elastic"

    def __init__(
        self,
        service_model: Optional[ServiceModel] = None,
        *,
        control_interval_ms: float = 10.0,
        hysteresis_cores: int = 8,
        cooldown_ms: float = 0.0,
        decision_backend: Optional[str] = None,
        react_to_alerts: bool = False,
    ) -> None:
        super().__init__()
        if control_interval_ms <= 0:
            raise SimulationError(
                f"control interval must be positive, got {control_interval_ms}"
            )
        if hysteresis_cores < 1:
            raise SimulationError(
                f"hysteresis must be >= 1 core, got {hysteresis_cores}"
            )
        self.service = service_model or ServiceModel()
        self.control_interval_ms = control_interval_ms
        self.hysteresis_cores = hysteresis_cores
        self.cooldown_ms = cooldown_ms
        self.decision_backend = decision_backend
        self.react_to_alerts = react_to_alerts
        self.resize_count = 0
        self._tenants: List[TenantSpec] = []
        self._minimums: Dict[str, int] = {}
        self._last_resize_ms = -math.inf
        self._alerted: set = set()

    def prepare(self, tenants: Sequence[TenantSpec]) -> None:
        if not tenants:
            raise SimulationError("elastic policy needs at least one tenant")
        self._tenants = list(tenants)
        scheduler = self.service.scheduler
        networks = [t.network for t in tenants]
        shares = scheduler.partition(networks)
        self._minimums = {
            t.name: scheduler.minimum_cores(t.network) for t in tenants
        }
        for tenant, share in zip(tenants, shares):
            self._servers[tenant.name] = tenant.name
            self._shares[tenant.name] = share
            self._service_ms[tenant.name] = self.service.latency_ms(
                tenant.network, share
            )

    def batched_service_ms(self, tenant: str, count: int) -> float:
        if count < 1:
            raise SimulationError(f"batch count must be >= 1, got {count}")
        if count == 1:
            return self.service_ms(tenant)
        network = next(
            t.network for t in self._tenants if t.name == tenant
        )
        return self.service.batched_latency_ms(
            network, self._shares[tenant], count
        )

    def service_phases(self, tenant: str, count: int = 1) -> List[PhaseSpec]:
        network = next(
            t.network for t in self._tenants if t.name == tenant
        )
        # Hits the service model's memo: prepare()/batched_service_ms
        # already simulated this (network, share, batch) point.
        return report_phases(
            self.service.partition_run(
                network, self._shares[tenant], batch_requests=count
            )
        )

    def on_alerts(
        self, now_ms: float, alerts: Sequence["AlertEvent"]
    ) -> None:
        if not self.react_to_alerts:
            return
        for alert in alerts:
            if alert.kind in ("burn_rate", "queue_growth"):
                self._alerted.add(alert.tenant)

    def region_starts(self) -> Dict[str, int]:
        """Each tenant's offset into the global snake walk (tenant order)."""
        starts: Dict[str, int] = {}
        offset = 0
        for tenant in self._tenants:
            starts[tenant.name] = offset
            offset += self._shares[tenant.name]
        return starts

    def preflight(
        self, tenants: Sequence[TenantSpec]
    ) -> Optional[LintReport]:
        if not self._tenants:
            return None
        starts = self.region_starts()
        # partition_run hits the service model's memo (prepare() already
        # simulated every share), so admission analysis costs no extra
        # tier cycles.
        residents = [
            ResidentPlan(
                name=t.name,
                plan=self.service.partition_run(
                    t.network, self._shares[t.name]
                ).plan,
                region_start=starts[t.name],
            )
            for t in self._tenants
        ]
        return analyze_plan(
            co_resident=residents,
            config=SimConfig(array_size=self.service.array_size),
            families=("plan",),
        )

    def on_interval(
        self, now_ms: float, observations: Mapping[str, TenantObservation]
    ) -> Optional[ResizeAction]:
        # An SLO alert since the last tick (advisory, opt-in) waives the
        # cooldown: a burning tenant should not wait out the timer.
        alerted = bool(self._alerted)
        self._alerted.clear()
        if not alerted and now_ms - self._last_resize_ms < self.cooldown_ms:
            return None
        weights = []
        for tenant in self._tenants:
            obs = observations.get(tenant.name, TenantObservation())
            pending = obs.arrivals + obs.queue_depth
            weights.append(float(pending * tenant.network.total_macs))
        if not any(weights):
            return None  # idle window: no demand signal, keep the layout
        proposal = proportional_shares(
            [self._minimums[t.name] for t in self._tenants],
            weights,
            self.service.array_size,
        )
        moved = {
            t.name: share
            for t, share in zip(self._tenants, proposal)
            if share != self._shares[t.name]
        }
        if not moved:
            return None
        if max(
            abs(share - self._shares[name]) for name, share in moved.items()
        ) < self.hysteresis_cores:
            return None
        if self.decision_backend is not None and not self._estimate_improves(
            proposal
        ):
            return None

        for tenant, share in zip(self._tenants, proposal):
            self._shares[tenant.name] = share
        starts = self.region_starts()
        stall: Dict[str, float] = {}
        placements = 0
        for tenant in self._tenants:
            if tenant.name not in moved:
                continue
            self._service_ms[tenant.name] = self.service.latency_ms(
                tenant.network, self._shares[tenant.name]
            )
            stall[tenant.name] = self.service.restage_ms(tenant.network)
            placements += len(
                self.service.placements(
                    tenant.network, self._shares[tenant.name], starts[tenant.name]
                )
            )
        self._last_resize_ms = now_ms
        self.resize_count += 1
        return ResizeAction(
            shares=dict(self._shares),
            region_starts=starts,
            stall_ms=stall,
            placements_recomputed=placements,
        )

    def _estimate_improves(self, proposal: Sequence[int]) -> bool:
        """Does the proposal lower the worst-tenant latency estimate?

        Estimated on the cheap ``decision_backend`` tier; the committed
        service times still come from the authoritative tier.
        """

        def worst(shares: Sequence[int]) -> float:
            return max(
                self.service.partition_run(
                    t.network, share, backend=self.decision_backend
                ).latency_ms
                for t, share in zip(self._tenants, shares)
            )

        current = worst([self._shares[t.name] for t in self._tenants])
        return worst(proposal) < current


class FixedServicePolicy(ServingPolicy):
    """Scripted service times; no chip model behind it.

    Used by unit tests and by ``scripts/bench.py`` to measure the event
    loop's own overhead.  ``shared_server`` puts every tenant on one
    queue; otherwise each tenant gets a dedicated server.
    """

    name = "fixed"

    def __init__(
        self,
        service_ms: Mapping[str, float],
        *,
        shared_server: Optional[str] = None,
        staging_ms: Optional[Mapping[str, float]] = None,
    ) -> None:
        super().__init__()
        self._fixed = dict(service_ms)
        self._shared = shared_server
        #: One-time share of each tenant's service time (weight staging):
        #: a batched dispatch pays it once, the per-request remainder
        #: ``count`` times — the scripted analogue of weight-stationary
        #: request batching.
        self._staging = dict(staging_ms or {})
        for name, stage in self._staging.items():
            if not 0.0 <= stage <= self._fixed.get(name, 0.0):
                raise SimulationError(
                    f"staging_ms for {name!r} must be within "
                    f"[0, service_ms], got {stage}"
                )

    def prepare(self, tenants: Sequence[TenantSpec]) -> None:
        for tenant in tenants:
            if tenant.name not in self._fixed:
                raise SimulationError(
                    f"no fixed service time for tenant {tenant.name!r}"
                )
            self._servers[tenant.name] = self._shared or tenant.name
            self._service_ms[tenant.name] = self._fixed[tenant.name]

    def batched_service_ms(self, tenant: str, count: int) -> float:
        if count < 1:
            raise SimulationError(f"batch count must be >= 1, got {count}")
        if count == 1:
            return self._fixed[tenant]
        stage = self._staging.get(tenant, 0.0)
        return stage + count * (self._fixed[tenant] - stage)

    def service_phases(self, tenant: str, count: int = 1) -> List[PhaseSpec]:
        # Mirrors batched_service_ms: staging is paid once per dispatch,
        # the post-staging remainder ``count`` times.
        stage = self._staging.get(tenant, 0.0)
        return [
            PhaseSpec("service/staging", "staging", stage),
            PhaseSpec(
                "service/compute",
                "compute",
                count * (self._fixed[tenant] - stage),
            ),
        ]
