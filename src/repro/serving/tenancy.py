"""Tenants and requests of the online serving layer.

A *tenant* is one model owner submitting inference requests against the
chip: a network, an arrival process, a relative latency deadline, a
scheduling priority, and a bound on how many of its requests may wait in
the admission queue.  A *request* is one inference: the simulator stamps
its admission, service-start, and completion times so the SLO accounting
can attribute queueing, resize stalls, and service separately.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

from repro.nn.workloads import NetworkSpec
from repro.serving.arrivals import ArrivalProcess


@dataclass(frozen=True)
class TenantSpec:
    """One model owner sharing the array.

    ``deadline_ms`` is relative to each request's arrival (``inf`` means
    best-effort: nothing ever counts as a miss).  ``priority`` breaks
    scheduling ties — larger wins.  ``queue_capacity`` bounds the tenant's
    admission queue; ``None`` is unbounded (no shedding).
    """

    name: str
    network: NetworkSpec
    arrivals: ArrivalProcess
    deadline_ms: float = math.inf
    priority: int = 0
    queue_capacity: Optional[int] = None


@dataclass
class Request:
    """One inference request moving through admission, queue, and service."""

    tenant: str
    index: int            # per-tenant arrival index (0-based)
    arrival_ms: float
    deadline_ms: float    # absolute deadline (arrival + relative; inf = none)
    priority: int = 0
    seq: int = 0          # global admission order, FIFO tie-break
    start_ms: Optional[float] = None
    finish_ms: Optional[float] = None

    @property
    def latency_ms(self) -> float:
        """Arrival-to-completion latency (queueing + stalls + service)."""
        if self.finish_ms is None:
            raise ValueError(f"request {self.tenant}#{self.index} not finished")
        return self.finish_ms - self.arrival_ms

    @property
    def queue_wait_ms(self) -> float:
        """Time between arrival and service start (queueing + resize stall)."""
        if self.start_ms is None:
            raise ValueError(f"request {self.tenant}#{self.index} not started")
        return self.start_ms - self.arrival_ms

    @property
    def met_deadline(self) -> bool:
        if self.finish_ms is None:
            return False
        return self.finish_ms <= self.deadline_ms
