"""The online serving loop: arrivals -> admission -> partitions -> SLOs.

:class:`ServingSimulator` replays every tenant's arrival process on the
discrete-event kernel (:class:`repro.utils.events.EventQueue`) against a
:class:`~repro.serving.policies.ServingPolicy`:

* an arrival is admitted into its tenant's bounded queue (or shed — the
  shed request is counted and reported, never silently dropped);
* each *server* (one spatial partition, or the whole time-shared chip)
  serves the best queued request of its tenants — highest priority
  first, then the queue discipline (FIFO arrival order or EDF
  deadline order);
* elastic policies get a control tick every ``control_interval_ms``;
  an applied resize stalls the resized partitions for the weight
  re-staging time, and requests dequeued during the stall start service
  only when it ends — the wait is part of their reported latency, no
  sim-time is lost between dequeue and service start;
* completions, queue waits, and deadline outcomes land in per-tenant
  :class:`~repro.serving.slo.TenantReport` objects, and — when a
  telemetry sink is active — in the metrics registry and the Perfetto
  trace (one ``serving/server/*`` track per partition, resize instants
  on ``serving/partition``).

The mechanics live in :class:`~repro.serving.chip.ChipHandle` — one
chip's queues, servers, and accounting bound to an event queue — so an
external router (``repro.fleet``) can drive the same engine headless.
:meth:`ServingSimulator.run` is the classic single-chip entry point:
``open`` → ``start`` → determinism scan → drain → ``finish``.

Determinism: all randomness lives in the seeded arrival processes and
every simultaneous event resolves by the event queue's sequence-number
tie-break, so two runs with the same specs produce byte-identical
reports, metrics, and traces.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.analysis.determinism import accesses_from_queue, check_batches
from repro.errors import PlanVerificationError, SimulationError
from repro.obs.monitor import SLOMonitor
from repro.serving.chip import ChipHandle, _ServerState  # noqa: F401  (re-export)
from repro.serving.queues import DISCIPLINES
from repro.serving.policies import ServingPolicy
from repro.serving.slo import ServingRunResult
from repro.serving.tenancy import TenantSpec
from repro.telemetry import TelemetrySink, current as _current_telemetry
from repro.utils.events import EventQueue


class ServingSimulator:
    """Runs tenants against a serving policy on the discrete-event kernel."""

    def __init__(
        self,
        policy: ServingPolicy,
        *,
        discipline: str = "fifo",
        batch_requests: int = 1,
        preflight: bool = True,
        telemetry: Optional[TelemetrySink] = None,
        attribution: bool = True,
        collect_timelines: bool = False,
        monitor: Optional[SLOMonitor] = None,
    ) -> None:
        if discipline not in DISCIPLINES:
            raise SimulationError(
                f"unknown queue discipline {discipline!r}; choose from {DISCIPLINES}"
            )
        if batch_requests < 1:
            raise SimulationError(
                f"batch_requests must be >= 1, got {batch_requests}"
            )
        self.policy = policy
        self.discipline = discipline
        #: Static admission gate: after ``policy.prepare`` the policy's
        #: :meth:`~repro.serving.policies.ServingPolicy.preflight` report
        #: and a determinism scan of the initial event population must be
        #: error-free, or the run raises
        #: :class:`~repro.errors.PlanVerificationError` before any
        #: sim-time is spent.  ``False`` opts out.
        self.preflight = preflight
        #: Weight-stationary request batching: a free server may pull up
        #: to this many queued requests *of the same tenant* and serve
        #: them back to back at the policy's batched service time
        #: (:meth:`ServingPolicy.batched_service_ms`), amortizing weight
        #: staging.  ``1`` is the historical one-request-at-a-time loop.
        self.batch_requests = batch_requests
        #: Per-request latency attribution (``repro.obs.timeline``):
        #: every billed completion is decomposed into queue / staging /
        #: compute / ... phases that sum bit-exactly to its latency.
        #: The default path only counts template uses (two dict ops per
        #: dispatch); full per-request ``RequestTimeline`` objects are
        #: built when a telemetry sink is active or
        #: ``collect_timelines=True``.
        self.attribution = attribution
        self.collect_timelines = collect_timelines
        #: Optional SLO monitor; its alerts land in the run result, the
        #: trace (instants), and ``policy.on_alerts``.
        self.monitor = monitor
        self._telemetry = telemetry if telemetry is not None else _current_telemetry()

    # -- the chip seam ---------------------------------------------------------

    def open(
        self,
        tenants: Sequence[TenantSpec],
        duration_ms: float,
        *,
        queue: Optional[EventQueue] = None,
        halt_ms: Optional[float] = None,
    ) -> ChipHandle:
        """Validate, prepare the policy, and bind a :class:`ChipHandle`.

        The handle is inert until :meth:`ChipHandle.start` (self-driven
        arrivals) or external :meth:`ChipHandle.schedule_injection`
        calls populate the event queue.  Pass ``queue`` to share one
        event queue across chips (the fleet router does); pass
        ``halt_ms`` to crash the chip mid-run.
        """
        if not tenants:
            raise SimulationError("serving run needs at least one tenant")
        if duration_ms <= 0:
            raise SimulationError(f"duration must be positive, got {duration_ms}")
        names = [t.name for t in tenants]
        if len(set(names)) != len(names):
            raise SimulationError(f"tenant names must be unique, got {names}")

        for tenant in tenants:
            tenant.arrivals.reset()
        self.policy.prepare(tenants)
        if self.preflight:
            admission = self.policy.preflight(tenants)
            if admission is not None and not admission.ok:
                raise PlanVerificationError(
                    "serving admission rejected the partition layout:\n"
                    + admission.render(),
                    admission,
                )
        return ChipHandle(
            policy=self.policy,
            tenants=tenants,
            duration_ms=duration_ms,
            queue=queue if queue is not None else EventQueue(telemetry=self._telemetry),
            discipline=self.discipline,
            batch_requests=self.batch_requests,
            attribution=self.attribution,
            collect_timelines=self.collect_timelines,
            monitor=self.monitor,
            telemetry=self._telemetry,
            halt_ms=halt_ms,
        )

    def scan_determinism(self, chip: ChipHandle) -> None:
        """Static determinism scan of the initial event population.

        Any same-timestamp write-write conflict across actors would make
        batched draining order-sensitive (DET801).
        """
        det = check_batches(accesses_from_queue(chip.queue))
        if not det.ok:
            raise PlanVerificationError(
                "serving admission found a non-commutative event "
                "batch:\n" + det.render(),
                det,
            )

    # -- the run ---------------------------------------------------------------

    def run(
        self, tenants: Sequence[TenantSpec], duration_ms: float
    ) -> ServingRunResult:
        """Serve ``duration_ms`` of arrivals; drain in-flight work after."""
        chip = self.open(tenants, duration_ms)
        chip.start()
        if self.preflight:
            self.scan_determinism(chip)
        chip.queue.run()
        return chip.finish()
