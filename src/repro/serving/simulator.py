"""The online serving loop: arrivals -> admission -> partitions -> SLOs.

:class:`ServingSimulator` replays every tenant's arrival process on the
discrete-event kernel (:class:`repro.utils.events.EventQueue`) against a
:class:`~repro.serving.policies.ServingPolicy`:

* an arrival is admitted into its tenant's bounded queue (or shed — the
  shed request is counted and reported, never silently dropped);
* each *server* (one spatial partition, or the whole time-shared chip)
  serves the best queued request of its tenants — highest priority
  first, then the queue discipline (FIFO arrival order or EDF
  deadline order);
* elastic policies get a control tick every ``control_interval_ms``;
  an applied resize stalls the resized partitions for the weight
  re-staging time, and requests dequeued during the stall start service
  only when it ends — the wait is part of their reported latency, no
  sim-time is lost between dequeue and service start;
* completions, queue waits, and deadline outcomes land in per-tenant
  :class:`~repro.serving.slo.TenantReport` objects, and — when a
  telemetry sink is active — in the metrics registry and the Perfetto
  trace (one ``serving/server/*`` track per partition, resize instants
  on ``serving/partition``).

Determinism: all randomness lives in the seeded arrival processes and
every simultaneous event resolves by the event queue's sequence-number
tie-break, so two runs with the same specs produce byte-identical
reports, metrics, and traces.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.analysis.determinism import accesses_from_queue, check_batches
from repro.errors import PlanVerificationError, SimulationError
from repro.obs.monitor import DEFAULT_WINDOW_MS, AlertEvent, SLOMonitor
from repro.obs.timeline import AttributionTable
from repro.serving.policies import ResizeAction, ServingPolicy, TenantObservation
from repro.serving.queues import DISCIPLINES, AdmissionQueue
from repro.serving.slo import ResizeEvent, ServingRunResult, TenantReport
from repro.serving.tenancy import Request, TenantSpec
from repro.telemetry import TelemetrySink, current as _current_telemetry
from repro.utils.events import EventQueue


@dataclass
class _ServerState:
    """One server's occupancy, resize gate, and accumulated busy time."""

    busy: bool = False
    free_at_ms: float = 0.0       # completion time of the in-flight request
    stall_until_ms: float = 0.0   # weight re-staging gate after a resize
    busy_ms: float = 0.0
    retry_scheduled: bool = False  # a post-stall dispatch is already queued
    tenants: List[str] = field(default_factory=list)


class ServingSimulator:
    """Runs tenants against a serving policy on the discrete-event kernel."""

    def __init__(
        self,
        policy: ServingPolicy,
        *,
        discipline: str = "fifo",
        batch_requests: int = 1,
        preflight: bool = True,
        telemetry: Optional[TelemetrySink] = None,
        attribution: bool = True,
        collect_timelines: bool = False,
        monitor: Optional[SLOMonitor] = None,
    ) -> None:
        if discipline not in DISCIPLINES:
            raise SimulationError(
                f"unknown queue discipline {discipline!r}; choose from {DISCIPLINES}"
            )
        if batch_requests < 1:
            raise SimulationError(
                f"batch_requests must be >= 1, got {batch_requests}"
            )
        self.policy = policy
        self.discipline = discipline
        #: Static admission gate: after ``policy.prepare`` the policy's
        #: :meth:`~repro.serving.policies.ServingPolicy.preflight` report
        #: and a determinism scan of the initial event population must be
        #: error-free, or the run raises
        #: :class:`~repro.errors.PlanVerificationError` before any
        #: sim-time is spent.  ``False`` opts out.
        self.preflight = preflight
        #: Weight-stationary request batching: a free server may pull up
        #: to this many queued requests *of the same tenant* and serve
        #: them back to back at the policy's batched service time
        #: (:meth:`ServingPolicy.batched_service_ms`), amortizing weight
        #: staging.  ``1`` is the historical one-request-at-a-time loop.
        self.batch_requests = batch_requests
        #: Per-request latency attribution (``repro.obs.timeline``):
        #: every billed completion is decomposed into queue / staging /
        #: compute / ... phases that sum bit-exactly to its latency.
        #: The default path only counts template uses (two dict ops per
        #: dispatch); full per-request ``RequestTimeline`` objects are
        #: built when a telemetry sink is active or
        #: ``collect_timelines=True``.
        self.attribution = attribution
        self.collect_timelines = collect_timelines
        #: Optional SLO monitor; its alerts land in the run result, the
        #: trace (instants), and ``policy.on_alerts``.
        self.monitor = monitor
        self._telemetry = telemetry if telemetry is not None else _current_telemetry()

    # -- the run ---------------------------------------------------------------

    def run(
        self, tenants: Sequence[TenantSpec], duration_ms: float
    ) -> ServingRunResult:
        """Serve ``duration_ms`` of arrivals; drain in-flight work after."""
        if not tenants:
            raise SimulationError("serving run needs at least one tenant")
        if duration_ms <= 0:
            raise SimulationError(f"duration must be positive, got {duration_ms}")
        names = [t.name for t in tenants]
        if len(set(names)) != len(names):
            raise SimulationError(f"tenant names must be unique, got {names}")

        specs = {t.name: t for t in tenants}
        for tenant in tenants:
            tenant.arrivals.reset()
        self.policy.prepare(tenants)
        if self.preflight:
            admission = self.policy.preflight(tenants)
            if admission is not None and not admission.ok:
                raise PlanVerificationError(
                    "serving admission rejected the partition layout:\n"
                    + admission.render(),
                    admission,
                )

        queue = EventQueue(telemetry=self._telemetry)
        reports = {t.name: TenantReport(tenant=t.name) for t in tenants}
        queues = {
            t.name: AdmissionQueue(
                capacity=t.queue_capacity, discipline=self.discipline
            )
            for t in tenants
        }
        servers: Dict[str, _ServerState] = {}
        for tenant in tenants:
            server = self.policy.server_of(tenant.name)
            state = servers.setdefault(server, _ServerState())
            state.tenants.append(tenant.name)
        resizes: List[ResizeEvent] = []
        window_arrivals = {t.name: 0 for t in tenants}
        arrival_index = {t.name: 0 for t in tenants}
        admission_seq = itertools.count()
        sink = self._telemetry
        table = AttributionTable() if self.attribution else None
        collect = table is not None and (self.collect_timelines or sink.enabled)
        #: Dispatch-side attribution cache: tenant -> list indexed by
        #: batch size of ``[(key, template), billed_dispatches]`` slots
        #: for the tenant's current generation.  Slots fold into
        #: ``table`` via :func:`flush_attribution` when a resize closes
        #: the generation and once after the run.
        attr_cache: Dict[str, list] = {}

        def flush_attribution(tenant: str) -> None:
            per = attr_cache.pop(tenant, None)
            if per is None:
                return
            assert table is not None
            for n, slot in enumerate(per):
                if slot is not None and slot[1]:
                    # Each billed dispatch of size n completed n requests.
                    table.record(slot[0][0], slot[1] * n)
        monitor = self.monitor
        window = monitor.config.window_ms if monitor else DEFAULT_WINDOW_MS
        alerts: List[AlertEvent] = []
        pending_alerts: List[AlertEvent] = []

        def count(path: str) -> None:
            if sink.enabled:
                assert sink.registry is not None
                sink.registry.counter(path).inc()

        def poll_monitor(now: float) -> None:
            if monitor is None:
                return
            fresh = monitor.poll(now)
            if not fresh:
                return
            alerts.extend(fresh)
            pending_alerts.extend(fresh)
            if sink.enabled:
                assert sink.trace is not None
                for alert in fresh:
                    sink.trace.instant(
                        "serving/slo",
                        f"{alert.kind}/{alert.tenant}",
                        alert.time_ms,
                        args=alert.as_dict(),
                    )

        # -- service ----------------------------------------------------------

        def pick(server: str) -> Optional[Request]:
            best_name: Optional[str] = None
            best_rank: Optional[tuple] = None
            for name in servers[server].tenants:
                key = queues[name].peek_key()
                if key is None:
                    continue
                rank = (-specs[name].priority, key)
                if best_rank is None or rank < best_rank:
                    best_rank = rank
                    best_name = name
            if best_name is None:
                return None
            return queues[best_name].pop()

        def dispatch(server: str) -> None:
            state = servers[server]
            if state.busy:
                return
            now = queue.now
            if state.stall_until_ms > now:
                # The partition is mid-resize: service may only start when
                # re-staging ends.  The wait is real sim-time — the retry
                # event carries the dequeue forward, never drops it.
                if not state.retry_scheduled:
                    state.retry_scheduled = True

                    def resume() -> None:
                        state.retry_scheduled = False
                        dispatch(server)

                    queue.schedule(
                        state.stall_until_ms, resume, tag="serving/resume",
                        actor=f"server/{server}",
                        writes=(f"server/{server}",),
                    )
                return
            request = pick(server)
            if request is None:
                return
            # Weight-stationary batching: pull further queued requests of
            # the *same tenant* (same weights) into this dispatch, up to
            # the batch limit; they serve back to back with staging paid
            # once.  batch_requests=1 keeps the historical loop exactly.
            batch = [request]
            tenant_queue = queues[request.tenant]
            while (
                len(batch) < self.batch_requests
                and tenant_queue.peek_key() is not None
            ):
                batch.append(tenant_queue.pop())
            for req in batch:
                req.start_ms = now
            if len(batch) == 1:
                service = self.policy.service_ms(request.tenant)
            else:
                service = self.policy.batched_service_ms(
                    request.tenant, len(batch)
                )
            finish = now + service
            if table is not None:
                # Snapshot the dispatch-time template key: a resize
                # between now and completion must not re-attribute the
                # in-flight batch.  The steady state is allocation-free
                # (dict subscript + two list indexes + integer bump);
                # the table is only touched on a template miss and when
                # a generation flushes.
                n = len(batch)
                try:
                    per = attr_cache[request.tenant]
                except KeyError:
                    per = attr_cache[request.tenant] = [None] * (
                        self.batch_requests + 1
                    )
                slot = per[n]
                if slot is None:
                    slot = per[n] = [
                        table.lookup(
                            request.tenant,
                            n,
                            lambda: self.policy.service_phases(
                                request.tenant, n
                            ),
                            service,
                        ),
                        0,
                    ]
                attr = slot[0]
                if finish <= duration_ms:
                    # Billing happens here rather than at completion:
                    # the queue drains every event, so a dispatch whose
                    # finish lands inside the run always completes, and
                    # all n requests of the batch finish together.
                    slot[1] += 1
            else:
                attr = None
            state.busy = True
            state.free_at_ms = finish
            if sink.enabled:
                assert sink.trace is not None
                args: Dict[str, object] = {"request": request.index}
                if len(batch) > 1:
                    args["batched"] = len(batch)
                sink.trace.complete(
                    f"serving/server/{server}",
                    request.tenant,
                    ts=now,
                    dur=service,
                    args=args,
                )
            queue.schedule(
                finish,
                lambda: complete(server, batch, service, finish, attr),
                tag="serving/completion",
                actor=f"server/{server}",
                writes=(f"server/{server}",),
            )

        def complete(
            server: str,
            batch: List[Request],
            service: float,
            finish: float,
            attr: Optional[tuple],
        ) -> None:
            state = servers[server]
            state.busy = False
            state.busy_ms += service
            # Every request of the batch finishes when the batch does;
            # the per-request service share is what SLO accounting bills.
            share = service / len(batch)
            for request in batch:
                request.finish_ms = finish
                report = reports[request.tenant]
                if finish <= duration_ms:
                    report.record_completion(
                        request.latency_ms,
                        request.queue_wait_ms,
                        share,
                        met_deadline=request.met_deadline,
                    )
                    if collect and attr is not None:
                        assert table is not None
                        report.timelines.append(
                            table.timeline(
                                request.tenant,
                                request.index,
                                request.arrival_ms,
                                request.start_ms,
                                request.latency_ms,
                                attr[1],
                            )
                        )
                    if monitor is not None:
                        monitor.record_completion(
                            request.tenant,
                            finish,
                            request.latency_ms,
                            request.met_deadline,
                        )
                    count(f"serving/tenant/{request.tenant}/completed")
                    if not request.met_deadline:
                        count(f"serving/tenant/{request.tenant}/deadline_misses")
                    if sink.enabled:
                        assert sink.registry is not None
                        sink.registry.histogram(
                            f"serving/tenant/{request.tenant}/latency_ms",
                            bounds=report.histogram.bounds,
                        ).observe(request.latency_ms)
                        sink.registry.windowed(
                            f"serving/tenant/{request.tenant}/throughput",
                            window,
                        ).observe(finish, 1.0)
                        sink.registry.windowed(
                            f"serving/tenant/{request.tenant}/latency_windowed",
                            window,
                            bounds=report.histogram.bounds,
                        ).observe(finish, request.latency_ms)
                else:
                    report.overrun += 1
                spec = specs[request.tenant]
                if spec.arrivals.closed_loop:
                    schedule_arrival(
                        spec, spec.arrivals.after_completion_ms(finish)
                    )
            if sink.enabled:
                assert sink.registry is not None
                sink.registry.windowed(
                    f"serving/server/{server}/busy", window
                ).add_range(finish - service, finish)
            poll_monitor(finish)
            dispatch(server)

        # -- arrivals ---------------------------------------------------------

        def schedule_arrival(tenant: TenantSpec, t: Optional[float]) -> None:
            if t is None or t >= duration_ms:
                return
            # Happens-before annotation: an arrival's primary effect is
            # its own tenant's admission queue, so simultaneous arrivals
            # of *different* tenants commute (the determinism scan below
            # checks exactly this).
            queue.schedule(
                t, lambda: arrive(tenant, t), tag="serving/arrival",
                actor=f"tenant/{tenant.name}",
                writes=(f"queue/{tenant.name}",),
            )

        def arrive(tenant: TenantSpec, t: float) -> None:
            report = reports[tenant.name]
            report.arrivals += 1
            window_arrivals[tenant.name] += 1
            count(f"serving/tenant/{tenant.name}/arrivals")
            request = Request(
                tenant=tenant.name,
                index=arrival_index[tenant.name],
                arrival_ms=t,
                deadline_ms=t + tenant.deadline_ms,
                priority=tenant.priority,
                seq=next(admission_seq),
            )
            arrival_index[tenant.name] += 1
            victim = queues[tenant.name].offer(request)
            if victim is None or victim is not request:
                report.admitted += 1
            if victim is not None:
                reports[victim.tenant].shed += 1
                count(f"serving/tenant/{victim.tenant}/shed")
                if sink.enabled:
                    assert sink.registry is not None
                    sink.registry.windowed(
                        f"serving/tenant/{victim.tenant}/shed_windowed",
                        window,
                    ).observe(t, 1.0)
            if sink.enabled:
                assert sink.registry is not None
                sink.registry.gauge(
                    f"serving/tenant/{tenant.name}/max_queue_depth"
                ).max(queues[tenant.name].depth)
                sink.registry.windowed(
                    f"serving/tenant/{tenant.name}/queue_depth", window
                ).set(t, float(queues[tenant.name].depth))
            if monitor is not None:
                monitor.record_queue_depth(
                    tenant.name, t, queues[tenant.name].depth
                )
            poll_monitor(t)
            dispatch(self.policy.server_of(tenant.name))
            if not tenant.arrivals.closed_loop:
                schedule_arrival(tenant, tenant.arrivals.next_ms(t))

        # -- elastic control --------------------------------------------------

        def control(t: float) -> None:
            poll_monitor(t)
            if pending_alerts:
                self.policy.on_alerts(t, tuple(pending_alerts))
                pending_alerts.clear()
            observations = {
                name: TenantObservation(
                    arrivals=window_arrivals[name],
                    queue_depth=queues[name].depth,
                    busy=servers[self.policy.server_of(name)].busy,
                )
                for name in names
            }
            for name in names:
                window_arrivals[name] = 0
            action = self.policy.on_interval(t, observations)
            if action is not None:
                apply_resize(t, action)

        def apply_resize(t: float, action: ResizeAction) -> None:
            if table is not None:
                # The resized tenants' service times (and so their phase
                # templates) changed; in-flight batches keep the key
                # they dispatched with.
                for name in action.stall_ms:
                    flush_attribution(name)
                    table.invalidate(name)
            if monitor is not None:
                monitor.record_resize(t)
            for name, stall in action.stall_ms.items():
                server = self.policy.server_of(name)
                state = servers[server]
                # Re-staging begins once the in-flight request drains.
                begin = state.free_at_ms if state.busy else t
                state.stall_until_ms = max(state.stall_until_ms, max(begin, t) + stall)
            resizes.append(
                ResizeEvent(
                    time_ms=t,
                    shares=dict(action.shares),
                    region_starts=dict(action.region_starts),
                    stall_ms=dict(action.stall_ms),
                    placements_recomputed=action.placements_recomputed,
                )
            )
            count("serving/resizes")
            if sink.enabled:
                assert sink.registry is not None and sink.trace is not None
                for name, share in action.shares.items():
                    sink.registry.gauge(f"serving/partition/{name}/cores").set(share)
                sink.trace.instant(
                    "serving/partition",
                    "resize",
                    t,
                    args={
                        "shares": dict(sorted(action.shares.items())),
                        "stall_ms": dict(sorted(action.stall_ms.items())),
                    },
                )
            # Wake idle resized servers so their queues re-arm behind the
            # stall gate instead of sleeping until the next arrival.
            for name in action.stall_ms:
                dispatch(self.policy.server_of(name))

        for tenant in tenants:
            schedule_arrival(tenant, tenant.arrivals.first_ms())
        interval = self.policy.control_interval_ms
        if interval is not None:
            ticks = int(math.ceil(duration_ms / interval)) - 1
            for k in range(1, ticks + 1):
                t = k * interval
                if t < duration_ms:
                    queue.schedule(
                        t, lambda t=t: control(t), tag="serving/control",
                        actor="control",
                        writes=("partition",),
                    )
        if self.preflight:
            # Static determinism scan of the initial event population:
            # any same-timestamp write-write conflict across actors would
            # make batched draining order-sensitive (DET801).
            det = check_batches(accesses_from_queue(queue))
            if not det.ok:
                raise PlanVerificationError(
                    "serving admission found a non-commutative event "
                    "batch:\n" + det.render(),
                    det,
                )
        queue.run()
        # Close the monitor's final window (nothing arrives after the
        # drain, so every open window is decidable now).
        poll_monitor(queue.now + window)

        if table is not None:
            for name in list(attr_cache):
                flush_attribution(name)
            for name in names:
                report = reports[name]
                phase_names, phase_categories, durations = table.aggregate(
                    name,
                    report.queue_wait_ms_total,
                    report.histogram.total,
                )
                report.attribution = dict(zip(phase_names, durations))
                report.attribution_categories = dict(
                    zip(phase_names, phase_categories)
                )

        return ServingRunResult(
            policy=self.policy.name,
            discipline=self.discipline,
            duration_ms=duration_ms,
            reports=reports,
            resizes=resizes,
            servers={n: self.policy.server_of(n) for n in names},
            server_busy_ms={s: st.busy_ms for s, st in sorted(servers.items())},
            final_shares=self.policy.shares(),
            alerts=alerts,
        )
