"""SLO accounting: per-tenant latency distributions, misses, goodput.

Latencies feed a :class:`repro.telemetry.Histogram` (half-power-of-two
millisecond buckets), so the p50/p95/p99 figures come from the same
bucket-interpolated :meth:`~repro.telemetry.Histogram.percentile`
estimator the telemetry registry exports — a serving run's JSON report
and its ``metrics.json`` agree by construction.  Exact latency lists are
kept alongside for tests and offline analysis.

Everything in a report derives from simulation time, so
:meth:`ServingRunResult.as_dict` is deterministic: two runs with the same
seeds export byte-identical JSON (the CI ``serving-smoke`` job pins
this).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.obs.monitor import AlertEvent
from repro.obs.timeline import RequestTimeline
from repro.telemetry import Histogram

#: Histogram bucket upper bounds for request latencies, in milliseconds:
#: half-power-of-two steps from ~8 us to ~16 s.
SLO_LATENCY_BUCKETS_MS: Tuple[float, ...] = tuple(
    2.0 ** (i / 2.0) for i in range(-14, 29)
)


@dataclass
class TenantReport:
    """One tenant's fate over a serving run."""

    tenant: str
    arrivals: int = 0          # requests the load generator produced
    admitted: int = 0          # accepted into the queue
    shed: int = 0              # rejected by admission control
    completed: int = 0         # finished inside the run window
    overrun: int = 0           # finished after the window closed
    failed: int = 0            # lost to a chip halt (crash) — never silent
    deadline_misses: int = 0   # completed, but after their deadline
    latencies_ms: List[float] = field(default_factory=list)
    queue_wait_ms_total: float = 0.0
    service_ms_total: float = 0.0
    histogram: Histogram = field(
        default_factory=lambda: Histogram(bounds=SLO_LATENCY_BUCKETS_MS)
    )
    #: Whole-run latency attribution (phase name -> total ms), ordered by
    #: phase position; the values left-to-right sum bit-exactly to the
    #: histogram's running latency total (see ``repro.obs.timeline``).
    attribution: Dict[str, float] = field(default_factory=dict)
    attribution_categories: Dict[str, str] = field(default_factory=dict)
    #: Per-request timelines — populated only on the collected path
    #: (telemetry enabled or ``collect_timelines=True``).
    timelines: List[RequestTimeline] = field(default_factory=list)

    def record_completion(
        self, latency_ms: float, queue_wait_ms: float, service_ms: float,
        *, met_deadline: bool,
    ) -> None:
        self.completed += 1
        self.latencies_ms.append(latency_ms)
        self.histogram.observe(latency_ms)
        self.queue_wait_ms_total += queue_wait_ms
        self.service_ms_total += service_ms
        if not met_deadline:
            self.deadline_misses += 1

    # -- distribution ----------------------------------------------------------

    def percentile(self, q: float) -> float:
        """Bucket-interpolated latency percentile in milliseconds."""
        return self.histogram.percentile(q)

    @property
    def p50_ms(self) -> float:
        return self.percentile(50.0)

    @property
    def p95_ms(self) -> float:
        return self.percentile(95.0)

    @property
    def p99_ms(self) -> float:
        return self.percentile(99.0)

    @property
    def mean_latency_ms(self) -> float:
        return self.histogram.mean

    @property
    def max_latency_ms(self) -> float:
        return float(self.histogram.max) if self.histogram.count else 0.0

    # -- SLO -------------------------------------------------------------------

    @property
    def deadline_miss_rate(self) -> float:
        """Fraction of completed requests that finished past their deadline."""
        return self.deadline_misses / self.completed if self.completed else 0.0

    @property
    def shed_rate(self) -> float:
        return self.shed / self.arrivals if self.arrivals else 0.0

    def goodput_rps(self, duration_ms: float) -> float:
        """On-time completions per second of simulated time."""
        on_time = self.completed - self.deadline_misses
        return on_time * 1000.0 / duration_ms if duration_ms > 0 else 0.0

    def as_dict(self, duration_ms: float) -> Dict[str, object]:
        return {
            "arrivals": self.arrivals,
            "admitted": self.admitted,
            "shed": self.shed,
            "completed": self.completed,
            "overrun": self.overrun,
            "failed": self.failed,
            "deadline_misses": self.deadline_misses,
            "deadline_miss_rate": self.deadline_miss_rate,
            "goodput_rps": self.goodput_rps(duration_ms),
            "latency_ms": {
                "mean": self.mean_latency_ms,
                "max": self.max_latency_ms,
                "p50": self.p50_ms,
                "p95": self.p95_ms,
                "p99": self.p99_ms,
            },
            "queue_wait_ms_total": self.queue_wait_ms_total,
            "service_ms_total": self.service_ms_total,
            "attribution": {
                "phases": dict(self.attribution),
                "categories": dict(self.attribution_categories),
            },
        }


@dataclass
class ResizeEvent:
    """One applied elastic re-partitioning."""

    time_ms: float
    shares: Dict[str, int]
    region_starts: Dict[str, int]
    stall_ms: Dict[str, float]
    placements_recomputed: int = 0

    def as_dict(self) -> Dict[str, object]:
        return {
            "time_ms": self.time_ms,
            "shares": dict(sorted(self.shares.items())),
            "region_starts": dict(sorted(self.region_starts.items())),
            "stall_ms": dict(sorted(self.stall_ms.items())),
            "placements_recomputed": self.placements_recomputed,
        }


@dataclass
class ServingRunResult:
    """Everything one online serving run produced."""

    policy: str
    discipline: str
    duration_ms: float
    reports: Dict[str, TenantReport]
    resizes: List[ResizeEvent] = field(default_factory=list)
    servers: Dict[str, str] = field(default_factory=dict)
    server_busy_ms: Dict[str, float] = field(default_factory=dict)
    final_shares: Dict[str, int] = field(default_factory=dict)
    #: Structured SLO alerts raised by the run's monitor (empty when the
    #: run had none attached).
    alerts: List[AlertEvent] = field(default_factory=list)

    @property
    def total_arrivals(self) -> int:
        return sum(r.arrivals for r in self.reports.values())

    @property
    def total_completed(self) -> int:
        return sum(r.completed for r in self.reports.values())

    @property
    def total_shed(self) -> int:
        return sum(r.shed for r in self.reports.values())

    @property
    def total_failed(self) -> int:
        return sum(r.failed for r in self.reports.values())

    @property
    def total_deadline_misses(self) -> int:
        return sum(r.deadline_misses for r in self.reports.values())

    @property
    def worst_p99_ms(self) -> float:
        """The slowest tenant's p99 — the headline multi-tenant SLO figure."""
        return max((r.p99_ms for r in self.reports.values()), default=0.0)

    def utilization(self, server: Optional[str] = None) -> float:
        """Busy fraction of one server, or the mean over all servers."""
        if self.duration_ms <= 0 or not self.server_busy_ms:
            return 0.0
        if server is not None:
            return self.server_busy_ms[server] / self.duration_ms
        return sum(self.server_busy_ms.values()) / (
            self.duration_ms * len(self.server_busy_ms)
        )

    def as_dict(self) -> Dict[str, object]:
        """Deterministic JSON-ready export (sorted keys, sim-time only)."""
        return {
            "policy": self.policy,
            "discipline": self.discipline,
            "duration_ms": self.duration_ms,
            "tenants": {
                name: report.as_dict(self.duration_ms)
                for name, report in sorted(self.reports.items())
            },
            "resizes": [event.as_dict() for event in self.resizes],
            "alerts": [alert.as_dict() for alert in self.alerts],
            "servers": dict(sorted(self.servers.items())),
            "server_busy_ms": dict(sorted(self.server_busy_ms.items())),
            "final_shares": dict(sorted(self.final_shares.items())),
            "utilization": self.utilization(),
            "totals": {
                "arrivals": self.total_arrivals,
                "completed": self.total_completed,
                "shed": self.total_shed,
                "failed": self.total_failed,
                "deadline_misses": self.total_deadline_misses,
                "worst_p99_ms": self.worst_p99_ms,
            },
        }

    def to_json(self, *, indent: Optional[int] = 2) -> str:
        return json.dumps(self.as_dict(), indent=indent, sort_keys=True)
