"""Online multi-tenant serving of the MAICC array.

Turns the chip simulator into an online inference service: per-tenant
load generators replay arrivals on the discrete-event kernel, admission
control bounds each tenant's queue (shedding is counted, never silent),
a :class:`ServingPolicy` decides who owns which cores — statically,
time-shared, or elastically resized against observed demand — and SLO
accounting reports per-tenant latency percentiles, deadline misses,
goodput, and utilization through the telemetry registry and trace.

Quickstart::

    from repro.serving import (
        ElasticPolicy, PoissonArrivals, ServingSimulator, TenantSpec,
    )
    from repro.nn.workloads import small_cnn_spec

    tenants = [
        TenantSpec("cam", small_cnn_spec(), PoissonArrivals(800, seed=1),
                   deadline_ms=2.0),
        TenantSpec("lidar", small_cnn_spec(h=16), PoissonArrivals(200, seed=2),
                   deadline_ms=5.0),
    ]
    result = ServingSimulator(ElasticPolicy()).run(tenants, duration_ms=100.0)
    print(result.reports["cam"].p99_ms, result.total_shed)

See ``docs/SERVING.md`` for policies, elasticity knobs, and how to read
the Perfetto serving timeline.
"""

from repro.serving.arrivals import (
    ArrivalProcess,
    ClosedLoopArrivals,
    PeriodicArrivals,
    PoissonArrivals,
    TraceArrivals,
)
from repro.serving.policies import (
    ElasticPolicy,
    FixedServicePolicy,
    ResizeAction,
    SHARED_SERVER,
    ServingPolicy,
    StaticPartitionPolicy,
    TenantObservation,
    TimeSharedPolicy,
)
from repro.serving.chip import ChipHandle
from repro.serving.queues import AdmissionQueue, DISCIPLINES
from repro.serving.scenarios import (
    SCENARIOS,
    bursty_tenants,
    mixed_rate_tenants,
    smoke_tenants,
)
from repro.serving.service import ServiceModel
from repro.serving.simulator import ServingSimulator
from repro.serving.slo import (
    ResizeEvent,
    SLO_LATENCY_BUCKETS_MS,
    ServingRunResult,
    TenantReport,
)
from repro.serving.tenancy import Request, TenantSpec

__all__ = [
    "AdmissionQueue",
    "ArrivalProcess",
    "ChipHandle",
    "ClosedLoopArrivals",
    "DISCIPLINES",
    "ElasticPolicy",
    "FixedServicePolicy",
    "PeriodicArrivals",
    "PoissonArrivals",
    "Request",
    "ResizeAction",
    "ResizeEvent",
    "SCENARIOS",
    "SHARED_SERVER",
    "SLO_LATENCY_BUCKETS_MS",
    "ServiceModel",
    "ServingPolicy",
    "ServingRunResult",
    "ServingSimulator",
    "StaticPartitionPolicy",
    "TenantObservation",
    "TenantReport",
    "TimeSharedPolicy",
    "TraceArrivals",
    "bursty_tenants",
    "mixed_rate_tenants",
    "smoke_tenants",
]
