"""Declarative design-space sweeps: axes in, design points out.

A :class:`SweepSpec` names the architecture and run axes to cross —
mesh dimensions, CMem slice count and row geometry, DRAM channel count,
mapping strategy, backend tier, network — and :meth:`SweepSpec.expand`
produces the full cartesian product as frozen, picklable
:class:`DesignPoint` records in a deterministic order (axes iterate in
declaration order, rightmost fastest, exactly like nested for-loops).

Each :class:`DesignPoint` knows how to derive the concrete machine
description the simulator stack consumes (:meth:`DesignPoint.sim_config`).
The derivations are *exact at the paper's defaults*: the default point
(16x16 mesh, 7 compute slices, 64 rows, 32 DRAM channels) reproduces
``SimConfig()`` — same :class:`~repro.core.chip.ChipConfig`, same
:class:`~repro.energy.constants.ChipConstants`, same
:class:`~repro.core.perfmodel.TimingParams`, bit-for-bit — which is what
lets the table/figure experiment drivers run through the sweep engine
while staying byte-identical to their pre-refactor outputs.

Off-default axes scale the calibrated constants linearly from the
32-channel / 7-slice / 64-row reference design:

* ``mesh`` sets the LLC rows to top+bottom and the host column to the
  rightmost column (the Fig. 3(a) floorplan at any size); the core count
  and the mapper's array size follow from the geometry.
* ``cmem_slices`` / ``cmem_rows`` set the capacity model *and* the CMem
  area (slice area scales with rows), with node leakage scaling in
  proportion to CMem area.
* ``dram_channels`` scales the aggregate weight-load bandwidth, the
  streamed-ifmap fetch cost, and the DRAM background power — one LLC
  tile per channel up to the floorplan's two LLC rows.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, fields, replace
from typing import Callable, Dict, List, Tuple

from repro.core.chip import ChipConfig
from repro.core.perfmodel import TimingParams
from repro.dram.controller import DRAMConfig
from repro.energy.constants import ChipConstants
from repro.errors import ConfigurationError
from repro.mapping.capacity import CapacityModel
from repro.nn.workloads import (
    NetworkSpec,
    lstm_cell_spec,
    mlp_spec,
    resnet18_spec,
    small_cnn_spec,
    transformer_block_spec,
    vgg11_spec,
)
from repro.sim.config import SimConfig

#: Networks a sweep can name (factory per name, so every design point
#: builds its own spec — workers never share mutable state).
NETWORKS: Dict[str, Callable[[], NetworkSpec]] = {
    "resnet18": resnet18_spec,
    "small_cnn": small_cnn_spec,
    "vgg11": vgg11_spec,
    "mlp": mlp_spec,
    "lstm_cell": lstm_cell_spec,
    "transformer_block": transformer_block_spec,
}

#: The reference design every scaling is anchored to (the paper's chip).
REF_MESH = (16, 16)
REF_SLICES = 7
REF_ROWS = 64
REF_CHANNELS = 32


@dataclass(frozen=True)
class DesignPoint:
    """One fully-specified (machine, run) pair of a sweep.

    Plain frozen data — picklable, hashable, and cheap to ship to a
    worker process.  All derivation happens in the accessor methods so
    the record itself stays a pure coordinate tuple.
    """

    network: str
    backend: str
    strategy: str = "heuristic"
    mesh: Tuple[int, int] = REF_MESH
    cmem_slices: int = REF_SLICES
    cmem_rows: int = REF_ROWS
    dram_channels: int = REF_CHANNELS
    batch: int = 1
    batch_requests: int = 1

    def __post_init__(self) -> None:
        if self.network not in NETWORKS:
            raise ConfigurationError(
                f"unknown network {self.network!r}; "
                f"choose from {sorted(NETWORKS)}"
            )
        w, h = self.mesh
        if w < 3 or h < 4:
            raise ConfigurationError(
                f"mesh {w}x{h} leaves no compute region (need >= 3x4)"
            )
        if self.cmem_slices < 1:
            raise ConfigurationError("cmem_slices must be >= 1")
        if self.cmem_rows < 16:
            raise ConfigurationError("cmem_rows must be >= 16")
        if self.dram_channels < 1:
            raise ConfigurationError("dram_channels must be >= 1")

    # -- identity ---------------------------------------------------------------

    @property
    def point_id(self) -> str:
        """Stable human-readable id, unique within any sweep."""
        w, h = self.mesh
        pid = (
            f"{self.network}/{self.backend}/{self.strategy}"
            f"/m{w}x{h}/s{self.cmem_slices}r{self.cmem_rows}"
            f"/d{self.dram_channels}"
        )
        if self.batch != 1 or self.batch_requests != 1:
            pid += f"/b{self.batch}q{self.batch_requests}"
        return pid

    def axes_dict(self) -> Dict[str, object]:
        """The coordinate tuple as a JSON-safe dict."""
        return {
            "network": self.network,
            "backend": self.backend,
            "strategy": self.strategy,
            "mesh": list(self.mesh),
            "cmem_slices": self.cmem_slices,
            "cmem_rows": self.cmem_rows,
            "dram_channels": self.dram_channels,
            "batch": self.batch,
            "batch_requests": self.batch_requests,
        }

    # -- derived machine description --------------------------------------------

    @property
    def compute_tiles(self) -> int:
        w, h = self.mesh
        return w * h - 2 * w - (h - 2)

    @property
    def array_size(self) -> int:
        """Cores the mapper may hand to one segment's node groups.

        Two cores stay reserved for the widest segment's distribution
        cores, mirroring the paper's 210 -> 208 split at any mesh size.
        """
        return self.compute_tiles - 2

    def constants(self) -> ChipConstants:
        """Physical constants scaled from the reference design.

        CMem slice area scales with the row count; per-node leakage
        scales with the node's CMem area; DRAM background power scales
        with the channel count.  At the reference coordinates every
        factor is exactly 1.0, so this returns ``ChipConstants()``
        values bit-for-bit.
        """
        base = ChipConstants()
        w, _ = self.mesh
        row_scale = self.cmem_rows / REF_ROWS
        slice0 = base.slice0_area_mm2_40nm * row_scale
        compute_slice = base.compute_slice_area_mm2_40nm * row_scale
        ref_cmem_area = (
            base.slice0_area_mm2_40nm
            + REF_SLICES * base.compute_slice_area_mm2_40nm
        )
        cmem_area = slice0 + self.cmem_slices * compute_slice
        return ChipConstants(
            num_cores=self.compute_tiles,
            num_llc_tiles=2 * w,
            num_compute_slices=self.cmem_slices,
            slice0_area_mm2_40nm=slice0,
            compute_slice_area_mm2_40nm=compute_slice,
            cmem_leakage_w_per_node=(
                base.cmem_leakage_w_per_node * (cmem_area / ref_cmem_area)
            ),
            dram_background_w=(
                base.dram_background_w * (self.dram_channels / REF_CHANNELS)
            ),
        )

    def chip_config(self) -> ChipConfig:
        w, h = self.mesh
        return ChipConfig(
            mesh_width=w,
            mesh_height=h,
            llc_rows=(0, h - 1),
            host_column=w - 1,
            host_tile=(w - 1, 1),
            constants=self.constants(),
        )

    def timing_params(self) -> TimingParams:
        """Unit costs with the DRAM-bandwidth terms scaled per channel."""
        base = TimingParams()
        scale = self.dram_channels / REF_CHANNELS
        return replace(
            base,
            filter_load_bw=base.filter_load_bw * scale,
            dram_fetch_cost_per_byte=base.dram_fetch_cost_per_byte / scale,
        )

    def capacity(self) -> CapacityModel:
        return CapacityModel(
            compute_slices=self.cmem_slices, rows=self.cmem_rows
        )

    def dram_config(self) -> DRAMConfig:
        return DRAMConfig(channels=self.dram_channels)

    def sim_config(self) -> SimConfig:
        return SimConfig(
            chip=self.chip_config(),
            params=self.timing_params(),
            capacity=self.capacity(),
            array_size=self.array_size,
            strategy=self.strategy,
            batch=self.batch,
            batch_requests=self.batch_requests,
        )

    def build_network(self) -> NetworkSpec:
        return NETWORKS[self.network]()


@dataclass(frozen=True)
class SweepSpec:
    """The declarative description of a design-space sweep.

    Every field except ``name``/``batch``/``batch_requests`` is an axis;
    :meth:`expand` crosses them in declaration order (network outermost,
    DRAM channels innermost).  Axis values must be unique; the expansion
    order is part of the artifact contract (JSON points appear in it).
    """

    name: str
    networks: Tuple[str, ...] = ("resnet18",)
    backends: Tuple[str, ...] = ("streaming",)
    strategies: Tuple[str, ...] = ("heuristic",)
    meshes: Tuple[Tuple[int, int], ...] = (REF_MESH,)
    cmem_slices: Tuple[int, ...] = (REF_SLICES,)
    cmem_rows: Tuple[int, ...] = (REF_ROWS,)
    dram_channels: Tuple[int, ...] = (REF_CHANNELS,)
    batch: int = 1
    batch_requests: int = 1

    def __post_init__(self) -> None:
        for f in fields(self):
            value = getattr(self, f.name)
            if isinstance(value, tuple):
                if not value:
                    raise ConfigurationError(f"axis {f.name!r} is empty")
                if len(set(value)) != len(value):
                    raise ConfigurationError(
                        f"axis {f.name!r} has duplicate values: {value}"
                    )

    @property
    def size(self) -> int:
        return (
            len(self.networks) * len(self.backends) * len(self.strategies)
            * len(self.meshes) * len(self.cmem_slices)
            * len(self.cmem_rows) * len(self.dram_channels)
        )

    def expand(self) -> List[DesignPoint]:
        """The full cartesian product, in deterministic axis order."""
        return [
            DesignPoint(
                network=network,
                backend=backend,
                strategy=strategy,
                mesh=mesh,
                cmem_slices=slices,
                cmem_rows=rows,
                dram_channels=channels,
                batch=self.batch,
                batch_requests=self.batch_requests,
            )
            for network, backend, strategy, mesh, slices, rows, channels
            in itertools.product(
                self.networks, self.backends, self.strategies, self.meshes,
                self.cmem_slices, self.cmem_rows, self.dram_channels,
            )
        ]

    def axes_dict(self) -> Dict[str, object]:
        """JSON-safe summary of the sweep's axes (report meta section)."""
        return {
            "networks": list(self.networks),
            "backends": list(self.backends),
            "strategies": list(self.strategies),
            "meshes": [list(m) for m in self.meshes],
            "cmem_slices": list(self.cmem_slices),
            "cmem_rows": list(self.cmem_rows),
            "dram_channels": list(self.dram_channels),
            "batch": self.batch,
            "batch_requests": self.batch_requests,
        }


__all__ = [
    "NETWORKS",
    "REF_CHANNELS",
    "REF_MESH",
    "REF_ROWS",
    "REF_SLICES",
    "DesignPoint",
    "SweepSpec",
]
