"""The sweep engine: expand, preflight, shard, consolidate.

:func:`run_sweep` is the one execution path for every architecture
sweep in the repo — ``scripts/dse.py``, the table/figure experiment
drivers, and the bench harness all go through it:

1. :meth:`SweepSpec.expand` produces the design points (deterministic
   order);
2. each point is evaluated *independently* by :func:`evaluate_point` —
   map, plan, statically verify (:func:`repro.analysis.system.analyze_plan`,
   ``plan`` family, with the point's own DRAM geometry), then simulate
   on the point's backend tier through the :mod:`repro.sim` registry;
3. points shard across processes via
   :func:`repro.utils.parallel.run_sharded` (``workers=0`` serial) —
   evaluation order within a worker never affects results because every
   point is a pure function of its coordinates;
4. the parent consolidates into a :class:`DSEResult`, attaching the
   per-network baseline section (computed once, serially — the scalar
   baseline memoizes a pipeline measurement that must not be repeated
   per worker).

Non-simulable points do not abort the sweep: mapping failures become
``infeasible`` rows, verifier rejections become ``rejected`` rows with
their rule IDs, and backend failures become ``error`` rows.  The JSON
artifact therefore always accounts for every expanded point.

The module also hosts the *grid evaluator* registry — the same
executor applied to non-network experiments (the Table 4/5 node-level
comparisons): a registered evaluator name plus a list of plain-dict
cells shards exactly like design points do.
"""

from __future__ import annotations

from dataclasses import replace
from functools import partial
from typing import Callable, Dict, List, Mapping, Sequence, Tuple

from repro.analysis.system import analyze_plan
from repro.baselines.neural_cache import NeuralCacheModel
from repro.baselines.scalar_core import ScalarConvBaseline
from repro.dse.result import DSEResult, PointResult
from repro.dse.spec import NETWORKS, DesignPoint, SweepSpec
from repro.energy.area import area_breakdown
from repro.errors import (
    BackendError,
    CapacityError,
    ConfigurationError,
    MappingError,
    SimulationError,
)
from repro.mapping.tiling import tile_network
from repro.sim.accounting import plan_network
from repro.sim.backends import simulate
from repro.utils.parallel import run_sharded


def evaluate_point(point: DesignPoint, *, keep_report: bool = False) -> PointResult:
    """Evaluate one design point end to end (pure; picklable; top-level).

    Never raises for per-point failures — the sweep must complete and
    account for every point.  Configuration errors in the *axes*
    themselves surface earlier, from :meth:`SweepSpec.expand`.
    """
    cfg = point.sim_config()
    network = point.build_network()
    try:
        tiled = tile_network(network, cfg.capacity, cfg.array_size)
        plan = plan_network(tiled, cfg.strategy, cfg)
    except (CapacityError, MappingError, ConfigurationError) as exc:
        return PointResult(
            point=point, status="infeasible",
            detail=f"{type(exc).__name__}: {exc}",
        )

    # Static preflight with the point's own DRAM geometry — richer than
    # the simulate() gate (which assumes the default controller), so the
    # per-channel bandwidth budget is checked against *this* machine.
    lint = analyze_plan(
        plan=plan, config=cfg, dram=point.dram_config(), families=("plan",)
    )
    if not lint.ok:
        rules = tuple(sorted({d.rule for d in lint.errors}))
        return PointResult(
            point=point, status="rejected",
            detail=lint.errors[0].message, findings=rules,
        )

    try:
        report = simulate(
            network,
            backend=point.backend,
            config=replace(cfg, preflight=False),  # verified above
            plan=plan,
        )
    except (SimulationError, BackendError, MappingError) as exc:
        return PointResult(
            point=point, status="error",
            detail=f"{type(exc).__name__}: {exc}",
        )

    energy = report.energy
    area = area_breakdown(cfg.chip.constants)
    return PointResult(
        point=point,
        status="ok",
        latency_ms=report.latency_ms,
        total_cycles=report.total_cycles,
        energy_j={
            "dram": energy.dram, "cmem": energy.cmem, "noc": energy.noc,
            "core": energy.core, "llc": energy.llc,
        },
        area_mm2={
            "cmem": area.cmem, "core": area.core,
            "local_mem": area.local_mem, "noc": area.noc, "llc": area.llc,
        },
        average_power_w=report.average_power_w,
        throughput_samples_s=report.throughput_samples_s,
        gops_per_watt=report.gops_per_watt(include_dram=False),
        report=report if keep_report else None,
    )


def network_baselines(networks: Sequence[str]) -> Dict[str, Dict[str, float]]:
    """Scalar-core and Neural Cache references per network.

    Both are the calibrated *single-node* models of Table 4 applied
    layer by layer (one node runs the whole network serially) — the
    same comparison basis the paper uses for its node-level table,
    extended to whole networks so every sweep row gets an
    ``energy_gain_vs_*`` / ``speedup_vs_*`` column.
    """
    scalar = ScalarConvBaseline()  # memoizes the pipeline measurement
    cache = NeuralCacheModel()
    out: Dict[str, Dict[str, float]] = {}
    for name in sorted(set(networks)):
        spec = NETWORKS[name]()
        totals = {
            "scalar_cycles": 0.0, "scalar_energy_j": 0.0,
            "neural_cache_cycles": 0.0, "neural_cache_energy_j": 0.0,
        }
        for layer in spec:
            s = scalar.run(layer)
            totals["scalar_cycles"] += s.total_cycles
            totals["scalar_energy_j"] += s.energy_j
            n = cache.run(layer)
            totals["neural_cache_cycles"] += float(n.cycles)
            totals["neural_cache_energy_j"] += n.energy_j
        totals["total_macs"] = float(spec.total_macs)
        out[name] = totals
    return out


def run_sweep(
    spec: SweepSpec,
    *,
    workers: int = 0,
    keep_reports: bool = False,
    baselines: bool = True,
) -> DSEResult:
    """Run every design point of ``spec`` and consolidate.

    ``workers`` shards points across processes (0 = serial; results are
    byte-identical either way).  ``keep_reports=True`` attaches each ok
    point's full :class:`~repro.sim.report.RunReport` — the experiment
    drivers need it; plain sweeps skip the pickling weight.
    ``baselines=False`` skips the baseline section (the node-level
    drivers don't use it).
    """
    points = spec.expand()
    results = run_sharded(
        partial(evaluate_point, keep_report=keep_reports),
        points,
        workers=workers,
    )
    base = network_baselines(spec.networks) if baselines else {}
    return DSEResult(spec=spec, points=results, baselines=base)


# -- grid evaluators: the executor for non-network experiments ---------------------

GridCell = Mapping[str, object]

_GRID_EVALUATORS: Dict[str, Callable[[GridCell], Mapping[str, object]]] = {}


def register_grid_evaluator(
    name: str,
    fn: Callable[[GridCell], Mapping[str, object]],
    *,
    replace: bool = False,
) -> None:
    """Register a named cell evaluator (a pure top-level function).

    Registration happens at import time in the parent; worker processes
    inherit the registry through ``fork`` (the only start method
    :func:`run_sharded` parallelizes under).
    """
    if name in _GRID_EVALUATORS and not replace:
        raise ConfigurationError(
            f"grid evaluator {name!r} is already registered"
        )
    _GRID_EVALUATORS[name] = fn


def _evaluate_cell(job: Tuple[str, Dict[str, object]]) -> Mapping[str, object]:
    name, cell = job
    return _GRID_EVALUATORS[name](cell)


def run_grid(
    evaluator: str,
    cells: Sequence[GridCell],
    *,
    workers: int = 0,
) -> List[Mapping[str, object]]:
    """Shard ``cells`` through the named evaluator, preserving order."""
    if evaluator not in _GRID_EVALUATORS:
        raise ConfigurationError(
            f"unknown grid evaluator {evaluator!r}; "
            f"registered: {sorted(_GRID_EVALUATORS)}"
        )
    jobs = [(evaluator, dict(cell)) for cell in cells]
    return run_sharded(_evaluate_cell, jobs, workers=workers)


__all__ = [
    "evaluate_point",
    "network_baselines",
    "register_grid_evaluator",
    "run_grid",
    "run_sweep",
]
