"""Consolidated sweep results: breakdown tables, reference columns, Pareto.

One :class:`PointResult` per design point (plain data, picklable); one
:class:`DSEResult` per sweep, joining the energy/area models
(``repro.energy``) and the calibrated baselines (``repro.baselines``)
into the consolidated tables the ``dse`` report kind renders:

* ``latency_table`` — latency / throughput / power per point, with
  ``*_ref`` / ``*_vs_ref`` comparison columns against the paper's
  ResNet18 measurement where one exists;
* ``energy_table`` — the Fig. 10 per-block energy split per point, with
  scalar-core and Neural Cache baseline ratios per network;
* ``area_table`` — the Fig. 10 per-block area split per *architecture*
  (points sharing a chip share a row), compared against the paper's
  28 mm^2 chip;
* ``pareto`` — the non-dominated (latency, energy) frontier.

The ``*_ref`` column convention follows the MIT energy-harness style:
``add_compare_ref(row, key, ref)`` adds ``{key}_ref`` (the reference
value) and ``{key}_vs_ref`` (measured / reference) next to every
measured column, so a table is self-auditing without a second document.

Everything here is a pure function of the point results, and
:meth:`DSEResult.to_json` sorts keys — two runs of the same sweep (any
worker count) serialize byte-identically.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.dse.spec import DesignPoint, SweepSpec
from repro.sim.report import RunReport

#: Paper reference values the comparison columns anchor to.
#: ResNet18 numbers are Table 7 (measured MAICC row); the chip area is
#: the Sec. 5 total; the reference energy is power x latency.
PAPER_REF_CHIP_AREA_MM2 = 28.0
PAPER_REF_RESNET18_LATENCY_MS = 5.13
PAPER_REF_RESNET18_POWER_W = 24.67
PAPER_REF_RESNET18_ENERGY_J = (
    PAPER_REF_RESNET18_LATENCY_MS * 1e-3 * PAPER_REF_RESNET18_POWER_W
)

ENERGY_BLOCKS = ("dram", "cmem", "noc", "core", "llc")
AREA_BLOCKS = ("cmem", "core", "local_mem", "noc", "llc")


def compare_ref(value: float, ref: float) -> float:
    """Measured / reference — the ratio every ``*_vs_ref`` column holds."""
    return value / ref


def add_compare_ref(row: Dict[str, object], key: str, ref: float) -> None:
    """Add ``{key}_ref`` and ``{key}_vs_ref`` beside a measured column."""
    value = row[key]
    assert isinstance(value, (int, float))
    row[f"{key}_ref"] = ref
    row[f"{key}_vs_ref"] = compare_ref(float(value), ref)


@dataclass
class PointResult:
    """What one design point produced.

    ``status`` is one of ``ok`` (simulated), ``infeasible`` (the mapper
    could not place the network on this machine), ``rejected`` (the
    static plan verifier found an error-severity violation), or
    ``error`` (the backend raised).  Non-``ok`` points carry the reason
    in ``detail``/``findings`` and keep their row in the artifact — a
    sweep that silently dropped points would misreport its coverage.
    """

    point: DesignPoint
    status: str
    detail: str = ""
    findings: Tuple[str, ...] = ()
    latency_ms: float = 0.0
    total_cycles: float = 0.0
    energy_j: Dict[str, float] = field(default_factory=dict)
    area_mm2: Dict[str, float] = field(default_factory=dict)
    average_power_w: float = 0.0
    throughput_samples_s: float = 0.0
    gops_per_watt: float = 0.0
    #: Attached only when the engine ran with ``keep_reports=True`` —
    #: the experiment drivers need the full tier output (per-segment
    #: flows, the streaming result for Fig. 9); the JSON artifact never
    #: includes it.
    report: Optional[RunReport] = None

    @property
    def ok(self) -> bool:
        return self.status == "ok"

    @property
    def total_energy_j(self) -> float:
        return sum(self.energy_j.values())

    @property
    def total_area_mm2(self) -> float:
        return sum(self.area_mm2.values())

    @property
    def edp_js(self) -> float:
        """Energy-delay product (J*s) — the scalarized Pareto tiebreak."""
        return self.total_energy_j * self.latency_ms * 1e-3

    def as_dict(self) -> Dict[str, object]:
        out: Dict[str, object] = {
            "point_id": self.point.point_id,
            "axes": self.point.axes_dict(),
            "status": self.status,
        }
        if self.detail:
            out["detail"] = self.detail
        if self.findings:
            out["findings"] = list(self.findings)
        if self.ok:
            out.update(
                latency_ms=self.latency_ms,
                total_cycles=self.total_cycles,
                energy_j=dict(self.energy_j),
                energy_total_j=self.total_energy_j,
                area_mm2=dict(self.area_mm2),
                area_total_mm2=self.total_area_mm2,
                average_power_w=self.average_power_w,
                throughput_samples_s=self.throughput_samples_s,
                gops_per_watt=self.gops_per_watt,
                edp_js=self.edp_js,
            )
        return out


def pareto_frontier(
    results: Sequence[PointResult],
    objectives: Tuple[str, ...] = ("latency_ms", "total_energy_j"),
) -> List[PointResult]:
    """The non-dominated subset of the ``ok`` points, minimizing all
    ``objectives`` (attribute names on :class:`PointResult`).

    A point is dominated when another point is <= on every objective and
    strictly < on at least one.  Ties (identical objective vectors) all
    stay on the frontier.  The frontier is returned sorted by the first
    objective, then the remaining objectives, then ``point_id`` — a
    total order, so the artifact is deterministic.
    """
    ok = [r for r in results if r.ok]

    def key(r: PointResult) -> Tuple:
        return tuple(getattr(r, o) for o in objectives) + (r.point.point_id,)

    def dominates(a: PointResult, b: PointResult) -> bool:
        av = [getattr(a, o) for o in objectives]
        bv = [getattr(b, o) for o in objectives]
        return all(x <= y for x, y in zip(av, bv)) and av != bv

    frontier = [
        r for r in ok
        if not any(dominates(other, r) for other in ok if other is not r)
    ]
    return sorted(frontier, key=key)


@dataclass
class DSEResult:
    """Everything one sweep produced, consolidated."""

    spec: SweepSpec
    points: List[PointResult]
    #: Per-network baseline section: scalar-core and Neural Cache energy
    #: and cycles for the whole network (single-node models applied
    #: layer by layer — see ``repro.dse.engine.network_baselines``).
    baselines: Dict[str, Dict[str, float]] = field(default_factory=dict)

    @property
    def ok_points(self) -> List[PointResult]:
        return [r for r in self.points if r.ok]

    def by_id(self, point_id: str) -> PointResult:
        for r in self.points:
            if r.point.point_id == point_id:
                return r
        raise KeyError(f"no point {point_id!r} in this sweep")

    def pareto_groups(
        self,
        objectives: Tuple[str, ...] = ("latency_ms", "total_energy_j"),
    ) -> Dict[str, List[PointResult]]:
        """Per-(network, backend) Pareto frontiers, keyed ``net/backend``.

        Architectures compete *for a given workload on a given tier* —
        a cross-network frontier would just rank networks by size.
        """
        groups: Dict[str, List[PointResult]] = {}
        for r in self.ok_points:
            key = f"{r.point.network}/{r.point.backend}"
            groups.setdefault(key, []).append(r)
        return {
            key: pareto_frontier(members, objectives)
            for key, members in sorted(groups.items())
        }

    def pareto(
        self,
        objectives: Tuple[str, ...] = ("latency_ms", "total_energy_j"),
    ) -> List[PointResult]:
        """The union of the per-group frontiers, in group order."""
        out: List[PointResult] = []
        for members in self.pareto_groups(objectives).values():
            out.extend(members)
        return out

    # -- consolidated tables -----------------------------------------------------

    def latency_table(self) -> List[Dict[str, object]]:
        """Latency / throughput / power per ok point, with paper refs."""
        rows = []
        for r in self.ok_points:
            row: Dict[str, object] = {
                "point_id": r.point.point_id,
                "network": r.point.network,
                "backend": r.point.backend,
                "latency_ms": r.latency_ms,
                "total_cycles": r.total_cycles,
                "throughput_samples_s": r.throughput_samples_s,
                "average_power_w": r.average_power_w,
                "gops_per_watt": r.gops_per_watt,
            }
            if r.point.network == "resnet18":
                add_compare_ref(
                    row, "latency_ms", PAPER_REF_RESNET18_LATENCY_MS
                )
                add_compare_ref(
                    row, "average_power_w", PAPER_REF_RESNET18_POWER_W
                )
            rows.append(row)
        return rows

    def energy_table(self) -> List[Dict[str, object]]:
        """Per-block energy per ok point + baseline improvement ratios."""
        rows = []
        for r in self.ok_points:
            row: Dict[str, object] = {
                "point_id": r.point.point_id,
                "network": r.point.network,
            }
            for block in ENERGY_BLOCKS:
                row[f"{block}_j"] = r.energy_j.get(block, 0.0)
            row["total_j"] = r.total_energy_j
            if r.point.network == "resnet18":
                add_compare_ref(row, "total_j", PAPER_REF_RESNET18_ENERGY_J)
            base = self.baselines.get(r.point.network, {})
            for name in ("scalar", "neural_cache"):
                energy = base.get(f"{name}_energy_j")
                cycles = base.get(f"{name}_cycles")
                if energy:
                    row[f"energy_gain_vs_{name}"] = energy / r.total_energy_j
                if cycles:
                    row[f"speedup_vs_{name}"] = cycles / r.total_cycles
            rows.append(row)
        return rows

    def area_table(self) -> List[Dict[str, object]]:
        """Per-block area per distinct architecture (deduplicated).

        Area is a pure function of the chip, not the run, so points
        sharing (mesh, slices, rows, channels) share one row; the row
        lists every network/backend that ran on that machine.
        """
        seen: Dict[Tuple, Dict[str, object]] = {}
        for r in self.ok_points:
            p = r.point
            arch = (p.mesh, p.cmem_slices, p.cmem_rows, p.dram_channels)
            if arch in seen:
                continue
            w, h = p.mesh
            row: Dict[str, object] = {
                "arch": (
                    f"m{w}x{h}/s{p.cmem_slices}r{p.cmem_rows}"
                    f"/d{p.dram_channels}"
                ),
                "cores": p.compute_tiles,
            }
            for block in AREA_BLOCKS:
                row[f"{block}_mm2"] = r.area_mm2.get(block, 0.0)
            row["total_mm2"] = r.total_area_mm2
            add_compare_ref(row, "total_mm2", PAPER_REF_CHIP_AREA_MM2)
            seen[arch] = row
        return list(seen.values())

    # -- serialization -----------------------------------------------------------

    def as_dict(self) -> Dict[str, object]:
        """Deterministic JSON-safe export (points in expansion order)."""
        counts = {"ok": 0, "infeasible": 0, "rejected": 0, "error": 0}
        for r in self.points:
            counts[r.status] = counts.get(r.status, 0) + 1
        return {
            "sweep": self.spec.name,
            "axes": self.spec.axes_dict(),
            "counts": counts,
            "points": [r.as_dict() for r in self.points],
            "pareto": {
                key: [r.point.point_id for r in members]
                for key, members in self.pareto_groups().items()
            },
            "tables": {
                "latency": self.latency_table(),
                "energy": self.energy_table(),
                "area": self.area_table(),
            },
            "baselines": {
                name: dict(values)
                for name, values in sorted(self.baselines.items())
            },
        }

    def to_json(self) -> str:
        return json.dumps(self.as_dict(), indent=2, sort_keys=True) + "\n"


__all__ = [
    "AREA_BLOCKS",
    "ENERGY_BLOCKS",
    "PAPER_REF_CHIP_AREA_MM2",
    "PAPER_REF_RESNET18_ENERGY_J",
    "PAPER_REF_RESNET18_LATENCY_MS",
    "PAPER_REF_RESNET18_POWER_W",
    "DSEResult",
    "PointResult",
    "add_compare_ref",
    "compare_ref",
    "pareto_frontier",
]
