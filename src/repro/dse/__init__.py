"""Design-space exploration: declarative sweeps on the shared executor.

``SweepSpec`` declares the axes; ``run_sweep`` expands, preflights, and
shards the points (``repro.utils.parallel``); ``DSEResult`` consolidates
energy/area/latency with baseline and paper-reference comparisons and
extracts the Pareto frontier.  ``scripts/dse.py`` is the CLI;
``scripts/report.py dse`` renders the HTML dashboard.  See docs/DSE.md.
"""

from repro.dse.engine import (
    evaluate_point,
    network_baselines,
    register_grid_evaluator,
    run_grid,
    run_sweep,
)
from repro.dse.presets import SWEEPS
from repro.dse.result import (
    DSEResult,
    PointResult,
    add_compare_ref,
    compare_ref,
    pareto_frontier,
)
from repro.dse.spec import NETWORKS, DesignPoint, SweepSpec

__all__ = [
    "NETWORKS",
    "SWEEPS",
    "DSEResult",
    "DesignPoint",
    "PointResult",
    "SweepSpec",
    "add_compare_ref",
    "compare_ref",
    "evaluate_point",
    "network_baselines",
    "pareto_frontier",
    "register_grid_evaluator",
    "run_grid",
    "run_sweep",
]
