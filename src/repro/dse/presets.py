"""Named sweeps ``scripts/dse.py --sweep`` and the CI smoke job run.

``smoke``
    16 analytic points on the tiny CNN — seconds of wall time.  The CI
    ``dse-smoke`` job runs it serial and with ``--workers 4`` and diffs
    the JSON bytes.
``frontier``
    The headline 240-point sweep: mesh x CMem slices x DRAM channels on
    ResNet18 + the tiny CNN, analytic and streaming tiers.  Every point
    currently simulates clean (the 12x12 mesh still fits ResNet18);
    non-``ok`` rows, when axes grow past feasibility, stay in the
    artifact — accounting for them is the point of sweeping.
``channels``
    A 1-D DRAM-channel slice of the frontier at the paper's chip —
    isolates the bandwidth sensitivity the Sec. 6.2 overlap discussion
    describes.
"""

from __future__ import annotations

from typing import Dict

from repro.dse.spec import SweepSpec

SWEEPS: Dict[str, SweepSpec] = {
    "smoke": SweepSpec(
        name="smoke",
        networks=("small_cnn",),
        backends=("analytic",),
        meshes=((16, 16), (12, 12)),
        cmem_slices=(7, 5),
        dram_channels=(32, 16),
        cmem_rows=(64, 32),
    ),
    "frontier": SweepSpec(
        name="frontier",
        networks=("resnet18", "small_cnn"),
        backends=("analytic", "streaming"),
        meshes=((12, 12), (16, 16), (20, 16), (20, 20)),
        cmem_slices=(5, 7, 9),
        dram_channels=(8, 16, 32, 48, 64),
    ),
    "channels": SweepSpec(
        name="channels",
        networks=("resnet18",),
        backends=("streaming",),
        dram_channels=(4, 8, 16, 24, 32, 48, 64),
    ),
}


__all__ = ["SWEEPS"]
