"""A Neural Cache (Eckert et al., ISCA 2018) node model for Table 4.

Neural Cache computes with *element-wise* bit-serial primitives inside
standard 8 KB (256 x 256) cache arrays and reduces partial-product
vectors with iterative shift + add (Fig. 4(a) of the MAICC paper).  The
node compared in Table 4 has 40 KB of arrays — four computing plus one
staging — against MAICC's 20 KB.

Cycle model per (output pixel, filter) on one array, for an R*S*C filter
with C = 256 lanes and n-bit operands:

* R*S element-wise multiplies at ``n^2 + 5n - 2`` cycles each (the
  products are 2n-bit);
* R*S - 1 element-wise accumulations of the growing partial-product
  vector (``b + 1`` cycles at width ``b``);
* one 256-lane reduction by ``log2(256)`` shift+add iterations on
  operands that grow one bit per step — which lands at ~23% of the
  compute cycles, matching the share the paper reports.

Filters beyond the array count run as additional serial passes.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.nn.workloads import ConvLayerSpec
from repro.sram.bitserial import BitSerialCosts


@dataclass(frozen=True)
class NeuralCacheResult:
    """Neural Cache node performance on one CONV layer."""

    cycles: int
    multiply_cycles: int
    accumulate_cycles: int
    reduction_cycles: int
    passes: int
    energy_j: float
    memory_kb: int
    area_mm2: float

    @property
    def reduction_fraction(self) -> float:
        return self.reduction_cycles / self.cycles if self.cycles else 0.0


@dataclass(frozen=True)
class NeuralCacheModel:
    """Table 4's Neural Cache comparison point."""

    compute_arrays: int = 4
    staging_arrays: int = 1
    lanes: int = 256
    # Per-cycle node energy, calibrated to the paper's 4.03e-6 J figure
    # for the Table 4 workload (~30 pJ per cycle across the active arrays).
    energy_per_cycle_pj: float = 29.5
    area_mm2: float = 0.158  # paper Table 4

    @property
    def memory_kb(self) -> int:
        return (self.compute_arrays + self.staging_arrays) * 8

    def run(self, spec: ConvLayerSpec) -> NeuralCacheResult:
        n = spec.n_bits
        taps = spec.r * spec.s * max(1, math.ceil(spec.c / self.lanes))
        oh, ow = spec.ofmap_hw
        outputs = oh * ow

        multiply = taps * BitSerialCosts.multiply(n)
        # Accumulate 2n-bit partial products: widths grow with each add.
        accumulate = 0
        width = 2 * n
        for _ in range(taps - 1):
            accumulate += BitSerialCosts.add(width)
            width += 1
        # The reduction tree operates on the accumulated 2n-bit vector
        # (the few carry bits ride in the otherwise idle guard rows).
        reduction = BitSerialCosts.reduce(self.lanes, 2 * n)
        per_output = multiply + accumulate + reduction

        passes = math.ceil(spec.m / self.compute_arrays)
        cycles = outputs * per_output * passes
        energy = cycles * self.energy_per_cycle_pj * 1e-12
        return NeuralCacheResult(
            cycles=cycles,
            multiply_cycles=outputs * multiply * passes,
            accumulate_cycles=outputs * accumulate * passes,
            reduction_cycles=outputs * reduction * passes,
            passes=passes,
            energy_j=energy,
            memory_kb=self.memory_kb,
            area_mm2=self.area_mm2,
        )
