"""Analytic CPU and GPU baselines for Table 7.

We cannot run an Intel i9-13900K or an RTX 4090 (the paper measures them
with PyTorch + RAPL / nvidia-smi), so each platform is a roofline-style
model built from its Table 3 specification: peak throughput = cores x
frequency x SIMD width x 2 (FMA), derated by a batch-1 inference
efficiency calibrated once against the paper's measured ResNet18 latency.
Measured power comes from the paper (it is a property of the silicon, not
of the workload model).  The calibration targets are kept alongside so
benches can report paper-vs-model for any workload.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.nn.workloads import NetworkSpec


@dataclass(frozen=True)
class PlatformModel:
    """A roofline-with-derating platform model."""

    name: str
    cores: int
    frequency_ghz: float
    simd_lanes: int
    batch1_efficiency: float
    measured_power_w: float
    technology_nm: int
    paper_resnet18_latency_ms: float

    @property
    def peak_gflops(self) -> float:
        return self.cores * self.frequency_ghz * self.simd_lanes * 2.0

    @property
    def effective_gflops(self) -> float:
        return self.peak_gflops * self.batch1_efficiency

    def latency_ms(self, network: NetworkSpec) -> float:
        """Batch-1 inference latency of one network."""
        flops = 2.0 * network.total_macs
        return flops / (self.effective_gflops * 1e9) * 1e3

    def throughput_samples_s(self, network: NetworkSpec) -> float:
        return 1000.0 / self.latency_ms(network)

    def throughput_per_watt(self, network: NetworkSpec) -> float:
        return self.throughput_samples_s(network) / self.measured_power_w


# Calibrated on the paper's Table 7 ResNet18 measurements (22.3 ms on the
# CPU, 1.02 ms on the GPU, unquantized FP32, batch 1).  ResNet18 from the
# 224x224 stem is ~1.814 GMACs -> 3.63 GFLOPs.
CPU_I9_13900K = PlatformModel(
    name="Intel i9-13900K",
    cores=24,
    frequency_ghz=3.0,
    simd_lanes=8,  # AVX2 fp32
    batch1_efficiency=0.1413,
    measured_power_w=176.4,
    technology_nm=10,
    paper_resnet18_latency_ms=22.3,
)

GPU_RTX_4090 = PlatformModel(
    name="NVIDIA RTX 4090",
    cores=16384,
    frequency_ghz=2.235,
    simd_lanes=1,  # per-CUDA-core fp32 lane
    batch1_efficiency=0.0486,
    measured_power_w=228.6,
    technology_nm=5,
    paper_resnet18_latency_ms=1.02,
)
