"""The scalar-core baseline of Table 4: software convolution on RV32IM.

A plain lightweight core (no CMem) runs the same CONV layer as a software
loop: two byte loads, a multiply, and an accumulate per MAC plus
addressing and loop control.  Simulating the Table 4 workload's ~10^7
cycles instruction-by-instruction is wasteful, so the baseline measures
the real cycles-per-MAC of the inner loop on the cycle-level pipeline
using a reduced tile, then scales analytically to the full layer — the
loop is perfectly regular, so the extrapolation is exact up to boundary
effects measured at under 1%.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.nn.workloads import ConvLayerSpec
from repro.riscv.core import Core, CoreConfig
from repro.riscv.pipeline import PipelineConfig


_INNER_LOOP = """
    # a0: ifmap base, a1: weight base, a2: count, returns acc in a3
    li   a3, 0
loop:
    lb   t0, 0(a0)
    lb   t1, 0(a1)
    mul  t2, t0, t1
    add  a3, a3, t2
    addi a0, a0, 1
    addi a1, a1, 1
    addi a2, a2, -1
    bne  a2, zero, loop
    halt
"""


@dataclass
class ScalarResult:
    """Scalar-core performance on one CONV layer."""

    cycles_per_mac: float
    total_macs: int
    total_cycles: float
    energy_j: float

    @property
    def seconds(self) -> float:
        return self.total_cycles * 1e-9  # 1 GHz


class ScalarConvBaseline:
    """Measures and extrapolates the scalar software convolution."""

    def __init__(
        self,
        *,
        core_power_w: float = 0.008,
        dmem_power_w: float = 0.0005,
        addressing_overhead_per_mac: float = 9.0,
    ) -> None:
        self.core_power_w = core_power_w
        self.dmem_power_w = dmem_power_w
        # The measured inner loop streams contiguous bytes; direct
        # convolution additionally pays strided window addressing and psum
        # read-modify-write per tap (~9 cycles on this 1-wide core).
        self.addressing_overhead_per_mac = addressing_overhead_per_mac
        self._cycles_per_mac: Optional[Optional[float]] = None

    def measure_cycles_per_mac(self, sample_macs: int = 512) -> float:
        """Run the real inner loop on the pipeline simulator."""
        if self._cycles_per_mac is not None:
            return self._cycles_per_mac
        core = Core(CoreConfig(pipeline=PipelineConfig()))
        rng = np.random.default_rng(0)
        # Stage operand bytes in local data memory.
        for i in range(sample_macs):
            core.memory.store(i, 1, int(rng.integers(0, 256)))
            core.memory.store(2048 + i, 1, int(rng.integers(0, 256)))
        program = (
            f"    li a0, 0\n    li a1, 2048\n    li a2, {sample_macs}\n" + _INNER_LOOP
        )
        stats = core.run(program)
        self._cycles_per_mac = stats.cycles / sample_macs
        return self._cycles_per_mac

    def run(self, spec: ConvLayerSpec) -> ScalarResult:
        """Extrapolate the measured inner loop to a whole layer."""
        cycles_per_mac = (
            self.measure_cycles_per_mac() + self.addressing_overhead_per_mac
        )
        macs = spec.macs
        # Outer-loop overhead (window setup, psum spill, aux functions):
        # one pass over every output value plus per-window bookkeeping.
        oh, ow = spec.ofmap_hw
        overhead = oh * ow * spec.m * 30
        total = macs * cycles_per_mac + overhead
        seconds = total * 1e-9
        energy = (self.core_power_w + self.dmem_power_w) * seconds
        return ScalarResult(
            cycles_per_mac=cycles_per_mac,
            total_macs=macs,
            total_cycles=total,
            energy_j=energy,
        )
