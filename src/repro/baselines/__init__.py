"""Comparison baselines: scalar core, Neural Cache, CPU and GPU models."""

from repro.baselines.scalar_core import ScalarConvBaseline, ScalarResult
from repro.baselines.neural_cache import NeuralCacheModel, NeuralCacheResult
from repro.baselines.cpu_gpu import CPU_I9_13900K, GPU_RTX_4090, PlatformModel

__all__ = [
    "ScalarConvBaseline",
    "ScalarResult",
    "NeuralCacheModel",
    "NeuralCacheResult",
    "CPU_I9_13900K",
    "GPU_RTX_4090",
    "PlatformModel",
]
