"""Pytest bootstrap: make ``src/`` importable without installation and
register shared markers/fixtures."""

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "src"))


def pytest_configure(config):
    config.addinivalue_line(
        "markers", "slow: long-running simulation tests (deselect with -m 'not slow')"
    )
