#!/usr/bin/env python3
"""The computing memory from the bit-lines up.

Walks the paper's core mechanism at three levels:

1. raw bit-line computing — activate two SRAM word-lines, sense AND/NOR;
2. the CMem vector-MAC primitive (Fig. 4(b)) — adder tree +
   shift-accumulator over transposed vectors, with CSR lane masking;
3. the same MAC issued from RISC-V assembly through the extended ISA
   (Table 2), on the cycle-level pipeline.

Run:  python examples/in_cache_mac_demo.py
"""

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

import numpy as np

from repro import CMem, Core
from repro.sram.array import SRAMArray, SRAMArrayConfig


def demo_bitline() -> None:
    print("=== 1. bit-line computing (Jeloka et al.) ===")
    array = SRAMArray(SRAMArrayConfig(rows=4, cols=8))
    array.write_row(0, [1, 1, 0, 0, 1, 0, 1, 0])
    array.write_row(1, [1, 0, 1, 0, 1, 1, 0, 0])
    sensed = array.activate_pair(0, 1)
    print("  row0      :", array.read_row(0).tolist())
    print("  row1      :", array.read_row(1).tolist())
    print("  BL  (AND) :", sensed.and_bits.tolist())
    print("  BLB (NOR) :", sensed.nor_bits.tolist())
    print("  derived OR:", sensed.or_bits.tolist())
    print()


def demo_mac_primitive() -> None:
    print("=== 2. the CMem MAC primitive (Fig. 4(b)) ===")
    rng = np.random.default_rng(1)
    a = rng.integers(-128, 128, 256)
    b = rng.integers(-128, 128, 256)
    cmem = CMem()
    cmem.store_vector_transposed(1, 0, a, 8, signed=True)
    cmem.store_vector_transposed(1, 8, b, 8, signed=True)
    got = cmem.mac(1, 0, 8, 8, signed=True)
    print(f"  256-lane int8 dot product: {got}  (numpy: {int(np.dot(a, b))})")
    print(f"  cycles: {cmem.stats.busy_cycles} (n^2 = 64 for the MAC itself)")
    print(f"  energy: {cmem.energy.total_pj:.1f} pJ "
          "(28.25 pJ/MAC + staging writes)")

    masked = cmem.mac(1, 0, 8, 8, signed=True, mask=0x0F)
    print(f"  CSR mask 0x0F (lanes 0-3): {masked} "
          f"(numpy on 128 lanes: {int(np.dot(a[:128], b[:128]))})")
    print()


def demo_isa() -> None:
    print("=== 3. the same MAC from RISC-V assembly (Table 2 ISA) ===")
    rng = np.random.default_rng(2)
    a = rng.integers(-128, 128, 256)
    b = rng.integers(-128, 128, 256)
    core = Core()
    core.cmem.store_vector_transposed(3, 0, a, 8, signed=True)
    core.cmem.store_vector_transposed(3, 8, b, 8, signed=True)
    program = """
        # Vector MAC in slice 3, result into a0; independent scalar work
        # proceeds under the 64-cycle CMem operation (scoreboard).
        mac.c a0, 3, 0, 8, 8
        li   t0, 0
        li   t1, 10
    loop:
        addi t0, t0, 1
        bne  t0, t1, loop
        sw   a0, 0(zero)
        halt
    """
    stats = core.run(program)
    print(f"  result register a0 = {core.regs.read_signed(10)} "
          f"(numpy: {int(np.dot(a, b))})")
    print(f"  pipeline: {stats.instructions} instructions in "
          f"{stats.cycles} cycles (IPC {stats.ipc:.2f}) — the scalar loop "
          "ran inside the MAC's delay slots")


if __name__ == "__main__":
    demo_bitline()
    demo_mac_primitive()
    demo_isa()
