#!/usr/bin/env python3
"""Multi-DNN parallel inference: the paper's autonomous-driving scenario.

The introduction motivates MAICC with perception stacks where camera,
LiDAR, and planning networks of different shapes run *simultaneously*.
This example spatially partitions the 208-core array among three such
networks (the MIMD capability of Sec. 8) and compares against
time-sharing the whole array.

Run:  python examples/autonomous_driving_multi_dnn.py
"""

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro import MultiDNNScheduler
from repro.nn.workloads import ConvLayerSpec, NetworkSpec


def camera_perception() -> NetworkSpec:
    """A mid-size detection backbone on 56x56 features."""
    layers = (
        ConvLayerSpec(1, "cam_conv1", h=56, w=56, c=64, m=64),
        ConvLayerSpec(2, "cam_conv2", h=56, w=56, c=64, m=64),
        ConvLayerSpec(3, "cam_conv3", h=56, w=56, c=64, m=128, stride=2),
        ConvLayerSpec(4, "cam_conv4", h=28, w=28, c=128, m=128),
        ConvLayerSpec(5, "cam_head", h=28, w=28, c=128, m=64, r=1, s=1, padding=0),
    )
    return NetworkSpec(name="camera-perception", layers=layers)


def lidar_segmentation() -> NetworkSpec:
    """A smaller voxel network on 28x28 pillars."""
    layers = (
        ConvLayerSpec(1, "lidar_conv1", h=28, w=28, c=64, m=64),
        ConvLayerSpec(2, "lidar_conv2", h=28, w=28, c=64, m=128),
        ConvLayerSpec(3, "lidar_head", h=14, w=14, c=128, m=64, stride=1),
    )
    return NetworkSpec(name="lidar-segmentation", layers=layers)


def planner() -> NetworkSpec:
    """A light decision network on pooled features."""
    layers = (
        ConvLayerSpec(1, "plan_conv", h=14, w=14, c=128, m=128),
        ConvLayerSpec(2, "plan_fc", h=1, w=1, c=128, m=256, r=1, s=1,
                      padding=0, kind="linear"),
    )
    return NetworkSpec(name="planner", layers=layers)


def serve_sensor_streams() -> None:
    """Arrival-driven serving: frames at sensor rates, spatial vs shared."""
    from repro.core.sensor_stream import SensorStreamSimulator, StreamSpec

    streams = [
        StreamSpec(camera_perception(), period_ms=4.0),   # 250 fps camera rig
        StreamSpec(lidar_segmentation(), period_ms=2.0),  # high-rate LiDAR
        StreamSpec(planner(), period_ms=1.0),             # 1 kHz control loop
    ]
    simulator = SensorStreamSimulator()
    print("\nserving sensor streams for 200 ms "
          "(latency = queueing + inference):")
    for policy in ("spatial", "time-shared"):
        result = simulator.run(streams, duration_ms=200, policy=policy)
        print(f"  policy: {policy}")
        for stream in streams:
            report = result.reports[stream.label]
            print(f"    {stream.label:20s} {report.completed:4d} frames, "
                  f"mean {report.mean_latency_ms:7.3f} ms, "
                  f"max {report.max_latency_ms:7.3f} ms")


def main() -> None:
    scheduler = MultiDNNScheduler()
    networks = [camera_perception(), lidar_segmentation(), planner()]

    shares = scheduler.partition(networks)
    print("spatial partition of the 208-core array:")
    for net, share in zip(networks, shares):
        print(f"  {net.name:20s} {share:4d} cores "
              f"({net.total_macs / 1e6:7.1f} MMACs)")

    result = scheduler.run(networks)
    print("\nconcurrent execution (one inference each):")
    for run in result.runs:
        print(f"  {run.network.name:20s} {run.latency_ms:7.3f} ms "
              f"-> {run.throughput:8.1f} samples/s sustained")

    print(f"\nmakespan, spatial partitions : {result.parallel_latency_ms:7.3f} ms")
    print(f"makespan, time-shared array  : {result.time_shared_latency_ms:7.3f} ms")
    print(f"speedup                      : {result.speedup_vs_time_shared:6.2f}x")
    print(f"aggregate throughput         : {result.aggregate_throughput:8.1f} samples/s "
          f"(time-shared: {result.time_shared_throughput:.1f})")

    serve_sensor_streams()


if __name__ == "__main__":
    main()
