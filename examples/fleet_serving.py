#!/usr/bin/env python3
"""Fleet serving: a chip crash mid-run, absorbed by load-aware routing.

Eight simulated MAICC chips serve three models behind the cluster
router.  At t=300ms chip 0 — hosting a vision and a speech replica —
crashes: its queued work lands in ``failed`` (counted, never silent),
its replicas re-place onto the emptiest survivors and come back after
weight re-staging, and the balancer steers traffic around the hole.
Chip 1 is additionally 2x slow from t=0 (a degraded part).  The same
run under ``round-robin`` shows why load-awareness matters: the blind
policy keeps feeding the slow chip and the worst model's p99 diverges.

Run:  python examples/fleet_serving.py
"""

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.fleet import (
    ChipCrash,
    ChipDegradation,
    DiurnalShape,
    FailureScenario,
    FleetModelSpec,
    FleetSimulator,
    OpenLoopTraffic,
    UserGroupTraffic,
    fixed_profile,
)

DURATION_MS = 1000.0


def models():
    shape = DiurnalShape(period_ms=DURATION_MS, floor=0.3)
    return [
        FleetModelSpec(
            "vision",
            fixed_profile("vision", 0.8, cores=64, restage_ms=4.0),
            OpenLoopTraffic(rate_hz=5000.0, shape=shape),
            deadline_ms=10.0,
            queue_capacity=256,
            replicas=4,
        ),
        FleetModelSpec(
            "speech",
            fixed_profile("speech", 1.4, cores=96, restage_ms=6.0),
            OpenLoopTraffic(rate_hz=2000.0),
            deadline_ms=15.0,
            queue_capacity=256,
            replicas=3,
        ),
        FleetModelSpec(
            "assist",
            fixed_profile("assist", 2.0, cores=48, restage_ms=5.0),
            UserGroupTraffic(users=80, think_ms=120.0, shape=shape),
            deadline_ms=25.0,
            replicas=2,
        ),
    ]


def run(balancer):
    sim = FleetSimulator(
        models(),
        n_chips=8,
        balancer=balancer,
        failures=FailureScenario(
            crashes=[ChipCrash(chip=0, at_ms=300.0)],
            degradations=[ChipDegradation(chip=1, from_ms=0.0, factor=2.0)],
        ),
        scenario="example-crash",
        seed=42,
    )
    return sim.run(DURATION_MS)


def main():
    results = {name: run(name) for name in ("least-loaded", "round-robin")}

    print(f"8 chips, 3 models, chip 0 crashes at t=300ms "
          f"({DURATION_MS:.0f}ms simulated)\n")
    print(f"{'balancer':<14} {'generated':>9} {'completed':>9} "
          f"{'failed':>6} {'shed':>5} {'worst p99':>10}  conserved")
    for name, result in results.items():
        print(f"{name:<14} {result.total_generated:>9} "
              f"{result.total_completed:>9} {result.total_failed:>6} "
              f"{result.total_shed + result.total_router_shed:>5} "
              f"{result.worst_model_p99_ms:>8.2f}ms  {result.conserved}")

    aware = results["least-loaded"]
    print("\nrecoveries (replicas re-placed off the crashed chip):")
    for event in aware.recoveries:
        print(f"  t={event.time_ms:7.1f}ms  {event.model:<8} "
              f"chip {event.from_chip} -> chip {event.to_chip} "
              f"(routable at t={event.ready_ms:.1f}ms)")

    print("\nper-chip routed requests (least-loaded):")
    for chip, count in sorted(aware.routed.items()):
        marker = "  <- crashed" if chip == 0 else ""
        print(f"  chip {chip}: {count:>6}{marker}")

    assert aware.conserved, "conservation identity must hold"
    assert aware.worst_model_p99_ms < (
        results["round-robin"].worst_model_p99_ms
    ), "load-aware routing should beat round-robin on worst-tenant p99"
    print("\nleast-loaded beats round-robin on worst-tenant p99; "
          "every request accounted for.")


if __name__ == "__main__":
    main()
