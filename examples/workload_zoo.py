#!/usr/bin/env python3
"""Workload zoo: how different model families behave on MAICC.

Sweeps the built-in workloads — ResNet18 (the paper's benchmark), VGG-11
(FC-heavy: triggers multi-pass weight tiling), an MLP, an LSTM cell, and
a Transformer encoder block — through the chip simulator, at batch 1 and
batch 16, and prints where each one's time goes.

Run:  python examples/workload_zoo.py
"""

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro import ChipSimulator
from repro.nn.workloads import (
    lstm_cell_spec,
    mlp_spec,
    resnet18_spec,
    transformer_block_spec,
    vgg11_spec,
)


def main() -> None:
    simulator = ChipSimulator()
    workloads = [
        resnet18_spec(),
        vgg11_spec(),
        mlp_spec(),
        lstm_cell_spec(),
        transformer_block_spec(),
    ]

    print(f"{'workload':18s} {'GMACs':>7s} {'weights':>9s} "
          f"{'latency':>10s} {'batch16/s':>10s} {'s/s/W':>7s} {'note'}")
    for net in workloads:
        weights_mb = sum(s.weight_count for s in net) / 1e6
        single = simulator.run(net, "heuristic")
        batched = simulator.run(net, "heuristic", batch=16)
        tiled = any("@" in s.name for s in single.network)
        load_share = sum(r.filter_load_cycles for r in single.runs) / single.total_cycles
        note = []
        if tiled:
            note.append("multi-pass tiled")
        if load_share > 0.3:
            note.append(f"weight-load {load_share:.0%} of time")
        print(
            f"{net.name:18s} {net.total_macs / 1e9:7.2f} {weights_mb:7.1f}MB "
            f"{single.latency_ms:8.3f}ms {batched.throughput_samples_s:9.1f}  "
            f"{single.throughput_per_watt:6.2f}  {', '.join(note)}"
        )

    print("\ntakeaways:")
    print("  - conv nets stream weight-stationary and hit the paper's rates;")
    print("  - VGG's giant FCs exceed the 2.6M resident weight slots, fall")
    print("    back to multi-pass tiling, and become filter-load-bound;")
    print("  - single-token LSTM/Transformer steps finish in microseconds —")
    print("    the array is latency-bound, so batching or multi-model")
    print("    co-location (see autonomous_driving_multi_dnn.py) fills it.")


if __name__ == "__main__":
    main()
