#!/usr/bin/env python3
"""Scheduling playground: watch Table 5's mechanisms on a real kernel.

Generates the Algorithm-1 assembly for a reduced CONV workload, then runs
it on the cycle-level pipeline across issue-queue depths, write-back port
counts, and with/without static (compile-time) reordering — printing the
cycles and verifying the accumulators never change.

Run:  python examples/scheduling_playground.py
"""

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

import numpy as np

from repro import MAICCNode, PipelineConfig
from repro.nn.workloads import ConvLayerSpec


def main() -> None:
    # Five 3x3x256 filters on a 6x6 ifmap — Table 4's workload, shrunk so
    # the sweep finishes in seconds.
    spec = ConvLayerSpec(0, "demo", h=6, w=6, c=256, m=5, padding=0)
    rng = np.random.default_rng(7)
    weights = rng.integers(-128, 128, size=(spec.m, spec.c, spec.r, spec.s))
    bias = rng.integers(-500, 500, size=spec.m)
    ifmap = rng.integers(-128, 128, size=(spec.c, spec.h, spec.w))

    node = MAICCNode(spec, weights, bias)
    program = node.build_program()
    print(f"kernel: {len(program)} instructions for "
          f"{spec.h}x{spec.w} ifmap pixels "
          f"({spec.m} filters of {spec.r}x{spec.s}x{spec.c})\n")

    reference = node.reference(ifmap)
    print(f"{'queue':>5s} {'wb':>3s} {'static':>7s} {'cycles':>8s} {'vs base':>8s}")
    base = None
    for static in (False, True):
        for queue in (0, 1, 2, 4):
            for wb in (1, 2):
                cfg = PipelineConfig(cmem_queue_size=queue, writeback_ports=wb)
                result = node.run(ifmap, static=static, pipeline=cfg)
                assert np.array_equal(result.psums, reference), \
                    "scheduling must never change results"
                cycles = result.stats.cycles
                if base is None:
                    base = cycles
                print(f"{queue:5d} {wb:3d} {str(static):>7s} {cycles:8d} "
                      f"{cycles / base:7.3f}x")

    print("\nall configurations produced bit-identical accumulators.")
    breakdown = node.run(ifmap).stats.category_cycles
    total = sum(breakdown.values())
    print("issue-slot attribution of the baseline run:")
    for category, cyc in sorted(breakdown.items(), key=lambda kv: -kv[1]):
        print(f"  {category:12s} {cyc:7d} cycles ({cyc / total * 100:4.1f}%)")


if __name__ == "__main__":
    main()
