#!/usr/bin/env python3
"""Bring your own network: quantize it, verify it bit-for-bit on the
functional MAICC path, then estimate its mapped performance.

The flow a downstream user follows for a custom model:

1. build a float graph (here: a small residual CNN);
2. post-training int8 quantization with batch-norm folding;
3. run it through the functional node-group simulator — every conv/FC
   executes with the CMem data layout and filter splitting — and check
   exact equality with the integer reference;
4. describe the mapped layers and simulate latency/energy on the chip.

Run:  python examples/custom_network_inference.py
"""

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

import numpy as np

from repro import ChipSimulator, quantize_graph, simulate_quantized_graph
from repro.nn.models import build_residual_cnn
from repro.nn.reference import quantization_error
from repro.nn.workloads import ConvLayerSpec, NetworkSpec


def main() -> None:
    rng = np.random.default_rng(2023)

    # 1. Float model + calibration data.
    graph = build_residual_cnn(input_shape=(8, 8, 8))
    calibration = [rng.normal(size=(8, 8, 8)) for _ in range(4)]

    # 2. Quantize (int8, symmetric, BN folded).
    qgraph = quantize_graph(graph, calibration)
    err = quantization_error(graph, qgraph, calibration)
    print(f"quantization relative error vs float: {err:.4f}")

    # 3. Functional MAICC execution must equal the integer reference.
    x = rng.normal(size=(8, 8, 8))
    reference = qgraph.forward(x)
    simulated = simulate_quantized_graph(qgraph, x)
    mismatches = [
        name for name in reference
        if not np.array_equal(reference[name], simulated[name])
    ]
    print(f"functional MAICC execution: "
          f"{'EXACT MATCH' if not mismatches else f'MISMATCH in {mismatches}'}")
    print(f"logits: {simulated[qgraph.output_name].tolist()}")

    # 4. Mapped-performance estimate for the conv/FC layers.
    layers = (
        ConvLayerSpec(1, "conv1", h=8, w=8, c=8, m=16),
        ConvLayerSpec(2, "conv2", h=8, w=8, c=16, m=16),
        ConvLayerSpec(3, "conv3", h=8, w=8, c=16, m=16),
        ConvLayerSpec(4, "linear", h=1, w=1, c=16, m=10, r=1, s=1,
                      padding=0, kind="linear"),
    )
    network = NetworkSpec(name="residual-cnn", layers=layers)
    result = ChipSimulator().run(network, "heuristic")
    print(f"\nmapped onto MAICC ({result.plan.strategy} strategy):")
    print(f"  latency    : {result.latency_ms * 1000:.1f} us")
    print(f"  throughput : {result.throughput_samples_s:.0f} samples/s")
    print(f"  avg power  : {result.average_power_w:.2f} W")
    for run in result.runs:
        names = ", ".join(s.name for s in run.segment.layers)
        print(f"  segment [{names}]: {run.segment.total_nodes} cores")


if __name__ == "__main__":
    main()
