#!/usr/bin/env python3
"""Online multi-tenant serving: elastic partitions vs the baselines.

Three sensor tenants send Poisson request streams at rates deliberately
mismatched with their models' MAC weights: the camera model is heavy but
slow-rate, the radar model tiny but hot.  A static MAC-proportional
split over-provisions the camera; time-sharing makes everyone queue
behind it.  The elastic policy watches per-tenant arrivals and queue
depth and re-partitions the array online — paying a weight re-staging
stall in simulated time for every move — which is exactly the regime
where it wins on tail latency.

Run:  python examples/online_serving.py
"""

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.core.multi_dnn import MultiDNNScheduler
from repro.nn.workloads import ConvLayerSpec, NetworkSpec, small_cnn_spec
from repro.serving import (
    ElasticPolicy,
    PoissonArrivals,
    ServiceModel,
    ServingSimulator,
    StaticPartitionPolicy,
    TenantSpec,
    TimeSharedPolicy,
)


def conv_net(name: str, m: int, h: int) -> NetworkSpec:
    layers = tuple(
        ConvLayerSpec(i + 1, f"{name}{i}", h=h, w=h, c=64, m=m)
        for i in range(2)
    )
    return NetworkSpec(name=name, layers=layers)


def tenants():
    return [
        TenantSpec("camera", conv_net("camera", m=64, h=28),
                   PoissonArrivals(400, seed=1), deadline_ms=6.0),
        TenantSpec("lidar", conv_net("lidar", m=32, h=14),
                   PoissonArrivals(1500, seed=2), deadline_ms=3.0),
        TenantSpec("radar", small_cnn_spec(),
                   PoissonArrivals(2500, seed=3), deadline_ms=2.0),
    ]


def main() -> None:
    scheduler = MultiDNNScheduler()
    duration_ms = 120.0
    policies = [
        StaticPartitionPolicy(scheduler),
        TimeSharedPolicy(scheduler),
        ElasticPolicy(ServiceModel(scheduler), control_interval_ms=10.0),
    ]

    print(f"serving 3 Poisson tenants for {duration_ms:g} ms of sim time\n")
    results = {}
    for policy in policies:
        result = ServingSimulator(policy).run(tenants(), duration_ms)
        results[policy.name] = result
        print(f"policy: {policy.name}")
        for name, report in sorted(result.reports.items()):
            print(f"  {name:8s} p50 {report.p50_ms:6.3f}  "
                  f"p95 {report.p95_ms:6.3f}  p99 {report.p99_ms:6.3f} ms   "
                  f"miss {100 * report.deadline_miss_rate:4.1f}%  "
                  f"goodput {report.goodput_rps(duration_ms):7.1f}/s")
        print(f"  worst p99 {result.worst_p99_ms:.3f} ms, "
              f"utilization {result.utilization():.2f}, "
              f"shed {result.total_shed}\n")

    elastic = results["elastic"]
    print(f"elastic applied {len(elastic.resizes)} resize(s):")
    for event in elastic.resizes:
        shares = "  ".join(f"{k}:{v}" for k, v in sorted(event.shares.items()))
        print(f"  t={event.time_ms:6.1f} ms  {shares}   "
              f"(restage stall up to "
              f"{max(event.stall_ms.values()):.3f} ms)")

    speedup = (results["time-shared"].worst_p99_ms
               / elastic.worst_p99_ms)
    print(f"\nworst-tenant p99: elastic {elastic.worst_p99_ms:.3f} ms vs "
          f"time-shared {results['time-shared'].worst_p99_ms:.3f} ms "
          f"({speedup:.1f}x better)")


if __name__ == "__main__":
    main()
