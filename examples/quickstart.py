#!/usr/bin/env python3
"""Quickstart: map ResNet18 onto the 210-core MAICC chip and report
latency, throughput, power, and the energy breakdown (Tables 6/7,
Fig. 10 of the paper).

Run:  python examples/quickstart.py
"""

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro import ChipSimulator, resnet18_spec


def main() -> None:
    simulator = ChipSimulator()
    network = resnet18_spec()

    print(f"workload: {network.name}, {len(network)} mapped layers, "
          f"{network.total_macs / 1e9:.2f} GMACs\n")

    print(f"{'strategy':14s} {'latency':>10s} {'throughput':>12s} "
          f"{'power':>8s} {'samples/s/W':>12s}")
    for strategy in ("single-layer", "greedy", "heuristic"):
        result = simulator.run(network, strategy)
        print(
            f"{strategy:14s} {result.latency_ms:8.2f} ms "
            f"{result.throughput_samples_s:10.1f}/s "
            f"{result.average_power_w:6.2f} W "
            f"{result.throughput_per_watt:10.2f}"
        )

    best = simulator.run(network, "heuristic")
    print("\nheuristic mapping (paper Table 6 shape):")
    for run in best.runs:
        layers = ", ".join(spec.name for spec in run.segment.layers)
        print(f"  segment [{layers}]: {run.cycles / 1e6:.3f} ms "
              f"on {run.segment.total_nodes} cores")

    print("\nenergy breakdown (paper Fig. 10: DRAM 71%, CMem 11%, NoC 11%):")
    for block, share in sorted(
        best.energy.fractions().items(), key=lambda kv: -kv[1]
    ):
        print(f"  {block:6s} {share * 100:5.1f}%")


if __name__ == "__main__":
    main()
